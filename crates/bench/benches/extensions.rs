//! Benchmarks for the extension subsystems: forecasting models, elastic
//! scaling, flexible grid load, merit-order dispatch, and the online
//! simulator.
//!
//! Extension figures are timed through the registry like `figures.rs`;
//! the rows below time the underlying kernels. `DECARB_BENCH_PRINT=1`
//! also prints the regenerated extension tables.

use std::hint::black_box;
use std::sync::OnceLock;

use decarb_bench::{print_tables, Harness};
use decarb_core::elastic::elastic_plan;
use decarb_core::flexload::{allocate_by_average_ci, allocate_flexible};
use decarb_core::signals::compare_signals;
use decarb_experiments::{registry, Context};
use decarb_forecast::{
    backtest, BacktestConfig, DiurnalTemplate, Forecaster, LinearAr, Persistence, SeasonalNaive,
};
use decarb_sim::{CarbonAgnostic, SimConfig, Simulator, ThresholdSuspend};
use decarb_traces::grid::{curtailment_grid, two_level_demand};
use decarb_traces::time::year_start;
use decarb_workloads::{Job, Slack};

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(Context::default)
}

/// Prints an experiment's tables once, outside any timed section.
fn print_once(id: &str) {
    if !print_tables() {
        return;
    }
    static PRINTED: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let mut printed = PRINTED.lock().expect("print lock");
    if printed.iter().any(|p| p == id) {
        return;
    }
    printed.push(id.to_string());
    let experiment = registry::find(id).expect("known experiment id");
    for table in experiment.run(ctx()) {
        println!("{table}");
    }
}

fn bench_ext_forecast(h: &Harness) {
    print_once("ext-forecast");
    let data = ctx().data();
    let series = data.series("US-CA").expect("trace");
    let history = series.slice(year_start(2021), 8760).expect("training year");

    // Single 96-hour forecast per model.
    let ar = LinearAr::fit(&history).expect("full-year fit");
    let models: Vec<(&str, Box<dyn Forecaster>)> = vec![
        ("persistence", Box::new(Persistence)),
        ("seasonal_naive", Box::new(SeasonalNaive::daily())),
        ("diurnal_template", Box::new(DiurnalTemplate::default())),
        ("linear_ar", Box::new(ar)),
    ];
    for (name, model) in &models {
        h.bench(&format!("extensions/forecast/predict_96h/{name}"), || {
            black_box(model.predict(&history, 96))
        });
    }
    h.bench("extensions/forecast/fit_linear_ar_1y", || {
        black_box(LinearAr::fit(&history))
    });
    let cfg = BacktestConfig::default();
    h.bench("extensions/forecast/backtest_template_30d", || {
        black_box(backtest(
            &DiurnalTemplate::default(),
            series,
            year_start(2022),
            30 * 24,
            &cfg,
        ))
    });
}

fn bench_ext_elastic(h: &Harness) {
    print_once("ext-elastic");
    let data = ctx().data();
    let series = data.series("US-CA").expect("trace");
    let arrival = year_start(2022);
    for &m in &[1usize, 8, 48] {
        h.bench(&format!("extensions/elastic/plan_48h_in_7d/{m}"), || {
            black_box(elastic_plan(series, arrival, 48, m, 7 * 24))
        });
    }
    // Scaling in the window length (the sort dominates).
    for &days in &[7usize, 30, 365] {
        h.bench(
            &format!("extensions/elastic/plan_window_days/{days}"),
            || black_box(elastic_plan(series, arrival, 48, 8, days * 24)),
        );
    }
}

fn bench_ext_grid(h: &Harness) {
    print_once("ext-grid");
    let fleet = curtailment_grid();
    let demand = two_level_demand;
    h.bench("extensions/grid/dispatch_week", || {
        black_box(fleet.dispatch_series(decarb_traces::Hour(0), demand, 168))
    });
    h.bench("extensions/grid/allocate_flexible_day", || {
        black_box(allocate_flexible(
            &fleet,
            demand,
            decarb_traces::Hour(0),
            24,
            1200.0,
            100.0,
            25.0,
        ))
    });
    h.bench("extensions/grid/allocate_by_average_day", || {
        black_box(allocate_by_average_ci(
            &fleet,
            demand,
            decarb_traces::Hour(0),
            24,
            1200.0,
            100.0,
        ))
    });
    h.bench("extensions/grid/compare_signals_48h", || {
        black_box(compare_signals(
            &fleet,
            demand,
            decarb_traces::Hour(0),
            48,
            4,
            30,
            100.0,
        ))
    });
}

fn bench_ext_sim(h: &Harness) {
    print_once("ext-embodied");
    let data = ctx().data();
    let codes = ["US-CA", "DE", "GB", "SE", "IN-WE"];
    let regions: Vec<decarb_traces::RegionId> = codes
        .iter()
        .map(|c| data.id_of(c).expect("region"))
        .collect();
    let start = year_start(2022);
    let jobs: Vec<Job> = (0..50u64)
        .map(|i| {
            Job::batch(
                i + 1,
                regions[(i % 5) as usize],
                start.plus((i as usize) * 150),
                24.0,
                Slack::Week,
            )
            .with_interruptible()
        })
        .collect();
    h.bench("extensions/sim/year_5dc_50jobs_agnostic", || {
        let mut sim = Simulator::new(data, &regions, SimConfig::new(start, 8760, 16));
        black_box(sim.run(&mut CarbonAgnostic, &jobs))
    });
    h.bench("extensions/sim/year_5dc_50jobs_threshold", || {
        let mut sim = Simulator::new(data, &regions, SimConfig::new(start, 8760, 16));
        black_box(sim.run(&mut ThresholdSuspend::default(), &jobs))
    });
}

fn bench_ext_registry(h: &Harness) {
    // End-to-end timings of the extension experiments through the
    // registry. `ext-sim` is deliberately absent: a single run takes
    // tens of seconds, and its simulator hot loop is already timed by
    // the `extensions/sim/*` rows above.
    for id in [
        "ext",
        "ext-forecast",
        "ext-grid",
        "ext-embodied",
        "ext-elastic",
        "ext-rank",
        "ext-pareto",
    ] {
        print_once(id);
        let experiment = registry::find(id).expect("known experiment id");
        h.bench(&format!("extensions/registry/{id}"), || {
            black_box(experiment.run(ctx()))
        });
    }
}

fn main() {
    let h = Harness::from_args("extensions");
    bench_ext_forecast(&h);
    bench_ext_elastic(&h);
    bench_ext_grid(&h);
    bench_ext_sim(&h);
    bench_ext_registry(&h);
    std::process::exit(h.finish());
}
