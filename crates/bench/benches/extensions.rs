//! Benchmarks for the extension subsystems: forecasting models, elastic
//! scaling, flexible grid load, merit-order dispatch, and the online
//! simulator.
//!
//! Like `figures.rs`, each group first prints the regenerated extension
//! tables so a `cargo bench` log doubles as a reproduction run, then
//! times the underlying kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use decarb_core::elastic::elastic_plan;
use decarb_core::flexload::{allocate_by_average_ci, allocate_flexible};
use decarb_core::signals::compare_signals;
use decarb_experiments::{ext_grid, run_experiment, Context};
use decarb_forecast::{
    backtest, BacktestConfig, DiurnalTemplate, Forecaster, LinearAr, Persistence, SeasonalNaive,
};
use decarb_sim::{CarbonAgnostic, SimConfig, Simulator, ThresholdSuspend};
use decarb_traces::time::year_start;
use decarb_traces::Region;
use decarb_workloads::{Job, Slack};

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(Context::default)
}

/// Prints an experiment's tables once, outside any timed section.
fn print_once(id: &str) {
    static PRINTED: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let mut printed = PRINTED.lock().expect("print lock");
    if printed.iter().any(|p| p == id) {
        return;
    }
    printed.push(id.to_string());
    for table in run_experiment(ctx(), id).expect("known experiment id") {
        println!("{table}");
    }
}

fn bench_ext_forecast(c: &mut Criterion) {
    print_once("ext-forecast");
    let data = ctx().data();
    let series = data.series("US-CA").expect("trace");
    let history = series.slice(year_start(2021), 8760).expect("training year");

    let mut group = c.benchmark_group("bench_ext_forecast");
    // Single 96-hour forecast per model.
    let ar = LinearAr::fit(&history).expect("full-year fit");
    let models: Vec<(&str, Box<dyn Forecaster>)> = vec![
        ("persistence", Box::new(Persistence)),
        ("seasonal_naive", Box::new(SeasonalNaive::daily())),
        ("diurnal_template", Box::new(DiurnalTemplate::default())),
        ("linear_ar", Box::new(ar)),
    ];
    for (name, model) in &models {
        group.bench_with_input(BenchmarkId::new("predict_96h", name), model, |b, m| {
            b.iter(|| black_box(m.predict(&history, 96)))
        });
    }
    group.bench_function("fit_linear_ar_1y", |b| {
        b.iter(|| black_box(LinearAr::fit(&history)))
    });
    group.sample_size(10);
    group.bench_function("backtest_template_30d", |b| {
        let cfg = BacktestConfig::default();
        b.iter(|| {
            black_box(backtest(
                &DiurnalTemplate::default(),
                series,
                year_start(2022),
                30 * 24,
                &cfg,
            ))
        })
    });
    group.finish();
}

fn bench_ext_elastic(c: &mut Criterion) {
    print_once("ext-elastic");
    let data = ctx().data();
    let series = data.series("US-CA").expect("trace");
    let arrival = year_start(2022);
    let mut group = c.benchmark_group("bench_ext_elastic");
    for &m in &[1usize, 8, 48] {
        group.bench_with_input(BenchmarkId::new("plan_48h_in_7d", m), &m, |b, &m| {
            b.iter(|| black_box(elastic_plan(series, arrival, 48, m, 7 * 24)))
        });
    }
    // Scaling in the window length (the sort dominates).
    for &days in &[7usize, 30, 365] {
        group.bench_with_input(
            BenchmarkId::new("plan_window_days", days),
            &days,
            |b, &d| b.iter(|| black_box(elastic_plan(series, arrival, 48, 8, d * 24))),
        );
    }
    group.finish();
}

fn bench_ext_grid(c: &mut Criterion) {
    print_once("ext-grid");
    let fleet = ext_grid::curtailment_grid();
    let demand = ext_grid::two_level_demand;
    let mut group = c.benchmark_group("bench_ext_grid");
    group.bench_function("dispatch_week", |b| {
        b.iter(|| black_box(fleet.dispatch_series(decarb_traces::Hour(0), demand, 168)))
    });
    group.bench_function("allocate_flexible_day", |b| {
        b.iter(|| {
            black_box(allocate_flexible(
                &fleet,
                demand,
                decarb_traces::Hour(0),
                24,
                1200.0,
                100.0,
                25.0,
            ))
        })
    });
    group.bench_function("allocate_by_average_day", |b| {
        b.iter(|| {
            black_box(allocate_by_average_ci(
                &fleet,
                demand,
                decarb_traces::Hour(0),
                24,
                1200.0,
                100.0,
            ))
        })
    });
    group.sample_size(20);
    group.bench_function("compare_signals_48h", |b| {
        b.iter(|| {
            black_box(compare_signals(
                &fleet,
                demand,
                decarb_traces::Hour(0),
                48,
                4,
                30,
                100.0,
            ))
        })
    });
    group.finish();
}

fn bench_ext_sim(c: &mut Criterion) {
    print_once("ext-embodied");
    let data = ctx().data();
    let codes = ["US-CA", "DE", "GB", "SE", "IN-WE"];
    let regions: Vec<&'static Region> = codes
        .iter()
        .map(|c| data.region(c).expect("region"))
        .collect();
    let start = year_start(2022);
    let jobs: Vec<Job> = (0..50u64)
        .map(|i| {
            Job::batch(
                i + 1,
                codes[(i % 5) as usize],
                start.plus((i as usize) * 150),
                24.0,
                Slack::Week,
            )
            .with_interruptible()
        })
        .collect();
    let mut group = c.benchmark_group("bench_ext_sim");
    group.sample_size(10);
    group.bench_function("year_5dc_50jobs_agnostic", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(data, &regions, SimConfig::new(start, 8760, 16));
            black_box(sim.run(&mut CarbonAgnostic, &jobs))
        })
    });
    group.bench_function("year_5dc_50jobs_threshold", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(data, &regions, SimConfig::new(start, 8760, 16));
            black_box(sim.run(&mut ThresholdSuspend::default(), &jobs))
        })
    });
    group.finish();
}

criterion_group!(
    extensions,
    bench_ext_forecast,
    bench_ext_elastic,
    bench_ext_grid,
    bench_ext_sim
);
criterion_main!(extensions);
