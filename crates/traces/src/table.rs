//! The interned region table: dense [`RegionId`]s over owned [`Region`]s.
//!
//! Every layer above the trace substrate used to pass `&'static Region`
//! / `&'static str` around, which welded the whole system to the
//! built-in 123-zone catalog and put a string hash on every hour×region
//! step of the simulator. A [`RegionTable`] interns an arbitrary set of
//! regions into dense `u16` ids: string lookups happen once at the API
//! edge ([`RegionTable::id`]), and everything downstream — trace
//! storage, datacenters, planners, routing, job origins — indexes flat
//! `Vec`s by id. The built-in catalog is just one pre-interned table
//! ([`RegionTable::builtin`]); imported datasets and scenario files
//! build their own.
//!
//! Ids are *per-table*: `RegionId(3)` names different zones in
//! different tables, so an id is only meaningful next to the table (or
//! [`crate::TraceSet`]) that produced it. Within one table ids are
//! stable: interning never reorders or invalidates earlier ids.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::catalog;
use crate::error::TraceError;
use crate::region::{GeoGroup, Region};

/// A dense handle to an interned region, valid for the table that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u16);

impl RegionId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An interning table of regions with dense, stable ids.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    regions: Vec<Region>,
    index: HashMap<String, RegionId>,
}

impl RegionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table by interning `regions` in order.
    ///
    /// Duplicate codes are a [`TraceError::Parse`]-free error surfaced
    /// as `Err` from [`RegionTable::intern`]; this constructor
    /// propagates the first one.
    pub fn from_regions(regions: Vec<Region>) -> Result<Self, TraceError> {
        let mut table = Self::new();
        for region in regions {
            table.intern(region)?;
        }
        Ok(table)
    }

    /// The built-in 123-zone catalog as a shared, pre-interned table.
    pub fn builtin() -> &'static RegionTable {
        static BUILTIN: OnceLock<RegionTable> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            RegionTable::from_regions(catalog::builtin_catalog().to_vec())
                // decarb-analyze: allow(no-panic) -- catalog code uniqueness is pinned by the catalog tests
                .expect("catalog codes are unique")
        })
    }

    /// Interns `region`, returning its new id. Codes are unique per
    /// table; re-interning an existing code is an error (use
    /// [`RegionTable::id`] to look it up instead).
    pub fn intern(&mut self, region: Region) -> Result<RegionId, TraceError> {
        if self.index.contains_key(&region.code) {
            return Err(TraceError::DuplicateRegion(region.code));
        }
        let id = RegionId(
            u16::try_from(self.regions.len())
                .map_err(|_| TraceError::TableFull(self.regions.len()))?,
        );
        self.index.insert(region.code.clone(), id);
        self.regions.push(region);
        Ok(id)
    }

    /// Interns `region` unless its code is already present, returning
    /// the (new or existing) id.
    pub fn intern_or_get(&mut self, region: Region) -> Result<RegionId, TraceError> {
        match self.id(&region.code) {
            Some(id) => Ok(id),
            None => self.intern(region),
        }
    }

    /// Looks a code up at the string edge.
    pub fn id(&self, code: &str) -> Option<RegionId> {
        self.index.get(code).copied()
    }

    /// The region behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    #[inline]
    pub fn get(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// The region behind `id`, if the id belongs to this table.
    #[inline]
    pub fn try_get(&self, id: RegionId) -> Option<&Region> {
        self.regions.get(id.index())
    }

    /// The zone code behind `id` (panics on a foreign id).
    #[inline]
    pub fn code(&self, id: RegionId) -> &str {
        &self.regions[id.index()].code
    }

    /// Number of interned regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` while nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// All interned regions, indexable by [`RegionId::index`].
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Iterates `(id, region)` in intern order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &Region)> + '_ {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| (RegionId(i as u16), r))
    }

    /// All ids, in intern order.
    pub fn ids(&self) -> impl Iterator<Item = RegionId> + 'static {
        (0..self.regions.len() as u16).map(RegionId)
    }

    /// Lexicographic rank of every id's zone code: `ranks[id.index()]`
    /// orders ids exactly as their codes compare as strings. Policies
    /// use this for deterministic integer tie-breaking without holding
    /// string references.
    pub fn lex_ranks(&self) -> Vec<u32> {
        let mut order: Vec<usize> = (0..self.regions.len()).collect();
        order.sort_by(|&a, &b| self.regions[a].code.cmp(&self.regions[b].code));
        let mut ranks = vec![0u32; self.regions.len()];
        for (rank, index) in order.into_iter().enumerate() {
            ranks[index] = rank as u32;
        }
        ranks
    }

    /// Ids of the regions in `group`, in intern order.
    pub fn ids_in_group(&self, group: GeoGroup) -> Vec<RegionId> {
        self.iter()
            .filter(|(_, r)| r.group == group)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_stable_ids() {
        let mut table = RegionTable::new();
        assert!(table.is_empty());
        let a = table.intern(Region::user("AA")).unwrap();
        let b = table.intern(Region::user("BB")).unwrap();
        assert_eq!(a, RegionId(0));
        assert_eq!(b, RegionId(1));
        // Earlier ids survive later interning (stability property).
        for i in 0..50 {
            table.intern(Region::user(&format!("Z{i:02}"))).unwrap();
            assert_eq!(table.id("AA"), Some(a));
            assert_eq!(table.id("BB"), Some(b));
            assert_eq!(table.code(a), "AA");
        }
        assert_eq!(table.len(), 52);
        assert!(!table.is_empty());
    }

    #[test]
    fn round_trip_code_to_id_to_region() {
        let table = RegionTable::builtin();
        assert_eq!(table.len(), 123);
        for (id, region) in table.iter() {
            assert_eq!(table.id(&region.code), Some(id), "{}", region.code);
            assert_eq!(table.get(id).code, region.code);
            assert_eq!(table.code(id), region.code);
            assert!(table.try_get(id).is_some());
        }
        assert_eq!(
            table.id("SE").map(|id| table.get(id).name.as_str()),
            Some("Sweden")
        );
        assert!(table.id("NOPE").is_none());
        assert!(table.try_get(RegionId(9999)).is_none());
    }

    #[test]
    fn builtin_table_is_shared_and_matches_catalog_order() {
        let a = RegionTable::builtin();
        let b = RegionTable::builtin();
        assert!(std::ptr::eq(a, b));
        for (i, region) in catalog::builtin_catalog().iter().enumerate() {
            assert_eq!(a.id(&region.code), Some(RegionId(i as u16)));
        }
    }

    #[test]
    fn duplicate_codes_are_rejected() {
        let mut table = RegionTable::new();
        table.intern(Region::user("AA")).unwrap();
        let err = table.intern(Region::user("AA")).unwrap_err();
        assert!(matches!(err, TraceError::DuplicateRegion(code) if code == "AA"));
        // intern_or_get returns the existing id instead.
        let id = table.intern_or_get(Region::user("AA")).unwrap();
        assert_eq!(id, RegionId(0));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn from_regions_round_trips() {
        let regions = vec![Region::user("AA"), Region::user("BB")];
        let table = RegionTable::from_regions(regions).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(
            table.ids().collect::<Vec<_>>(),
            vec![RegionId(0), RegionId(1)]
        );
        let dup = vec![Region::user("AA"), Region::user("AA")];
        assert!(RegionTable::from_regions(dup).is_err());
    }

    #[test]
    fn group_queries_by_id() {
        let table = RegionTable::builtin();
        let oceania = table.ids_in_group(GeoGroup::Oceania);
        assert_eq!(oceania.len(), 7);
        assert!(oceania
            .iter()
            .all(|&id| table.get(id).group == GeoGroup::Oceania));
        assert!(table.ids_in_group(GeoGroup::Other).is_empty());
    }

    #[test]
    fn display_form_is_compact() {
        assert_eq!(RegionId(7).to_string(), "r7");
        assert_eq!(RegionId(7).index(), 7);
    }
}
