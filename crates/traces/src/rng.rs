//! Deterministic pseudo-random number generation for trace synthesis.
//!
//! The synthesizer must produce byte-identical traces forever — results in
//! `EXPERIMENTS.md` reference concrete numbers — so we implement a small,
//! well-known generator (xoshiro256**) seeded via SplitMix64 instead of
//! depending on an external crate whose stream may change across versions.

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A xoshiro256** pseudo-random generator.
///
/// Deterministic, fast, and statistically strong enough for synthetic noise
/// generation. Not cryptographically secure.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Creates a generator seeded from a string label (e.g. a region code).
    pub fn from_label(label: &str, salt: u64) -> Self {
        // FNV-1a over the label, mixed with the salt.
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in label.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        Self::seeded(hash ^ salt.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // Use the top 53 bits for a full-precision mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a standard normal sample (Box–Muller transform).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        // Multiply-shift bounded sampling; bias is negligible for our use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn label_seeding_is_stable_and_distinct() {
        let mut a = Xoshiro256::from_label("US-CA", 7);
        let mut b = Xoshiro256::from_label("US-CA", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = Xoshiro256::from_label("US-WA", 7);
        let mut d = Xoshiro256::from_label("US-CA", 8);
        assert_ne!(b.next_u64(), c.next_u64());
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Xoshiro256::seeded(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Xoshiro256::seeded(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seeded(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Xoshiro256::seeded(17);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        Xoshiro256::seeded(1).below(0);
    }
}
