//! Region metadata: geography, cloud presence, and calibration targets.

use crate::mix::EnergyMix;

/// Geographical grouping used throughout the paper's spatial analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeoGroup {
    /// African zones.
    Africa,
    /// Asian and Middle-Eastern zones.
    Asia,
    /// European zones.
    Europe,
    /// North American zones.
    NorthAmerica,
    /// South American zones.
    SouthAmerica,
    /// Australian and New Zealand zones.
    Oceania,
}

impl GeoGroup {
    /// All groupings, in display order.
    pub const ALL: [GeoGroup; 6] = [
        GeoGroup::Africa,
        GeoGroup::Asia,
        GeoGroup::Europe,
        GeoGroup::NorthAmerica,
        GeoGroup::SouthAmerica,
        GeoGroup::Oceania,
    ];

    /// Returns a short label for table output.
    pub fn label(self) -> &'static str {
        match self {
            GeoGroup::Africa => "Africa",
            GeoGroup::Asia => "Asia",
            GeoGroup::Europe => "Europe",
            GeoGroup::NorthAmerica => "N. America",
            GeoGroup::SouthAmerica => "S. America",
            GeoGroup::Oceania => "Oceania",
        }
    }
}

impl std::fmt::Display for GeoGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cloud-provider presence flags for a region.
///
/// The catalog tags 99 of the 123 regions with at least one provider,
/// matching the datacenter-location counts in §3.1.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Providers(u8);

impl Providers {
    /// No cloud presence.
    pub const NONE: Providers = Providers(0);
    /// Google Cloud Platform.
    pub const GCP: Providers = Providers(1);
    /// Microsoft Azure.
    pub const AZURE: Providers = Providers(2);
    /// Amazon Web Services.
    pub const AWS: Providers = Providers(4);
    /// IBM Cloud.
    pub const IBM: Providers = Providers(8);
    /// Alibaba Cloud.
    pub const ALIBABA: Providers = Providers(16);

    /// Combines two provider sets.
    pub const fn union(self, other: Providers) -> Providers {
        Providers(self.0 | other.0)
    }

    /// Returns `true` if this set contains all providers in `other`.
    pub const fn contains(self, other: Providers) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no provider is present.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if at least one hyperscaler (GCP, Azure, AWS) is
    /// present — the criterion for the paper's Fig. 4 region set.
    pub const fn has_hyperscaler(self) -> bool {
        self.0 & (Self::GCP.0 | Self::AZURE.0 | Self::AWS.0) != 0
    }

    /// Returns the number of distinct providers present.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }
}

impl std::ops::BitOr for Providers {
    type Output = Providers;
    fn bitor(self, rhs: Providers) -> Providers {
        self.union(rhs)
    }
}

/// Static metadata for one grid region (an Electricity Maps-style zone).
#[derive(Debug, Clone)]
pub struct Region {
    /// Zone code, e.g. `"SE"` or `"US-CA"`.
    pub code: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// Geographical grouping.
    pub group: GeoGroup,
    /// Latitude in degrees (region centroid / main metro).
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Cloud providers with datacenters in this zone.
    pub providers: Providers,
    /// Annual average generation mix.
    pub mix: EnergyMix,
    /// Calibration target: 2022 annual mean carbon-intensity (g·CO2eq/kWh).
    pub mean_ci_2022: f64,
    /// Calibration target: total change in annual mean CI from 2020 to 2022
    /// (negative = decarbonizing).
    pub ci_delta_2020_2022: f64,
    /// Calibration target: average daily coefficient of variation of the
    /// carbon-intensity signal.
    pub daily_cv: f64,
    /// Strength of the diurnal/weekly cycle in `[0, 1]`; 0 produces an
    /// aperiodic signal (e.g. Hong Kong, Indonesia in Fig. 4).
    pub periodicity: f64,
    /// Member of the 40-region hyperscale set analyzed in Fig. 4.
    pub hyperscale_set: bool,
}

impl Region {
    /// Returns the 2020 annual mean implied by the calibration targets.
    pub fn mean_ci_2020(&self) -> f64 {
        self.mean_ci_2022 - self.ci_delta_2020_2022
    }

    /// Returns the calibrated annual mean for `year`, linearly
    /// interpolating the 2020→2022 drift and extrapolating to 2023.
    pub fn mean_ci(&self, year: i32) -> f64 {
        let per_year = self.ci_delta_2020_2022 / 2.0;
        (self.mean_ci_2022 + per_year * f64::from(year - 2022)).max(1.0)
    }

    /// Returns `true` if the region hosts any cloud datacenter.
    pub fn has_datacenter(&self) -> bool {
        !self.providers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::EnergyMix;

    fn region(mean: f64, delta: f64) -> Region {
        Region {
            code: "XX",
            name: "Test",
            group: GeoGroup::Europe,
            lat: 0.0,
            lon: 0.0,
            providers: Providers::GCP | Providers::AWS,
            mix: EnergyMix::new([0.5, 0.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0]),
            mean_ci_2022: mean,
            ci_delta_2020_2022: delta,
            daily_cv: 0.1,
            periodicity: 1.0,
            hyperscale_set: false,
        }
    }

    #[test]
    fn provider_flags() {
        let p = Providers::GCP | Providers::AZURE;
        assert!(p.contains(Providers::GCP));
        assert!(p.contains(Providers::AZURE));
        assert!(!p.contains(Providers::AWS));
        assert!(p.has_hyperscaler());
        assert_eq!(p.count(), 2);
        assert!(Providers::NONE.is_empty());
        assert!(!Providers::IBM.has_hyperscaler());
        assert!(!Providers::ALIBABA.has_hyperscaler());
    }

    #[test]
    fn mean_ci_interpolation() {
        let r = region(300.0, -50.0);
        assert!((r.mean_ci_2020() - 350.0).abs() < 1e-9);
        assert!((r.mean_ci(2020) - 350.0).abs() < 1e-9);
        assert!((r.mean_ci(2021) - 325.0).abs() < 1e-9);
        assert!((r.mean_ci(2022) - 300.0).abs() < 1e-9);
        assert!((r.mean_ci(2023) - 275.0).abs() < 1e-9);
    }

    #[test]
    fn mean_ci_floors_at_one() {
        let r = region(2.0, -50.0);
        assert_eq!(r.mean_ci(2023), 1.0);
    }

    #[test]
    fn group_labels_unique() {
        let labels: Vec<&str> = GeoGroup::ALL.iter().map(|g| g.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(format!("{}", GeoGroup::Oceania), "Oceania");
    }

    #[test]
    fn has_datacenter_from_providers() {
        let mut r = region(100.0, 0.0);
        assert!(r.has_datacenter());
        r.providers = Providers::NONE;
        assert!(!r.has_datacenter());
    }
}
