//! Region metadata: geography, cloud presence, and calibration targets.

use crate::mix::{EnergyMix, Source};

/// Geographical grouping used throughout the paper's spatial analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeoGroup {
    /// African zones.
    Africa,
    /// Asian and Middle-Eastern zones.
    Asia,
    /// European zones.
    Europe,
    /// North American zones.
    NorthAmerica,
    /// South American zones.
    SouthAmerica,
    /// Australian and New Zealand zones.
    Oceania,
    /// User-defined zones outside the paper's continental grouping
    /// (imported datasets and scenario-file regions default here).
    Other,
}

impl GeoGroup {
    /// The catalog's groupings, in display order. [`GeoGroup::Other`] is
    /// excluded: it only appears on user-defined regions, so group-wise
    /// sweeps over the built-in dataset stay non-empty.
    pub const ALL: [GeoGroup; 6] = [
        GeoGroup::Africa,
        GeoGroup::Asia,
        GeoGroup::Europe,
        GeoGroup::NorthAmerica,
        GeoGroup::SouthAmerica,
        GeoGroup::Oceania,
    ];

    /// Returns a short label for table output.
    pub fn label(self) -> &'static str {
        match self {
            GeoGroup::Africa => "Africa",
            GeoGroup::Asia => "Asia",
            GeoGroup::Europe => "Europe",
            GeoGroup::NorthAmerica => "N. America",
            GeoGroup::SouthAmerica => "S. America",
            GeoGroup::Oceania => "Oceania",
            GeoGroup::Other => "Other",
        }
    }

    /// Parses a grouping from sidecar/scenario-file text. Accepts the
    /// table labels plus friendlier aliases (case-insensitive).
    pub fn parse(text: &str) -> Result<GeoGroup, String> {
        match text.trim().to_lowercase().as_str() {
            "africa" => Ok(GeoGroup::Africa),
            "asia" => Ok(GeoGroup::Asia),
            "europe" => Ok(GeoGroup::Europe),
            "northamerica" | "north-america" | "n. america" | "na" => Ok(GeoGroup::NorthAmerica),
            "southamerica" | "south-america" | "s. america" | "sa" => Ok(GeoGroup::SouthAmerica),
            "oceania" => Ok(GeoGroup::Oceania),
            "other" => Ok(GeoGroup::Other),
            other => Err(format!(
                "unknown geography group `{other}` (valid: africa, asia, europe, \
                 north-america, south-america, oceania, other)"
            )),
        }
    }
}

impl std::fmt::Display for GeoGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cloud-provider presence flags for a region.
///
/// The catalog tags 99 of the 123 regions with at least one provider,
/// matching the datacenter-location counts in §3.1.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Providers(u8);

impl Providers {
    /// No cloud presence.
    pub const NONE: Providers = Providers(0);
    /// Google Cloud Platform.
    pub const GCP: Providers = Providers(1);
    /// Microsoft Azure.
    pub const AZURE: Providers = Providers(2);
    /// Amazon Web Services.
    pub const AWS: Providers = Providers(4);
    /// IBM Cloud.
    pub const IBM: Providers = Providers(8);
    /// Alibaba Cloud.
    pub const ALIBABA: Providers = Providers(16);

    /// Combines two provider sets.
    pub const fn union(self, other: Providers) -> Providers {
        Providers(self.0 | other.0)
    }

    /// Returns `true` if this set contains all providers in `other`.
    pub const fn contains(self, other: Providers) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no provider is present.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if at least one hyperscaler (GCP, Azure, AWS) is
    /// present — the criterion for the paper's Fig. 4 region set.
    pub const fn has_hyperscaler(self) -> bool {
        self.0 & (Self::GCP.0 | Self::AZURE.0 | Self::AWS.0) != 0
    }

    /// Returns the number of distinct providers present.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }
}

impl std::ops::BitOr for Providers {
    type Output = Providers;
    fn bitor(self, rhs: Providers) -> Providers {
        self.union(rhs)
    }
}

/// Metadata for one grid region (an Electricity Maps-style zone).
///
/// Regions are owned values: the built-in catalog is just one source of
/// them, and imported datasets or scenario files can declare their own
/// (see [`Region::user`] and [`Region::from_pairs`]). Identity inside a
/// dataset is the interned [`crate::table::RegionId`], not this struct.
#[derive(Debug, Clone)]
pub struct Region {
    /// Zone code, e.g. `"SE"` or `"US-CA"`.
    pub code: String,
    /// Human-readable name.
    pub name: String,
    /// Geographical grouping.
    pub group: GeoGroup,
    /// Latitude in degrees (region centroid / main metro).
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Cloud providers with datacenters in this zone.
    pub providers: Providers,
    /// Annual average generation mix.
    pub mix: EnergyMix,
    /// Calibration target: 2022 annual mean carbon-intensity (g·CO2eq/kWh).
    pub mean_ci_2022: f64,
    /// Calibration target: total change in annual mean CI from 2020 to 2022
    /// (negative = decarbonizing).
    pub ci_delta_2020_2022: f64,
    /// Calibration target: average daily coefficient of variation of the
    /// carbon-intensity signal.
    pub daily_cv: f64,
    /// Strength of the diurnal/weekly cycle in `[0, 1]`; 0 produces an
    /// aperiodic signal (e.g. Hong Kong, Indonesia in Fig. 4).
    pub periodicity: f64,
    /// Member of the 40-region hyperscale set analyzed in Fig. 4.
    pub hyperscale_set: bool,
}

impl Region {
    /// Returns the 2020 annual mean implied by the calibration targets.
    pub fn mean_ci_2020(&self) -> f64 {
        self.mean_ci_2022 - self.ci_delta_2020_2022
    }

    /// Returns the calibrated annual mean for `year`, linearly
    /// interpolating the 2020→2022 drift and extrapolating to 2023.
    pub fn mean_ci(&self, year: i32) -> f64 {
        let per_year = self.ci_delta_2020_2022 / 2.0;
        (self.mean_ci_2022 + per_year * f64::from(year - 2022)).max(1.0)
    }

    /// Returns `true` if the region hosts any cloud datacenter.
    pub fn has_datacenter(&self) -> bool {
        !self.providers.is_empty()
    }

    /// A user-defined region with default metadata: the fallback
    /// [`crate::csv::read_dataset`] interns for zones that are neither in
    /// the built-in catalog nor described by a metadata sidecar. The
    /// calibration targets sit at the paper's global averages (mean CI
    /// [`crate::GLOBAL_AVG_CI`], mild daily variability, a diurnal
    /// cycle); geography defaults to [`GeoGroup::Other`] at (0°, 0°), so
    /// latency-aware policies treat the zone as a distant island until a
    /// sidecar supplies coordinates.
    pub fn user(code: &str) -> Region {
        Region {
            code: code.to_string(),
            name: code.to_string(),
            group: GeoGroup::Other,
            lat: 0.0,
            lon: 0.0,
            providers: Providers::NONE,
            // A middle-of-the-road fossil/renewable split whose implied
            // CI sits near the global average.
            mix: EnergyMix::new([0.25, 0.25, 0.0, 0.1, 0.2, 0.1, 0.1, 0.0, 0.0]),
            mean_ci_2022: crate::GLOBAL_AVG_CI,
            ci_delta_2020_2022: 0.0,
            daily_cv: 0.08,
            periodicity: 0.8,
            hyperscale_set: false,
        }
    }

    /// Every key [`Region::from_pairs`] understands — the vocabulary
    /// behind the scenario checker's unknown-key suggestions.
    pub const KNOWN_KEYS: &'static [&'static str] = &[
        "name",
        "group",
        "lat",
        "lon",
        "mean_ci",
        "ci_delta",
        "daily_cv",
        "periodicity",
        "mix",
    ];

    /// Builds a region from `key = value` pairs (metadata sidecars and
    /// scenario-file `[region CODE]` sections). Every key is optional on
    /// top of the [`Region::user`] defaults: `name`, `group`, `lat`,
    /// `lon`, `mean_ci`, `ci_delta`, `daily_cv`, `periodicity`, and
    /// `mix` (a `source:share` list, e.g. `mix = hydro:0.6, wind:0.4`).
    /// Unknown keys and unparseable values are errors.
    pub fn from_pairs(code: &str, pairs: &[(String, String)]) -> Result<Region, String> {
        let mut region = Region::user(code);
        for (key, raw) in pairs {
            let parse_f64 = || -> Result<f64, String> {
                raw.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite())
                    .ok_or_else(|| format!("invalid value `{raw}` for region key `{key}`"))
            };
            match key.as_str() {
                "name" => region.name = raw.trim().to_string(),
                "group" => region.group = GeoGroup::parse(raw)?,
                "lat" => region.lat = parse_f64()?,
                "lon" => region.lon = parse_f64()?,
                "mean_ci" => {
                    let v = parse_f64()?;
                    if v <= 0.0 {
                        return Err("`mean_ci` must be positive".into());
                    }
                    region.mean_ci_2022 = v;
                }
                "ci_delta" => region.ci_delta_2020_2022 = parse_f64()?,
                "daily_cv" => {
                    let v = parse_f64()?;
                    if v < 0.0 {
                        return Err("`daily_cv` must be non-negative".into());
                    }
                    region.daily_cv = v;
                }
                "periodicity" => {
                    let v = parse_f64()?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err("`periodicity` must lie in [0, 1]".into());
                    }
                    region.periodicity = v;
                }
                "mix" => region.mix = parse_mix(raw)?,
                other => {
                    return Err(format!(
                        "unknown region key `{other}` (valid: {})",
                        Region::KNOWN_KEYS.join(", ")
                    ))
                }
            }
        }
        Ok(region)
    }
}

/// Parses `source:share` lists into an [`EnergyMix`], normalizing the
/// shares to sum to one.
fn parse_mix(raw: &str) -> Result<EnergyMix, String> {
    let mut shares = [0.0f64; 9];
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (label, value) = part
            .split_once(':')
            .ok_or_else(|| format!("invalid mix entry `{part}` (use source:share)"))?;
        let source = Source::parse(label)?;
        let share: f64 = value
            .trim()
            .parse()
            .ok()
            .filter(|v: &f64| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| format!("invalid mix share `{value}` for `{label}`"))?;
        shares[source as usize] += share;
    }
    let total: f64 = shares.iter().sum();
    if total <= 0.0 {
        return Err("`mix` must list at least one positive share".into());
    }
    for share in &mut shares {
        *share /= total;
    }
    Ok(EnergyMix::new(shares))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::EnergyMix;

    fn region(mean: f64, delta: f64) -> Region {
        Region {
            code: "XX".into(),
            name: "Test".into(),
            group: GeoGroup::Europe,
            lat: 0.0,
            lon: 0.0,
            providers: Providers::GCP | Providers::AWS,
            mix: EnergyMix::new([0.5, 0.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0]),
            mean_ci_2022: mean,
            ci_delta_2020_2022: delta,
            daily_cv: 0.1,
            periodicity: 1.0,
            hyperscale_set: false,
        }
    }

    #[test]
    fn provider_flags() {
        let p = Providers::GCP | Providers::AZURE;
        assert!(p.contains(Providers::GCP));
        assert!(p.contains(Providers::AZURE));
        assert!(!p.contains(Providers::AWS));
        assert!(p.has_hyperscaler());
        assert_eq!(p.count(), 2);
        assert!(Providers::NONE.is_empty());
        assert!(!Providers::IBM.has_hyperscaler());
        assert!(!Providers::ALIBABA.has_hyperscaler());
    }

    #[test]
    fn mean_ci_interpolation() {
        let r = region(300.0, -50.0);
        assert!((r.mean_ci_2020() - 350.0).abs() < 1e-9);
        assert!((r.mean_ci(2020) - 350.0).abs() < 1e-9);
        assert!((r.mean_ci(2021) - 325.0).abs() < 1e-9);
        assert!((r.mean_ci(2022) - 300.0).abs() < 1e-9);
        assert!((r.mean_ci(2023) - 275.0).abs() < 1e-9);
    }

    #[test]
    fn mean_ci_floors_at_one() {
        let r = region(2.0, -50.0);
        assert_eq!(r.mean_ci(2023), 1.0);
    }

    #[test]
    fn group_labels_unique() {
        let labels: Vec<&str> = GeoGroup::ALL.iter().map(|g| g.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(format!("{}", GeoGroup::Oceania), "Oceania");
        assert!(!GeoGroup::ALL.contains(&GeoGroup::Other));
        assert_eq!(GeoGroup::Other.label(), "Other");
    }

    #[test]
    fn group_parse_round_trips_and_accepts_aliases() {
        for group in GeoGroup::ALL.into_iter().chain([GeoGroup::Other]) {
            assert_eq!(GeoGroup::parse(group.label()).unwrap(), group);
        }
        assert_eq!(
            GeoGroup::parse("north-america").unwrap(),
            GeoGroup::NorthAmerica
        );
        assert_eq!(GeoGroup::parse(" EUROPE ").unwrap(), GeoGroup::Europe);
        assert!(GeoGroup::parse("atlantis").is_err());
    }

    #[test]
    fn has_datacenter_from_providers() {
        let mut r = region(100.0, 0.0);
        assert!(r.has_datacenter());
        r.providers = Providers::NONE;
        assert!(!r.has_datacenter());
    }

    #[test]
    fn user_region_defaults() {
        let r = Region::user("XX-NEW");
        assert_eq!(r.code, "XX-NEW");
        assert_eq!(r.name, "XX-NEW");
        assert_eq!(r.group, GeoGroup::Other);
        assert!(!r.has_datacenter());
        assert!((r.mean_ci_2022 - crate::GLOBAL_AVG_CI).abs() < 1e-9);
        let total: f64 = crate::mix::Source::ALL
            .iter()
            .map(|&s| r.mix.share(s))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "mix shares sum to one");
    }

    fn pairs(kv: &[(&str, &str)]) -> Vec<(String, String)> {
        kv.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn from_pairs_overrides_defaults() {
        let r = Region::from_pairs(
            "XX-HYDRO",
            &pairs(&[
                ("name", "Hydrotopia"),
                ("group", "south-america"),
                ("lat", "-10.5"),
                ("lon", "-55"),
                ("mean_ci", "45"),
                ("ci_delta", "-8"),
                ("daily_cv", "0.03"),
                ("periodicity", "0.4"),
                ("mix", "hydro:0.8, wind:0.2"),
            ]),
        )
        .unwrap();
        assert_eq!(r.name, "Hydrotopia");
        assert_eq!(r.group, GeoGroup::SouthAmerica);
        assert_eq!(r.lat, -10.5);
        assert_eq!(r.mean_ci_2022, 45.0);
        assert_eq!(r.ci_delta_2020_2022, -8.0);
        assert!((r.mix.share(Source::Hydro) - 0.8).abs() < 1e-9);
        assert!((r.mix.share(Source::Wind) - 0.2).abs() < 1e-9);
        assert_eq!(r.mix.share(Source::Coal), 0.0);
    }

    #[test]
    fn from_pairs_normalizes_mix_shares() {
        let r = Region::from_pairs("XX", &pairs(&[("mix", "coal:3, hydro:1")])).unwrap();
        assert!((r.mix.share(Source::Coal) - 0.75).abs() < 1e-9);
        assert!((r.mix.share(Source::Hydro) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn from_pairs_rejects_bad_inputs() {
        for (kv, needle) in [
            (vec![("group", "atlantis")], "unknown geography group"),
            (vec![("lat", "north")], "invalid value"),
            (vec![("mean_ci", "-5")], "must be positive"),
            (vec![("periodicity", "1.5")], "[0, 1]"),
            (vec![("daily_cv", "-0.1")], "non-negative"),
            (vec![("mix", "plutonium:1")], "unknown energy source"),
            (vec![("mix", "coal")], "source:share"),
            (vec![("mix", "coal:-1")], "invalid mix share"),
            (vec![("mix", "coal:0")], "at least one positive share"),
            (vec![("flux", "1")], "unknown region key"),
        ] {
            let err = Region::from_pairs("XX", &pairs(&kv)).unwrap_err();
            assert!(err.contains(needle), "{kv:?}: got `{err}`");
        }
    }
}
