//! Data-quality validation and repair for imported carbon traces.
//!
//! The built-in synthesizer emits clean data by construction, but the CSV
//! importers accept arbitrary real-world exports, which arrive with the
//! usual defects: missing hours encoded as zeros, sensor spikes, stuck
//! meters repeating one value for days, or NaNs from upstream joins. The
//! scheduling kernels assume strictly positive finite samples, so imports
//! should pass through [`validate`] (and, when acceptable, [`repair`])
//! first.

use crate::series::TimeSeries;
use crate::time::Hour;

/// Thresholds for [`validate`].
#[derive(Debug, Clone, Copy)]
pub struct ValidationConfig {
    /// A sample is a spike when it exceeds `spike_ratio` × (or falls
    /// below 1/ratio of) the mean of its immediate neighbours.
    pub spike_ratio: f64,
    /// A run of at least this many identical consecutive samples is
    /// flagged as a stuck meter.
    pub stuck_run: usize,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self {
            // Real grids rarely triple their CI within one hour; a 3×
            // hour-over-hour excursion against both neighbours is far
            // outside the ramping physics of §2.1.
            spike_ratio: 3.0,
            stuck_run: 24,
        }
    }
}

/// The outcome of validating one trace.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Number of samples inspected.
    pub samples: usize,
    /// Hours holding NaN or ±∞.
    pub non_finite: Vec<Hour>,
    /// Hours holding zero or negative carbon-intensity.
    pub non_positive: Vec<Hour>,
    /// Hours flagged as spikes against both neighbours.
    pub spikes: Vec<Hour>,
    /// Starts and lengths of stuck-meter runs.
    pub stuck_runs: Vec<(Hour, usize)>,
}

impl ValidationReport {
    /// Returns `true` when no defect was found.
    pub fn is_clean(&self) -> bool {
        self.non_finite.is_empty()
            && self.non_positive.is_empty()
            && self.spikes.is_empty()
            && self.stuck_runs.is_empty()
    }

    /// Total number of defective samples (stuck runs counted in full).
    pub fn defect_count(&self) -> usize {
        self.non_finite.len()
            + self.non_positive.len()
            + self.spikes.len()
            + self.stuck_runs.iter().map(|&(_, len)| len).sum::<usize>()
    }
}

/// Validates a trace against `config`.
///
/// # Examples
///
/// ```
/// use decarb_traces::{validate, ValidationConfig, TimeSeries, Hour};
///
/// let dirty = TimeSeries::new(Hour(0), vec![300.0, f64::NAN, 310.0]);
/// let report = validate(&dirty, &ValidationConfig::default());
/// assert_eq!(report.non_finite, vec![Hour(1)]);
/// assert!(!report.is_clean());
/// ```
pub fn validate(series: &TimeSeries, config: &ValidationConfig) -> ValidationReport {
    let values = series.values();
    let start = series.start();
    let mut report = ValidationReport {
        samples: values.len(),
        non_finite: Vec::new(),
        non_positive: Vec::new(),
        spikes: Vec::new(),
        stuck_runs: Vec::new(),
    };
    for (i, &v) in values.iter().enumerate() {
        if !v.is_finite() {
            report.non_finite.push(start.plus(i));
        } else if v <= 0.0 {
            report.non_positive.push(start.plus(i));
        }
    }
    // Spikes: compare each interior sample against its neighbour mean,
    // using only finite positive neighbours.
    for i in 1..values.len().saturating_sub(1) {
        let (prev, here, next) = (values[i - 1], values[i], values[i + 1]);
        if !here.is_finite() || !prev.is_finite() || !next.is_finite() {
            continue;
        }
        if prev <= 0.0 || here <= 0.0 || next <= 0.0 {
            continue;
        }
        let neighbours = (prev + next) / 2.0;
        if here > config.spike_ratio * neighbours || here < neighbours / config.spike_ratio {
            report.spikes.push(start.plus(i));
        }
    }
    // Stuck runs of identical values.
    let mut i = 0usize;
    while i < values.len() {
        let mut j = i + 1;
        while j < values.len() && values[j] == values[i] && values[i].is_finite() {
            j += 1;
        }
        if j - i >= config.stuck_run {
            report.stuck_runs.push((start.plus(i), j - i));
        }
        i = j;
    }
    report
}

/// Repairs a defective trace by linear interpolation.
///
/// Non-finite and non-positive samples are replaced by interpolating the
/// nearest valid samples on each side (extrapolating flat at the edges).
/// Returns `None` when no sample is valid.
pub fn repair(series: &TimeSeries) -> Option<TimeSeries> {
    let values = series.values();
    let valid = |v: f64| v.is_finite() && v > 0.0;
    if !values.iter().any(|&v| valid(v)) {
        return None;
    }
    let mut out = values.to_vec();
    let n = out.len();
    let mut i = 0usize;
    while i < n {
        if valid(out[i]) {
            i += 1;
            continue;
        }
        // Find the defective run [i, j).
        let mut j = i;
        while j < n && !valid(out[j]) {
            j += 1;
        }
        let left = if i > 0 { Some(out[i - 1]) } else { None };
        let right = if j < n { Some(out[j]) } else { None };
        for (offset, slot) in out[i..j].iter_mut().enumerate() {
            *slot = match (left, right) {
                (Some(l), Some(r)) => {
                    let t = (offset + 1) as f64 / (j - i + 1) as f64;
                    l + (r - l) * t
                }
                (Some(l), None) => l,
                (None, Some(r)) => r,
                (None, None) => unreachable!("checked above that some sample is valid"),
            };
        }
        i = j;
    }
    Some(TimeSeries::new(series.start(), out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        TimeSeries::new(Hour(100), values.to_vec())
    }

    #[test]
    fn clean_trace_passes() {
        let s = series(&[300.0, 310.0, 290.0, 305.0, 295.0]);
        let report = validate(&s, &ValidationConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.defect_count(), 0);
        assert_eq!(report.samples, 5);
    }

    #[test]
    fn non_finite_and_non_positive_flagged() {
        let s = series(&[300.0, f64::NAN, -5.0, 0.0, 310.0]);
        let report = validate(&s, &ValidationConfig::default());
        assert_eq!(report.non_finite, vec![Hour(101)]);
        assert_eq!(report.non_positive, vec![Hour(102), Hour(103)]);
        assert!(!report.is_clean());
    }

    #[test]
    fn spikes_detected_in_both_directions() {
        let s = series(&[300.0, 300.0, 1200.0, 300.0, 80.0, 300.0, 300.0]);
        let report = validate(&s, &ValidationConfig::default());
        assert_eq!(report.spikes, vec![Hour(102), Hour(104)]);
    }

    #[test]
    fn gentle_ramps_are_not_spikes() {
        // A 2× hour-over-hour rise stays under the 3× default ratio.
        let s = series(&[100.0, 200.0, 380.0, 200.0, 100.0]);
        let report = validate(&s, &ValidationConfig::default());
        assert!(report.spikes.is_empty(), "{:?}", report.spikes);
    }

    #[test]
    fn stuck_meter_detected() {
        let mut values = vec![250.0; 30];
        values.extend([300.0, 310.0, 320.0]);
        let report = validate(&series(&values), &ValidationConfig::default());
        assert_eq!(report.stuck_runs, vec![(Hour(100), 30)]);
        // Shorter runs pass.
        let short = vec![250.0; 10];
        assert!(validate(&series(&short), &ValidationConfig::default())
            .stuck_runs
            .is_empty());
    }

    #[test]
    fn repair_interpolates_interior_runs() {
        let s = series(&[100.0, f64::NAN, 0.0, -3.0, 200.0]);
        let fixed = repair(&s).unwrap();
        assert_eq!(fixed.values(), &[100.0, 125.0, 150.0, 175.0, 200.0]);
        assert!(validate(&fixed, &ValidationConfig::default()).is_clean());
    }

    #[test]
    fn repair_extends_flat_at_edges() {
        let s = series(&[f64::NAN, f64::NAN, 300.0, 0.0]);
        let fixed = repair(&s).unwrap();
        assert_eq!(fixed.values(), &[300.0, 300.0, 300.0, 300.0]);
    }

    #[test]
    fn repair_of_hopeless_trace_is_none() {
        let s = series(&[f64::NAN, 0.0, -1.0]);
        assert!(repair(&s).is_none());
    }

    #[test]
    fn repair_extrapolates_trailing_runs_flat() {
        // A trailing defective run has no right anchor: the `(Some,
        // None)` arm extends the last valid sample flat.
        let s = series(&[120.0, 150.0, f64::NAN, 0.0, -8.0]);
        let fixed = repair(&s).unwrap();
        assert_eq!(fixed.values(), &[120.0, 150.0, 150.0, 150.0, 150.0]);
        assert_eq!(fixed.start(), s.start());
        assert!(validate(&fixed, &ValidationConfig::default()).is_clean());
    }

    #[test]
    fn repair_extrapolates_leading_runs_flat() {
        // A leading defective run has no left anchor: the `(None,
        // Some)` arm extends the first valid sample backwards.
        let s = series(&[f64::NAN, -1.0, 0.0, 240.0, 250.0]);
        let fixed = repair(&s).unwrap();
        assert_eq!(fixed.values(), &[240.0, 240.0, 240.0, 240.0, 250.0]);
    }

    #[test]
    fn repair_handles_leading_and_trailing_runs_around_one_anchor() {
        // A single valid sample anchors both edge extrapolations.
        let s = series(&[f64::NAN, f64::NAN, 77.0, 0.0, f64::NAN]);
        let fixed = repair(&s).unwrap();
        assert_eq!(fixed.values(), &[77.0, 77.0, 77.0, 77.0, 77.0]);
    }

    #[test]
    fn repair_of_all_defective_variants_is_none() {
        // Every sample invalid, whatever the defect class.
        assert!(repair(&series(&[f64::NAN, f64::NAN])).is_none());
        assert!(repair(&series(&[0.0, 0.0, 0.0])).is_none());
        assert!(repair(&series(&[f64::NEG_INFINITY, f64::INFINITY])).is_none());
        assert!(repair(&series(&[])).is_none());
    }

    #[test]
    fn repair_preserves_clean_traces() {
        let s = series(&[10.0, 20.0, 30.0]);
        let fixed = repair(&s).unwrap();
        assert_eq!(fixed, s);
    }
}
