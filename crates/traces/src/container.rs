//! The binary trace container: a packed, integrity-checked dataset file.
//!
//! CSV is the interchange format, but parsing `zone,hour,value` rows is
//! the dominant cost of every process start on year-scale multi-grid
//! datasets — and the sharded sweep fan-out multiplies that cost by the
//! worker count, since each child re-imports the same file. This module
//! defines a versioned binary layout that loads in one pass with no
//! string work past the metadata block:
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────┐
//! │ header (36 bytes)                                              │
//! │   magic   [8]  89 44 43 54 0D 0A 1A 0A  (\x89"DCT"\r\n\x1a\n)  │
//! │   version u16  format revision (currently 1)                   │
//! │   regions u16  region count                                    │
//! │   res     u32  minutes per sample (60 = hourly)                │
//! │   start   u32  absolute start hour (since 2020-01-01 UTC)      │
//! │   hours   u64  total samples per region                        │
//! │   segs    u32  value-segment count                             │
//! │   meta    u32  metadata block length in bytes                  │
//! ├────────────────────────────────────────────────────────────────┤
//! │ region metadata block (everything a sidecar can declare)       │
//! │   per region: code, name, geo group, providers, hyperscale     │
//! │   flag, lat/lon, calibration targets, 9-way source mix         │
//! ├────────────────────────────────────────────────────────────────┤
//! │ value segment × segs                                           │
//! │   seg_hours u64, then per region (in metadata order) one       │
//! │   fixed-width block of seg_hours little-endian f64 samples     │
//! ├────────────────────────────────────────────────────────────────┤
//! │ trailer: chunked FNV-1a 64-bit hash of every preceding byte    │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The PNG-style magic (a high-bit byte, CRLF, ^Z, LF) can never open a
//! `zone,hour,value` CSV, so `--data` consumers sniff the first eight
//! bytes and route to the right loader ([`is_container`]).
//!
//! Segments exist for [`append`]: extending a dataset with newly
//! observed hours copies the existing byte range verbatim, adds one new
//! segment at the tail, and rewrites only the fixed-size header and the
//! trailer hash — history is never re-encoded. [`decode`] concatenates
//! the segments per region into one contiguous series.
//!
//! The trailing hash makes a container self-verifying: [`decode`],
//! [`probe`], and [`append`] all reject a file whose bytes do not match
//! the recorded hash, and the hash doubles as a cheap dataset identity
//! for comparing inputs across sweep hosts.

use crate::dataset::TraceSet;
use crate::error::TraceError;
use crate::mix::{EnergyMix, Source};
use crate::region::{GeoGroup, Providers, Region};
use crate::series::TimeSeries;
use crate::time::{Hour, Resolution};

/// The 8-byte file magic. Modeled on PNG's: the high-bit first byte
/// breaks text decoders, `\r\n` catches newline translation, and `^Z`
/// stops DOS-style `type`.
pub const MAGIC: [u8; 8] = [0x89, b'D', b'C', b'T', 0x0D, 0x0A, 0x1A, 0x0A];

/// The format revision written by [`encode`].
pub const VERSION: u16 = 1;

/// Default minutes per sample (hourly) — what [`encode`] writes for
/// datasets that never declared a finer axis. Containers may carry any
/// divisor of 60; [`decode`] validates and stamps it onto the dataset.
pub const RESOLUTION_MINUTES: u32 = 60;

/// Fixed header length in bytes (magic through `meta_len`).
const HEADER_LEN: usize = 36;
/// Trailer length in bytes (the FNV-1a hash).
const TRAILER_LEN: usize = 8;

/// Geo groups in wire order; the on-disk group byte is an index here.
const GROUP_WIRE: [GeoGroup; 7] = [
    GeoGroup::Africa,
    GeoGroup::Asia,
    GeoGroup::Europe,
    GeoGroup::NorthAmerica,
    GeoGroup::SouthAmerica,
    GeoGroup::Oceania,
    GeoGroup::Other,
];

/// Provider flags in wire order; bit *i* of the on-disk provider byte.
const PROVIDER_WIRE: [Providers; 5] = [
    Providers::GCP,
    Providers::AZURE,
    Providers::AWS,
    Providers::IBM,
    Providers::ALIBABA,
];

/// FNV-1a 64-bit hash — the primitive under the container's content
/// hash and the same construction the sweep pipeline uses for
/// content-addressed ids.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Bytes per content-hash chunk.
const HASH_CHUNK: usize = 1 << 20;

/// FNV-1a folded over little-endian 8-byte words, with a trailing
/// length mix — the chunk digest under [`content_hash`].
///
/// Byte-serial FNV-1a advances its multiply dependency chain once per
/// byte, which on a year-scale value section costs more than decoding
/// the values it guards. Folding a word at a time keeps the same
/// xor-and-multiply structure with an eighth of the chain; the length
/// mix keeps a short chunk from colliding with its zero-padded
/// extension.
/// Copies an exact-width chunk into a fixed array. Callers pass slices
/// whose width `chunks_exact`/`take` already checked; short input pads
/// with zeros instead of panicking.
fn array_from<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    let len = N.min(slice.len());
    out[..len].copy_from_slice(&slice[..len]);
    out
}

fn fnv1a64_words(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for word in words.by_ref() {
        hash ^= u64::from_le_bytes(array_from(word));
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let mut tail = 0u64;
    for (i, &byte) in words.remainder().iter().enumerate() {
        tail |= u64::from(byte) << (8 * i);
    }
    hash ^= tail;
    hash = hash.wrapping_mul(0x100_0000_01b3);
    hash ^= bytes.len() as u64;
    hash.wrapping_mul(0x100_0000_01b3)
}

/// The container content hash: FNV-1a over the concatenated
/// little-endian [`fnv1a64_words`] digests of each 1 MiB chunk of
/// `bytes`.
///
/// The two-level construction lets the chunk digests run in parallel on
/// multi-core hosts; it is a fixed part of the format, so every writer
/// and verifier computes the same value regardless of thread count.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let chunks: Vec<&[u8]> = bytes.chunks(HASH_CHUNK).collect();
    let digests = decarb_par::par_map(&chunks, |chunk| fnv1a64_words(chunk));
    let mut cat = Vec::with_capacity(digests.len() * 8);
    for digest in digests {
        cat.extend_from_slice(&digest.to_le_bytes());
    }
    fnv1a64(&cat)
}

/// Returns `true` if `bytes` start with the container magic — the
/// format auto-detection every `--data` consumer applies.
pub fn is_container(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// A parsed header plus file-level facts: what `probe` reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerInfo {
    /// Format revision.
    pub version: u16,
    /// Region count.
    pub regions: usize,
    /// Absolute start hour of every region's series.
    pub start: Hour,
    /// Samples per region.
    pub hours: usize,
    /// Minutes per sample (60 = hourly).
    pub resolution_minutes: u32,
    /// Value segments (1 after `pack`, +1 per `append`).
    pub segments: usize,
    /// The FNV-1a content hash recorded in (and verified against) the
    /// trailer.
    pub content_hash: u64,
    /// Total file length in bytes.
    pub file_bytes: usize,
}

/// Shorthand for the module's error variant.
fn bad(label: &str, reason: impl Into<String>) -> TraceError {
    TraceError::Container {
        path: label.to_string(),
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encodes `set` as a single-segment container.
///
/// The fixed-width value blocks require uniform coverage: every region
/// must share one start hour and one sample count, otherwise this is a
/// [`TraceError::Container`] naming the two mismatched zones.
pub fn encode(set: &TraceSet) -> Result<Vec<u8>, TraceError> {
    let (start, hours) = uniform_span(set, "<encode>")?;
    let regions = u16::try_from(set.len()).map_err(|_| TraceError::TableFull(set.len()))?;
    let meta = encode_metadata(set.regions());
    let meta_len = u32::try_from(meta.len())
        .map_err(|_| bad("<encode>", "region metadata block exceeds 4 GiB"))?;

    let values_len = 8 + set.len() * hours * 8;
    let mut out = Vec::with_capacity(HEADER_LEN + meta.len() + values_len + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&regions.to_le_bytes());
    out.extend_from_slice(&set.resolution().minutes().to_le_bytes());
    out.extend_from_slice(&start.0.to_le_bytes());
    out.extend_from_slice(&(hours as u64).to_le_bytes());
    out.extend_from_slice(&1u32.to_le_bytes());
    out.extend_from_slice(&meta_len.to_le_bytes());
    out.extend_from_slice(&meta);
    out.extend_from_slice(&(hours as u64).to_le_bytes());
    // Per-region value blocks, encoded in parallel (the blocks have a
    // known fixed width, so workers produce independent chunks that
    // concatenate in intern order).
    let blocks = decarb_par::par_map(set.regions(), |region| {
        let series = set
            // decarb-analyze: allow(no-panic) -- iterating set.regions(): every one is interned in the same table
            .series_by_id(set.table().id(&region.code).expect("region is interned"))
            .values();
        let mut block = Vec::with_capacity(series.len() * 8);
        for value in series {
            block.extend_from_slice(&value.to_le_bytes());
        }
        block
    });
    for block in blocks {
        out.extend_from_slice(&block);
    }
    let hash = content_hash(&out);
    out.extend_from_slice(&hash.to_le_bytes());
    Ok(out)
}

/// Checks that every region spans the same `[start, start+len)` window.
fn uniform_span(set: &TraceSet, label: &str) -> Result<(Hour, usize), TraceError> {
    let mut span: Option<(&str, Hour, usize)> = None;
    for (region, series) in set.iter() {
        match span {
            None => span = Some((&region.code, series.start(), series.len())),
            Some((first, start, len)) => {
                if series.start() != start || series.len() != len {
                    return Err(bad(
                        label,
                        format!(
                            "ragged coverage: zone {first} spans hours {}..{} but zone {} \
                             spans {}..{}; fixed-width value blocks need uniform coverage",
                            start.0,
                            start.0 as usize + len,
                            region.code,
                            series.start().0,
                            series.start().index() + series.len(),
                        ),
                    ));
                }
            }
        }
    }
    Ok(span.map_or((Hour(0), 0), |(_, start, len)| (start, len)))
}

/// Serializes the region metadata block.
fn encode_metadata(regions: &[Region]) -> Vec<u8> {
    let mut out = Vec::new();
    for region in regions {
        put_str(&mut out, &region.code);
        put_str(&mut out, &region.name);
        let group = GROUP_WIRE
            .iter()
            .position(|&g| g == region.group)
            // decarb-analyze: allow(no-panic) -- GROUP_WIRE lists every GeoGroup variant; pinned by the wire-format tests
            .expect("GROUP_WIRE covers every GeoGroup variant") as u8;
        out.push(group);
        let mut providers = 0u8;
        for (bit, &flag) in PROVIDER_WIRE.iter().enumerate() {
            if region.providers.contains(flag) {
                providers |= 1 << bit;
            }
        }
        out.push(providers);
        out.push(u8::from(region.hyperscale_set));
        for value in [
            region.lat,
            region.lon,
            region.mean_ci_2022,
            region.ci_delta_2020_2022,
            region.daily_cv,
            region.periodicity,
        ] {
            out.extend_from_slice(&value.to_le_bytes());
        }
        for source in Source::ALL {
            out.extend_from_slice(&region.mix.share(source).to_le_bytes());
        }
    }
    out
}

/// Writes a length-prefixed UTF-8 string (u16 length).
fn put_str(out: &mut Vec<u8>, text: &str) {
    let len = u16::try_from(text.len()).unwrap_or(u16::MAX);
    let text = &text.as_bytes()[..len as usize];
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(text);
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader over the container bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    label: &'a str,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(bad(
                self.label,
                format!(
                    "truncated {what}: needed {n} bytes at offset {} but the file holds {}; \
                     the file was cut short — re-pack it from the source CSV",
                    self.pos,
                    self.bytes.len()
                ),
            ));
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self, what: &str) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(array_from(self.take(2, what)?)))
    }

    fn u32(&mut self, what: &str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(array_from(self.take(4, what)?)))
    }

    fn u64(&mut self, what: &str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(array_from(self.take(8, what)?)))
    }

    fn f64(&mut self, what: &str) -> Result<f64, TraceError> {
        Ok(f64::from_le_bytes(array_from(self.take(8, what)?)))
    }

    fn str(&mut self, what: &str) -> Result<&'a str, TraceError> {
        let len = self.u16(what)? as usize;
        let raw = self.take(len, what)?;
        std::str::from_utf8(raw).map_err(|_| bad(self.label, format!("{what} is not UTF-8")))
    }
}

/// The parsed fixed header.
struct Header {
    regions: usize,
    resolution_minutes: u32,
    start: Hour,
    hours: usize,
    segments: usize,
    meta_len: usize,
    version: u16,
}

/// Checks magic, version, and the trailer hash, then parses the fixed
/// header. Every loader goes through this gate.
fn verify_and_read_header(bytes: &[u8], label: &str) -> Result<(Header, u64), TraceError> {
    if !is_container(bytes) {
        return Err(bad(
            label,
            "bad magic: not a decarb trace container (pack one with `data pack`)",
        ));
    }
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(bad(
            label,
            format!(
                "truncated header: the file holds {} bytes but the fixed header and \
                 hash trailer need {}",
                bytes.len(),
                HEADER_LEN + TRAILER_LEN
            ),
        ));
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let recorded = u64::from_le_bytes(array_from(&bytes[bytes.len() - TRAILER_LEN..]));
    let actual = content_hash(body);
    if recorded != actual {
        return Err(bad(
            label,
            format!(
                "content hash mismatch: trailer records fnv1a64:{recorded:016x} but the \
                 bytes hash to fnv1a64:{actual:016x}; the file is corrupt or was \
                 modified in place — re-pack it from the source CSV"
            ),
        ));
    }
    let mut r = Reader {
        bytes: body,
        pos: MAGIC.len(),
        label,
    };
    let version = r.u16("header")?;
    if version != VERSION {
        return Err(bad(
            label,
            format!(
                "unsupported container version {version} (this build reads version \
                 {VERSION}); re-pack the dataset with this binary"
            ),
        ));
    }
    let regions = r.u16("header")? as usize;
    let resolution_minutes = r.u32("header")?;
    let start = Hour(r.u32("header")?);
    let hours = usize::try_from(r.u64("header")?)
        .map_err(|_| bad(label, "header hour count exceeds the address space"))?;
    let segments = r.u32("header")? as usize;
    let meta_len = r.u32("header")? as usize;
    Ok((
        Header {
            regions,
            resolution_minutes,
            start,
            hours,
            segments,
            meta_len,
            version,
        },
        recorded,
    ))
}

/// Parses the region metadata block into owned [`Region`]s.
fn decode_metadata(r: &mut Reader<'_>, count: usize) -> Result<Vec<Region>, TraceError> {
    let mut regions = Vec::with_capacity(count);
    for _ in 0..count {
        let code = r.str("region code")?.to_string();
        let name = r.str("region name")?.to_string();
        let group_byte = r.take(1, "region group")?[0] as usize;
        let group = *GROUP_WIRE.get(group_byte).ok_or_else(|| {
            bad(
                r.label,
                format!("region {code}: unknown geo-group byte {group_byte}"),
            )
        })?;
        let provider_bits = r.take(1, "region providers")?[0];
        let mut providers = Providers::NONE;
        for (bit, &flag) in PROVIDER_WIRE.iter().enumerate() {
            if provider_bits & (1 << bit) != 0 {
                providers = providers | flag;
            }
        }
        let hyperscale_set = r.take(1, "region flags")?[0] != 0;
        let lat = r.f64("region latitude")?;
        let lon = r.f64("region longitude")?;
        let mean_ci_2022 = r.f64("region mean CI")?;
        let ci_delta_2020_2022 = r.f64("region CI delta")?;
        let daily_cv = r.f64("region daily CV")?;
        let periodicity = r.f64("region periodicity")?;
        let mut shares = [0.0f64; 9];
        for share in &mut shares {
            *share = r.f64("region mix")?;
        }
        if shares.iter().any(|&s| s.is_nan() || s < 0.0) || shares.iter().sum::<f64>() <= 0.0 {
            return Err(bad(
                r.label,
                format!("region {code}: invalid generation-mix shares"),
            ));
        }
        regions.push(Region {
            code,
            name,
            group,
            lat,
            lon,
            providers,
            mix: EnergyMix::from_normalized(shares),
            mean_ci_2022,
            ci_delta_2020_2022,
            daily_cv,
            periodicity,
            hyperscale_set,
        });
    }
    Ok(regions)
}

/// Decodes a container into a [`TraceSet`].
///
/// `label` names the source in errors (the file path at the CLI edge).
/// The load is one pass and allocation-lean: strings exist only in the
/// metadata block; each region's samples are bulk-converted from the
/// fixed-width segments into one pre-sized `Vec<f64>`.
pub fn decode(bytes: &[u8], label: &str) -> Result<TraceSet, TraceError> {
    let (header, _) = verify_and_read_header(bytes, label)?;
    let mut r = Reader {
        bytes: &bytes[..bytes.len() - TRAILER_LEN],
        pos: HEADER_LEN,
        label,
    };
    let meta_end = HEADER_LEN
        .checked_add(header.meta_len)
        .filter(|&e| e <= r.bytes.len())
        .ok_or_else(|| bad(label, "truncated region metadata block"))?;
    let regions = decode_metadata(&mut r, header.regions)?;
    if r.pos != meta_end {
        return Err(bad(
            label,
            format!(
                "region metadata block length mismatch: header says {} bytes, parsed {}",
                header.meta_len,
                r.pos - HEADER_LEN
            ),
        ));
    }
    // Walk the segment structure sequentially (cheap pointer
    // arithmetic), then fan the actual byte→f64 conversion out across
    // regions — on the year-long 123-zone dataset that conversion, not
    // the walk, is the bulk of the decode.
    let mut blocks: Vec<Vec<&[u8]>> = regions
        .iter()
        .map(|_| Vec::with_capacity(header.segments))
        .collect();
    let mut covered = 0usize;
    for _ in 0..header.segments {
        let seg_hours = usize::try_from(r.u64("segment header")?)
            .map_err(|_| bad(label, "segment hour count exceeds the address space"))?;
        for region_blocks in &mut blocks {
            region_blocks.push(r.take(seg_hours * 8, "value block")?);
        }
        covered += seg_hours;
    }
    if covered != header.hours {
        return Err(bad(
            label,
            format!(
                "segment hours sum to {covered} but the header promises {}",
                header.hours
            ),
        ));
    }
    if r.pos != r.bytes.len() {
        return Err(bad(
            label,
            format!(
                "{} trailing bytes after the last value block",
                r.bytes.len() - r.pos
            ),
        ));
    }
    let resolution = Resolution::from_minutes(header.resolution_minutes)
        .map_err(|reason| bad(label, format!("header {reason}")))?;
    let values = decode_value_blocks(&blocks, header.hours);
    let pairs = regions
        .into_iter()
        .zip(values)
        .map(|(region, values)| (region, TimeSeries::new(header.start, values)))
        .collect();
    Ok(TraceSet::try_from_series(pairs)?.with_resolution(resolution))
}

/// Fans the byte→f64 conversion of the per-region segment blocks out
/// across worker threads. On the year-long 123-zone dataset this
/// conversion, not the segment walk, dominates the whole decode.
// decarb-analyze: hot-path
fn decode_value_blocks(blocks: &[Vec<&[u8]>], hours: usize) -> Vec<Vec<f64>> {
    decarb_par::par_map(blocks, |region_blocks| {
        let mut out = Vec::with_capacity(hours);
        for block in region_blocks {
            out.extend(
                block
                    .chunks_exact(8)
                    .map(|chunk| f64::from_le_bytes(array_from(chunk))),
            );
        }
        out
    })
}

/// Verifies a container and reports its header facts without building
/// the dataset: magic, version, and hash are checked, and the segment
/// structure is walked so truncation inside a value block is caught.
pub fn probe(bytes: &[u8], label: &str) -> Result<ContainerInfo, TraceError> {
    let (header, content_hash) = verify_and_read_header(bytes, label)?;
    let mut r = Reader {
        bytes: &bytes[..bytes.len() - TRAILER_LEN],
        pos: HEADER_LEN,
        label,
    };
    r.take(header.meta_len, "region metadata block")?;
    let mut covered = 0usize;
    for _ in 0..header.segments {
        let seg_hours = usize::try_from(r.u64("segment header")?)
            .map_err(|_| bad(label, "segment hour count exceeds the address space"))?;
        r.take(header.regions * seg_hours * 8, "value block")?;
        covered += seg_hours;
    }
    if covered != header.hours || r.pos != r.bytes.len() {
        return Err(bad(
            label,
            format!(
                "segment structure mismatch: {covered} segment hours / {} promised, \
                 {} bytes left over",
                header.hours,
                r.bytes.len() - r.pos
            ),
        ));
    }
    Ok(ContainerInfo {
        version: header.version,
        regions: header.regions,
        start: header.start,
        hours: header.hours,
        resolution_minutes: header.resolution_minutes,
        segments: header.segments,
        content_hash,
        file_bytes: bytes.len(),
    })
}

// ---------------------------------------------------------------------
// Append
// ---------------------------------------------------------------------

/// Appends newly observed hours to an existing container, returning the
/// new file bytes and the number of hours added.
///
/// `update` must cover exactly the container's zones, and each zone's
/// series must reach the container's end hour; values at or past the
/// end are taken, anything overlapping stored history is ignored. The
/// appended segment spans the *longest* new coverage: zones that fall
/// short are an error, unless `pad` is set, in which case they repeat
/// their last supplied value (flagged in the error message otherwise).
///
/// The existing header-to-last-segment byte range is copied verbatim —
/// history is never re-encoded — and only the fixed-size header fields
/// and the trailer hash are rewritten.
pub fn append(
    bytes: &[u8],
    label: &str,
    update: &TraceSet,
    pad: bool,
) -> Result<(Vec<u8>, usize), TraceError> {
    let (header, _) = verify_and_read_header(bytes, label)?;
    let mut r = Reader {
        bytes: &bytes[..bytes.len() - TRAILER_LEN],
        pos: HEADER_LEN,
        label,
    };
    let stored = decode_metadata(&mut r, header.regions)?;
    if update.resolution().minutes() != header.resolution_minutes {
        return Err(bad(
            label,
            format!(
                "update is {} data but the container is {} min/sample; resample or \
                 re-pack instead of appending across resolutions",
                update.resolution(),
                header.resolution_minutes
            ),
        ));
    }
    let end = header.start.0 as u64 + header.hours as u64;
    let end = u32::try_from(end).map_err(|_| bad(label, "container horizon overflows u32"))?;

    // The update must cover the container's zones exactly: appending
    // cannot add or drop regions without restructuring the blocks.
    for region in update.regions() {
        if !stored.iter().any(|s| s.code == region.code) {
            return Err(bad(
                label,
                format!(
                    "zone {} in the update is not in the container; `append` cannot add \
                     regions — re-pack instead",
                    region.code
                ),
            ));
        }
    }
    // Slice each zone's new coverage `[end, ...)` out of the update.
    let mut fresh: Vec<(&str, &[f64], f64)> = Vec::with_capacity(stored.len());
    for region in &stored {
        let series = update.series(&region.code).map_err(|_| {
            bad(
                label,
                format!(
                    "zone {} is missing from the update; every stored zone needs rows",
                    region.code
                ),
            )
        })?;
        let s0 = series.start().0;
        if s0 > end {
            return Err(bad(
                label,
                format!(
                    "zone {}: update starts at hour {s0} but the container ends at hour \
                     {end}; hours {end}..{s0} would be a gap",
                    region.code
                ),
            ));
        }
        let skip = (end - s0) as usize;
        let values = series.values();
        let new = values.get(skip..).unwrap_or(&[]);
        let last = *values.last().ok_or_else(|| {
            bad(
                label,
                format!("zone {} in the update holds no rows", region.code),
            )
        })?;
        fresh.push((&region.code, new, last));
    }
    let added = fresh.iter().map(|(_, new, _)| new.len()).max().unwrap_or(0);
    if added == 0 {
        return Err(bad(
            label,
            format!("the update holds no hours past the container's end hour {end}"),
        ));
    }
    if !pad {
        let short: Vec<String> = fresh
            .iter()
            .filter(|(_, new, _)| new.len() < added)
            .map(|(code, new, _)| format!("{code} ({} of {added} hours)", new.len()))
            .collect();
        if !short.is_empty() {
            return Err(bad(
                label,
                format!(
                    "ragged coverage: {} fall short of the longest zone; pass --pad to \
                     repeat each zone's last value, or supply the missing rows",
                    short.join(", ")
                ),
            ));
        }
    }

    // Copy header..last-segment verbatim, extend with one new segment.
    let mut out = Vec::with_capacity(bytes.len() + 8 + stored.len() * added * 8);
    out.extend_from_slice(&bytes[..bytes.len() - TRAILER_LEN]);
    out.extend_from_slice(&(added as u64).to_le_bytes());
    for (_, new, last) in &fresh {
        for value in *new {
            out.extend_from_slice(&value.to_le_bytes());
        }
        for _ in new.len()..added {
            out.extend_from_slice(&last.to_le_bytes());
        }
    }
    // Rewrite the header fields that changed: total hours and segments.
    let hours = (header.hours + added) as u64;
    out[20..28].copy_from_slice(&hours.to_le_bytes());
    out[28..32].copy_from_slice(&((header.segments + 1) as u32).to_le_bytes());
    let hash = content_hash(&out);
    out.extend_from_slice(&hash.to_le_bytes());
    Ok((out, added))
}

// ---------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: a sibling temp file is written
/// and renamed over the target, so readers (and crashed writers) never
/// observe a half-written container.
pub fn write_bytes_atomic(path: &str, bytes: &[u8]) -> Result<(), TraceError> {
    let tmp = format!("{path}.tmp~");
    std::fs::write(&tmp, bytes).map_err(|e| TraceError::Io(format!("{tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| TraceError::Io(format!("{path}: {e}")))
}

/// [`encode`] + [`write_bytes_atomic`].
pub fn write_file(set: &TraceSet, path: &str) -> Result<(), TraceError> {
    let bytes = encode(set).map_err(|e| relabel(e, path))?;
    write_bytes_atomic(path, &bytes)
}

/// Reads and [`decode`]s a container file.
pub fn load_file(path: &str) -> Result<TraceSet, TraceError> {
    let bytes = std::fs::read(path).map_err(|e| TraceError::Io(format!("{path}: {e}")))?;
    decode(&bytes, path)
}

/// Reads and [`probe`]s a container file.
pub fn probe_file(path: &str) -> Result<ContainerInfo, TraceError> {
    let bytes = std::fs::read(path).map_err(|e| TraceError::Io(format!("{path}: {e}")))?;
    probe(&bytes, path)
}

/// Swaps the `<encode>` placeholder label for a real path.
fn relabel(err: TraceError, path: &str) -> TraceError {
    match err {
        TraceError::Container { reason, .. } => TraceError::Container {
            path: path.to_string(),
            reason,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn tiny_set(hours: usize) -> TraceSet {
        let se = catalog::region("SE").unwrap().clone();
        let de = catalog::region("DE").unwrap().clone();
        let mut user = Region::user("XX-NEW");
        user.name = "Userland".into();
        user.group = GeoGroup::Other;
        let series = |base: f64| {
            TimeSeries::new(
                Hour(10),
                (0..hours).map(|i| base + i as f64 * 0.25).collect(),
            )
        };
        TraceSet::from_series(vec![
            (se, series(16.0)),
            (de, series(380.0)),
            (user, series(120.5)),
        ])
    }

    fn assert_region_eq(a: &Region, b: &Region) {
        assert_eq!(a.code, b.code);
        assert_eq!(a.name, b.name);
        assert_eq!(a.group, b.group);
        assert_eq!(a.lat.to_bits(), b.lat.to_bits());
        assert_eq!(a.lon.to_bits(), b.lon.to_bits());
        assert_eq!(a.providers, b.providers);
        assert_eq!(a.mean_ci_2022.to_bits(), b.mean_ci_2022.to_bits());
        assert_eq!(
            a.ci_delta_2020_2022.to_bits(),
            b.ci_delta_2020_2022.to_bits()
        );
        assert_eq!(a.daily_cv.to_bits(), b.daily_cv.to_bits());
        assert_eq!(a.periodicity.to_bits(), b.periodicity.to_bits());
        assert_eq!(a.hyperscale_set, b.hyperscale_set);
        for source in Source::ALL {
            assert_eq!(
                a.mix.share(source).to_bits(),
                b.mix.share(source).to_bits(),
                "{} share of {}",
                source.label(),
                a.code
            );
        }
    }

    fn assert_set_eq(a: &TraceSet, b: &TraceSet) {
        assert_eq!(a.len(), b.len());
        for ((ra, sa), (rb, sb)) in a.iter().zip(b.iter()) {
            assert_region_eq(ra, rb);
            assert_eq!(sa.start(), sb.start());
            assert_eq!(sa.len(), sb.len());
            for (va, vb) in sa.values().iter().zip(sb.values()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "zone {}", ra.code);
            }
        }
    }

    #[test]
    fn roundtrip_preserves_ids_metadata_and_values() {
        let set = tiny_set(48);
        let bytes = encode(&set).unwrap();
        let back = decode(&bytes, "test").unwrap();
        assert_set_eq(&set, &back);
        // Intern order (and therefore every RegionId) survives.
        for (id, region, _) in set.iter_ids() {
            assert_eq!(back.id_of(&region.code).unwrap(), id);
        }
    }

    #[test]
    fn probe_reports_header_facts() {
        let set = tiny_set(48);
        let bytes = encode(&set).unwrap();
        let info = probe(&bytes, "test").unwrap();
        assert_eq!(info.version, VERSION);
        assert_eq!(info.regions, 3);
        assert_eq!(info.start, Hour(10));
        assert_eq!(info.hours, 48);
        assert_eq!(info.resolution_minutes, 60);
        assert_eq!(info.segments, 1);
        assert_eq!(info.file_bytes, bytes.len());
        let recorded = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        assert_eq!(info.content_hash, recorded);
    }

    #[test]
    fn five_minute_pack_probe_append_roundtrip() {
        // A 5-minute set: tiny_set's axis reinterpreted as 5-min slots.
        let five = Resolution::from_minutes(5).unwrap();
        let full = tiny_set(48).with_resolution(five);
        let first = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(10), 36).unwrap()))
                .collect(),
        )
        .with_resolution(five);
        let bytes = encode(&first).unwrap();
        // Probe surfaces the sub-hourly resolution from the header.
        let info = probe(&bytes, "test").unwrap();
        assert_eq!(info.resolution_minutes, 5);
        assert_eq!(info.hours, 36);
        // Decode round-trips it onto a live axis.
        let back = decode(&bytes, "test").unwrap();
        assert_eq!(back.resolution(), five);
        assert_set_eq(&first, &back);
        // Append keeps the resolution (bytes [12..16] untouched).
        let update = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(46), 2).unwrap()))
                .collect(),
        )
        .with_resolution(five);
        let (appended, added) = append(&bytes, "test", &update, false).unwrap();
        assert_eq!(added, 2);
        let info = probe(&appended, "test").unwrap();
        assert_eq!(info.resolution_minutes, 5);
        assert_eq!(info.segments, 2);
        assert_eq!(decode(&appended, "test").unwrap().resolution(), five);
        // An hourly update cannot extend a 5-minute container.
        let hourly_update = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(46), 2).unwrap()))
                .collect(),
        );
        let err = append(&bytes, "test", &hourly_update, false).unwrap_err();
        assert!(format!("{err}").contains("resolution"), "{err}");
    }

    #[test]
    fn invalid_header_resolution_is_rejected_at_decode() {
        let mut bytes = encode(&tiny_set(4)).unwrap();
        // Patch resolution to 7 minutes (not a divisor of 60) and fix
        // the trailer so only the resolution is wrong.
        bytes[12..16].copy_from_slice(&7u32.to_le_bytes());
        let body = bytes.len() - TRAILER_LEN;
        let hash = content_hash(&bytes[..body]);
        bytes[body..].copy_from_slice(&hash.to_le_bytes());
        let err = decode(&bytes, "test").unwrap_err();
        assert!(format!("{err}").contains("invalid resolution 7"), "{err}");
        // Probe still reports the raw header fact for diagnosis.
        assert_eq!(probe(&bytes, "test").unwrap().resolution_minutes, 7);
    }

    #[test]
    fn empty_set_roundtrips() {
        let set = TraceSet::from_series(vec![]);
        let bytes = encode(&set).unwrap();
        let back = decode(&bytes, "test").unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn encode_rejects_ragged_coverage() {
        let set = TraceSet::from_series(vec![
            (
                catalog::region("SE").unwrap().clone(),
                TimeSeries::new(Hour(0), vec![1.0, 2.0]),
            ),
            (
                catalog::region("DE").unwrap().clone(),
                TimeSeries::new(Hour(0), vec![1.0, 2.0, 3.0]),
            ),
        ]);
        let err = encode(&set).unwrap_err();
        assert!(matches!(err, TraceError::Container { .. }));
        assert!(format!("{err}").contains("ragged"), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode(b"zone,hour,value\nSE,0,16.0\n", "test").unwrap_err();
        assert!(format!("{err}").contains("bad magic"), "{err}");
        assert!(!is_container(b"zone,hour"));
        assert!(is_container(&encode(&tiny_set(4)).unwrap()));
    }

    #[test]
    fn corruption_is_rejected_by_the_hash() {
        let mut bytes = encode(&tiny_set(48)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode(&bytes, "test").unwrap_err();
        assert!(format!("{err}").contains("hash mismatch"), "{err}");
        assert!(probe(&bytes, "test").is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&tiny_set(48)).unwrap();
        // Mid-header truncation.
        let err = decode(&bytes[..20], "test").unwrap_err();
        assert!(format!("{err}").contains("truncated"), "{err}");
        // A clean cut further in still fails the hash check (the
        // trailer bytes are now value bytes).
        let err = decode(&bytes[..bytes.len() - 64], "test").unwrap_err();
        assert!(matches!(err, TraceError::Container { .. }), "{err:?}");
    }

    #[test]
    fn version_gate() {
        let mut bytes = encode(&tiny_set(4)).unwrap();
        bytes[8] = 99;
        // Recompute the trailer so only the version differs.
        let body = bytes.len() - TRAILER_LEN;
        let hash = content_hash(&bytes[..body]);
        bytes[body..].copy_from_slice(&hash.to_le_bytes());
        let err = decode(&bytes, "test").unwrap_err();
        assert!(format!("{err}").contains("version 99"), "{err}");
    }

    #[test]
    fn append_extends_without_reencoding_history() {
        let full = tiny_set(48);
        let first: TraceSet = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(10), 30).unwrap()))
                .collect(),
        );
        let second: TraceSet = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(40), 18).unwrap()))
                .collect(),
        );
        let packed_first = encode(&first).unwrap();
        let (appended, added) = append(&packed_first, "test", &second, false).unwrap();
        assert_eq!(added, 18);
        // History bytes (header excluded) are byte-identical in place.
        assert_eq!(
            &appended[HEADER_LEN..packed_first.len() - TRAILER_LEN],
            &packed_first[HEADER_LEN..packed_first.len() - TRAILER_LEN]
        );
        let back = decode(&appended, "test").unwrap();
        assert_set_eq(&full, &back);
        assert_eq!(probe(&appended, "test").unwrap().segments, 2);
    }

    #[test]
    fn append_accepts_overlapping_history() {
        let full = tiny_set(48);
        let first = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(10), 30).unwrap()))
                .collect(),
        );
        // The update re-sends the last 5 stored hours plus 18 new ones.
        let update = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(35), 23).unwrap()))
                .collect(),
        );
        let packed = encode(&first).unwrap();
        let (appended, added) = append(&packed, "test", &update, false).unwrap();
        assert_eq!(added, 18);
        assert_set_eq(&full, &decode(&appended, "test").unwrap());
    }

    #[test]
    fn append_pads_or_errors_on_ragged_coverage() {
        let full = tiny_set(48);
        let first = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(10), 40).unwrap()))
                .collect(),
        );
        // SE supplies only 3 of the 8 new hours.
        let update = TraceSet::from_series(
            full.iter()
                .map(|(r, s)| {
                    let len = if r.code == "SE" { 3 } else { 8 };
                    (r.clone(), s.slice(Hour(50), len).unwrap())
                })
                .collect(),
        );
        let packed = encode(&first).unwrap();
        let err = append(&packed, "test", &update, false).unwrap_err();
        assert!(format!("{err}").contains("--pad"), "{err}");
        let (appended, added) = append(&packed, "test", &update, true).unwrap();
        assert_eq!(added, 8);
        let back = decode(&appended, "test").unwrap();
        let se = back.series("SE").unwrap().values();
        assert_eq!(se.len(), 48);
        // The padded tail repeats SE's last supplied value.
        let last_supplied = se[42];
        for &padded in &se[43..] {
            assert_eq!(padded.to_bits(), last_supplied.to_bits());
        }
    }

    #[test]
    fn append_rejects_gaps_missing_and_foreign_zones() {
        let first = tiny_set(30);
        let packed = encode(&first).unwrap();
        // Gap: update starts past the container end (end = hour 40).
        let gap = TraceSet::from_series(
            first
                .iter()
                .map(|(r, _)| (r.clone(), TimeSeries::new(Hour(45), vec![1.0, 2.0])))
                .collect(),
        );
        let err = append(&packed, "test", &gap, false).unwrap_err();
        assert!(format!("{err}").contains("gap"), "{err}");
        // Missing zone.
        let missing = TraceSet::from_series(vec![(
            catalog::region("SE").unwrap().clone(),
            TimeSeries::new(Hour(40), vec![1.0]),
        )]);
        let err = append(&packed, "test", &missing, false).unwrap_err();
        assert!(format!("{err}").contains("missing"), "{err}");
        // Foreign zone.
        let mut pairs: Vec<(Region, TimeSeries)> = first
            .iter()
            .map(|(r, _)| (r.clone(), TimeSeries::new(Hour(40), vec![1.0])))
            .collect();
        pairs.push((
            Region::user("ZZ-ELSE"),
            TimeSeries::new(Hour(40), vec![1.0]),
        ));
        let foreign = TraceSet::from_series(pairs);
        let err = append(&packed, "test", &foreign, false).unwrap_err();
        assert!(format!("{err}").contains("cannot add"), "{err}");
        // No new hours at all.
        let stale = TraceSet::from_series(
            first
                .iter()
                .map(|(r, s)| (r.clone(), s.slice(Hour(10), 30).unwrap()))
                .collect(),
        );
        let err = append(&packed, "test", &stale, false).unwrap_err();
        assert!(format!("{err}").contains("no hours"), "{err}");
    }

    #[test]
    fn file_helpers_roundtrip_atomically() {
        let dir = std::env::temp_dir().join(format!("decarb-container-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.dct");
        let path = path.to_str().unwrap();
        let set = tiny_set(12);
        write_file(&set, path).unwrap();
        assert_set_eq(&set, &load_file(path).unwrap());
        assert_eq!(probe_file(path).unwrap().hours, 12);
        assert!(!std::path::Path::new(&format!("{path}.tmp~")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
