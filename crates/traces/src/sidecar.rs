//! Region-metadata sidecars: `[region CODE]` files for imported datasets.
//!
//! [`crate::csv::read_dataset`] accepts zones outside the built-in
//! catalog, interning them with [`Region::user`] defaults. A sidecar
//! file supplies real metadata instead — geography for latency-aware
//! routing, a generation mix, calibration targets — in the same
//! INI-like grammar as scenario files:
//!
//! ```text
//! # metadata for a zone the catalog does not know
//! [region XX-HYDRO]
//! name = Hydrotopia
//! group = south-america
//! lat = -10.5
//! lon = -55.0
//! mean_ci = 45
//! mix = hydro:0.8, wind:0.2
//! ```
//!
//! Every key is optional (see [`Region::from_pairs`] for the full set);
//! the CLI wires this up as `--data FILE --regions SIDECAR`.

use crate::error::TraceError;
use crate::region::Region;
use crate::time::Resolution;

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError::Parse {
        line,
        message: message.into(),
    }
}

/// Everything a sidecar can declare: regions plus optional
/// dataset-level facts from a `[dataset]` section.
#[derive(Debug, Clone, Default)]
pub struct SidecarDoc {
    /// Regions, in declaration order.
    pub regions: Vec<Region>,
    /// Declared sample resolution of the accompanying data file
    /// (`[dataset] resolution = 5`), if any.
    pub resolution: Option<Resolution>,
}

/// Parses a sidecar document into regions, in declaration order.
///
/// Convenience wrapper over [`parse_sidecar`] for callers that only
/// need the region metadata; a `[dataset]` section is still validated
/// but its facts are dropped.
pub fn parse_region_sidecar(text: &str) -> Result<Vec<Region>, TraceError> {
    Ok(parse_sidecar(text)?.regions)
}

/// An open `[region CODE]` section: code, header line, pairs so far.
type OpenSection = Option<(String, usize, Vec<(String, String)>)>;

/// Parses a sidecar document: `[region CODE]` sections plus at most one
/// `[dataset]` section declaring file-level facts (currently
/// `resolution = <minutes>`, validated against the divisors of 60).
pub fn parse_sidecar(text: &str) -> Result<SidecarDoc, TraceError> {
    let mut regions: Vec<Region> = Vec::new();
    let mut resolution: Option<Resolution> = None;
    let mut in_dataset = false;
    let mut current: OpenSection = None;
    let finish = |current: &mut OpenSection, regions: &mut Vec<Region>| -> Result<(), TraceError> {
        if let Some((code, line, pairs)) = current.take() {
            let region = Region::from_pairs(&code, &pairs).map_err(|e| err(line, e))?;
            if regions.iter().any(|r| r.code == region.code) {
                return Err(err(line, format!("duplicate region `{code}`")));
            }
            regions.push(region);
        }
        Ok(())
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(header) = header.strip_suffix(']') else {
                return Err(err(line_no, format!("unterminated section header `{raw}`")));
            };
            let mut parts = header.split_whitespace();
            let kind = parts.next().unwrap_or("");
            let code = parts.next().unwrap_or("");
            if kind == "dataset" && code.is_empty() {
                finish(&mut current, &mut regions)?;
                in_dataset = true;
                continue;
            }
            if kind != "region" || code.is_empty() || parts.next().is_some() {
                return Err(err(
                    line_no,
                    "sidecar sections are `[region CODE]` or `[dataset]`".to_string(),
                ));
            }
            finish(&mut current, &mut regions)?;
            in_dataset = false;
            current = Some((code.to_uppercase(), line_no, Vec::new()));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                line_no,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = key.trim();
        let value = value.trim();
        if key.is_empty() {
            return Err(err(line_no, "empty key"));
        }
        if in_dataset {
            match key {
                "resolution" => {
                    if resolution.is_some() {
                        return Err(err(line_no, "duplicate key `resolution`"));
                    }
                    let minutes: u32 = value
                        .parse()
                        .map_err(|_| err(line_no, format!("bad resolution `{value}` (minutes)")))?;
                    resolution =
                        Some(Resolution::from_minutes(minutes).map_err(|e| err(line_no, e))?);
                }
                other => {
                    return Err(err(
                        line_no,
                        format!("unknown dataset key `{other}` (valid: resolution)"),
                    ));
                }
            }
            continue;
        }
        let Some((_, _, pairs)) = current.as_mut() else {
            return Err(err(line_no, "`key = value` before any `[region CODE]`"));
        };
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(err(line_no, format!("duplicate key `{key}`")));
        }
        pairs.push((key.to_string(), value.to_string()));
    }
    finish(&mut current, &mut regions)?;
    Ok(SidecarDoc {
        regions,
        resolution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::GeoGroup;

    const EXAMPLE: &str = "\
# Two user zones.
[region xx-hydro]
name = Hydrotopia
group = south-america
lat = -10.5
lon = -55.0
mean_ci = 45
mix = hydro:0.8, wind:0.2

[region XX-COAL]
name = Coalville
mean_ci = 700
";

    #[test]
    fn sidecar_parses_regions_in_order() {
        let regions = parse_region_sidecar(EXAMPLE).unwrap();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].code, "XX-HYDRO", "codes are upper-cased");
        assert_eq!(regions[0].name, "Hydrotopia");
        assert_eq!(regions[0].group, GeoGroup::SouthAmerica);
        assert_eq!(regions[1].code, "XX-COAL");
        assert_eq!(regions[1].mean_ci_2022, 700.0);
        assert_eq!(regions[1].group, GeoGroup::Other, "defaults fill gaps");
    }

    #[test]
    fn empty_sidecar_is_fine() {
        assert!(parse_region_sidecar("# nothing\n").unwrap().is_empty());
    }

    #[test]
    fn dataset_section_declares_resolution() {
        let doc = parse_sidecar(
            "[dataset]\nresolution = 5\n\n[region XX-A]\nname = Alpha\n[region XX-B]\n",
        )
        .unwrap();
        assert_eq!(doc.resolution, Some(Resolution::from_minutes(5).unwrap()));
        assert_eq!(doc.regions.len(), 2);
        assert_eq!(doc.regions[0].name, "Alpha");
        // No [dataset] section → no declared resolution.
        assert_eq!(parse_sidecar(EXAMPLE).unwrap().resolution, None);
        // parse_region_sidecar tolerates (and drops) the section.
        assert!(parse_region_sidecar("[dataset]\nresolution = 15\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn dataset_section_rejects_bad_resolutions() {
        for (text, needle) in [
            ("[dataset]\nresolution = 7\n", "invalid resolution 7"),
            ("[dataset]\nresolution = 0\n", "invalid resolution 0"),
            ("[dataset]\nresolution = soon\n", "bad resolution"),
            (
                "[dataset]\nresolution = 5\nresolution = 10\n",
                "duplicate key `resolution`",
            ),
            ("[dataset]\ncadence = 5\n", "unknown dataset key"),
        ] {
            let error = parse_sidecar(text).unwrap_err();
            assert!(format!("{error}").contains(needle), "{text:?}: {error}");
        }
    }

    #[test]
    fn malformed_sidecars_error_with_line_numbers() {
        for (text, line, needle) in [
            ("name = X\n", 1, "before any `[region"),
            ("[region\n", 1, "unterminated"),
            ("[zone XX]\n", 1, "`[region CODE]`"),
            ("[region]\n", 1, "`[region CODE]`"),
            ("[region XX extra]\n", 1, "`[region CODE]`"),
            ("[region XX]\nname X\n", 2, "expected `key = value`"),
            ("[region XX]\nname = A\nname = B\n", 3, "duplicate key"),
            ("[region XX]\ngroup = atlantis\n", 1, "unknown geography"),
            ("[region XX]\n\n[region XX]\n", 3, "duplicate region"),
        ] {
            let error = parse_region_sidecar(text).unwrap_err();
            let TraceError::Parse {
                line: at, message, ..
            } = error
            else {
                panic!("{text:?}: wrong error kind");
            };
            assert_eq!(at, line, "{text:?}: {message}");
            assert!(message.contains(needle), "{text:?}: {message}");
        }
    }
}
