//! Carbon-intensity trace substrate for the `decarb` workspace.
//!
//! The EuroSys '24 paper *On the Limitations of Carbon-Aware Temporal and
//! Spatial Workload Shifting in the Cloud* drives its entire analysis from
//! hourly average carbon-intensity traces of 123 grid regions (2020–2022,
//! Electricity Maps). That dataset is licensed and cannot be redistributed,
//! so this crate provides a faithful synthetic substitute:
//!
//! * a [`Region`] catalog of 123 zones with geography, cloud-provider
//!   presence, and generation mix ([`catalog::builtin_catalog`]);
//! * a deterministic trace [`synth::Synthesizer`] that turns a region's
//!   generation mix into an hourly carbon-intensity [`TimeSeries`] with the
//!   magnitude, daily variability, periodicity, and multi-year drift the
//!   paper reports;
//! * container types ([`TraceSet`]) and CSV I/O used by every other crate.
//!
//! The synthesizer is calibrated against the paper's published anchors
//! (global mean ≈ 368.39 g·CO2eq/kWh, Sweden ≈ 16 g, > 70 % of regions with
//! daily CV < 0.1, 24 h / 168 h periodicity in most datacenter regions) so
//! downstream experiments reproduce the *shape* of every figure.
//!
//! # Examples
//!
//! ```
//! use decarb_traces::{builtin_dataset, GeoGroup};
//!
//! let data = builtin_dataset();
//! assert_eq!(data.len(), 123);
//! let sweden = data.series("SE").unwrap();
//! let europe_zones = data.regions_in_group(GeoGroup::Europe);
//! assert!(!europe_zones.is_empty());
//! assert!(sweden.mean() < 40.0);
//! ```

pub mod catalog;
pub mod container;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod grid;
pub mod mix;
pub mod region;
pub mod rng;
pub mod series;
pub mod sidecar;
pub mod synth;
pub mod table;
pub mod time;
pub mod validate;

pub use catalog::builtin_catalog;
pub use container::ContainerInfo;
pub use dataset::{builtin_dataset, TraceSet};
pub use error::TraceError;
pub use mix::{EnergyMix, Source};
pub use region::{GeoGroup, Providers, Region};
pub use series::{ChunkedPrefix, PrefixSum, TimeSeries};
pub use sidecar::{parse_region_sidecar, parse_sidecar, SidecarDoc};
pub use synth::{SynthConfig, Synthesizer};
pub use table::{RegionId, RegionTable};
pub use time::{Hour, Resolution, HOURS_PER_DAY, HOURS_PER_WEEK, HOURS_PER_YEAR};
pub use validate::{repair, validate, ValidationConfig, ValidationReport};

/// The paper's global average carbon-intensity baseline, in g·CO2eq/kWh.
///
/// Section 3.1.3 defines the *global average reduction* metric as absolute
/// reduction relative to this constant (368.39 g·CO2eq/kWh, the average of
/// the 123 regions in 2022).
pub const GLOBAL_AVG_CI: f64 = 368.39;
