//! CSV import/export for carbon-intensity traces.
//!
//! The paper's artifact stores processed traces as CSV files; this module
//! provides the same interchange format so users can swap in real
//! Electricity Maps exports for the synthetic data. The format is
//! `hour,value` with a one-line header, where `hour` is the absolute hour
//! index since 2020-01-01 00:00 UTC.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::TraceError;
use crate::series::TimeSeries;
use crate::time::Hour;

/// Writes `series` as CSV to `out`.
pub fn write_series<W: Write>(series: &TimeSeries, out: &mut W) -> Result<(), TraceError> {
    writeln!(out, "hour,ci_g_per_kwh")?;
    for (hour, value) in series.iter() {
        writeln!(out, "{},{}", hour.0, value)?;
    }
    Ok(())
}

/// Reads a CSV trace written by [`write_series`].
///
/// Hours must be contiguous and ascending; the first data row defines the
/// series start.
pub fn read_series<R: Read>(input: R) -> Result<TimeSeries, TraceError> {
    let reader = BufReader::new(input);
    let mut start: Option<Hour> = None;
    let mut values = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if i == 0 || line.is_empty() {
            // Header or trailing blank line.
            continue;
        }
        let (hour_str, value_str) = line.split_once(',').ok_or_else(|| TraceError::Parse {
            line: i + 1,
            message: "expected `hour,value`".to_string(),
        })?;
        let hour: u32 = hour_str.trim().parse().map_err(|e| TraceError::Parse {
            line: i + 1,
            message: format!("bad hour: {e}"),
        })?;
        let value: f64 = value_str.trim().parse().map_err(|e| TraceError::Parse {
            line: i + 1,
            message: format!("bad value: {e}"),
        })?;
        match start {
            None => start = Some(Hour(hour)),
            Some(s) => {
                let expected = s.0 + values.len() as u32;
                if hour != expected {
                    return Err(TraceError::Parse {
                        line: i + 1,
                        message: format!("non-contiguous hour {hour}, expected {expected}"),
                    });
                }
            }
        }
        values.push(value);
    }
    Ok(TimeSeries::new(start.unwrap_or(Hour(0)), values))
}

/// Writes a whole dataset as CSV: `zone,hour,ci_g_per_kwh`, rows grouped
/// by zone with ascending hours.
pub fn write_dataset<W: Write>(set: &crate::TraceSet, out: &mut W) -> Result<(), TraceError> {
    writeln!(out, "zone,hour,ci_g_per_kwh")?;
    for (region, series) in set.iter() {
        for (hour, value) in series.iter() {
            writeln!(out, "{},{},{}", region.code, hour.0, value)?;
        }
    }
    Ok(())
}

/// Reads a dataset written by [`write_dataset`] (or exported from a real
/// carbon-information service in the same `zone,hour,value` shape).
///
/// Rows must be grouped by zone with contiguous ascending hours inside
/// each group; a zone reappearing after another zone's group started is
/// a [`TraceError::Parse`] (the second block would silently shadow the
/// first). Zone codes are *not* restricted to the built-in catalog:
/// known codes take their metadata from it, and unknown codes are
/// interned with [`crate::Region::user`] defaults — pass explicit
/// metadata via [`read_dataset_with`] to override.
pub fn read_dataset<R: Read>(input: R) -> Result<crate::TraceSet, TraceError> {
    read_dataset_with(input, &[])
}

/// [`read_dataset`] with sidecar metadata: `extra` regions (e.g. from
/// [`crate::sidecar::parse_region_sidecar`]) take precedence over the
/// built-in catalog, which in turn beats the [`crate::Region::user`]
/// defaults.
///
/// The input is buffered to a string and handed to
/// [`read_dataset_str_with`], which fans per-zone row blocks out over
/// `decarb-par` worker threads.
pub fn read_dataset_with<R: Read>(
    input: R,
    extra: &[crate::Region],
) -> Result<crate::TraceSet, TraceError> {
    let mut text = String::new();
    BufReader::new(input).read_to_string(&mut text)?;
    read_dataset_str_with(&text, extra)
}

/// Parses a `zone,hour,value` dataset held in memory, fanning the
/// per-zone blocks out across `decarb-par` workers.
///
/// A cheap sequential scan splits the text into zone blocks and catches
/// the errors that depend on global row order (short rows, a zone
/// reappearing after its group closed); the expensive work — float
/// parsing, contiguity checks, region resolution — runs one block per
/// worker. When several lines are bad, the smallest line number is
/// reported, so errors match the sequential reader exactly.
pub fn read_dataset_str_with(
    text: &str,
    extra: &[crate::Region],
) -> Result<crate::TraceSet, TraceError> {
    struct Block<'a> {
        zone: &'a str,
        // (1-based line number, hour field, value field)
        rows: Vec<(usize, &'a str, &'a str)>,
    }
    let mut blocks: Vec<Block<'_>> = Vec::new();
    let mut structural: Option<TraceError> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if i == 0 || line.is_empty() {
            continue;
        }
        let mut fields = line.splitn(3, ',');
        let (Some(zone), Some(hour_str), Some(value_str)) =
            (fields.next(), fields.next(), fields.next())
        else {
            structural = Some(TraceError::Parse {
                line: i + 1,
                message: "expected `zone,hour,value`".to_string(),
            });
            break;
        };
        let zone = zone.trim();
        if blocks.last().is_none_or(|b| b.zone != zone) {
            if blocks.iter().any(|b| b.zone == zone) {
                // The sequential reader parses a row's fields before
                // applying the duplicate-group rule; keep that
                // precedence for the error message.
                structural = Some(row_error(i + 1, hour_str, value_str).unwrap_or_else(|| {
                    TraceError::Parse {
                        line: i + 1,
                        message: format!("zone {zone} appears in two separate groups"),
                    }
                }));
                break;
            }
            blocks.push(Block {
                zone,
                rows: Vec::new(),
            });
        }
        if let Some(block) = blocks.last_mut() {
            block.rows.push((i + 1, hour_str, value_str));
        }
    }
    let parsed = decarb_par::par_map(&blocks, |block| {
        let mut start: Option<Hour> = None;
        let mut values = Vec::with_capacity(block.rows.len());
        for &(line, hour_str, value_str) in &block.rows {
            let hour: u32 = hour_str.trim().parse().map_err(|e| TraceError::Parse {
                line,
                message: format!("bad hour: {e}"),
            })?;
            let value: f64 = value_str.trim().parse().map_err(|e| TraceError::Parse {
                line,
                message: format!("bad value: {e}"),
            })?;
            match start {
                None => start = Some(Hour(hour)),
                Some(s) => {
                    let expected = s.0 + values.len() as u32;
                    if hour != expected {
                        return Err(TraceError::Parse {
                            line,
                            message: format!("non-contiguous hour {hour}, expected {expected}"),
                        });
                    }
                }
            }
            values.push(value);
        }
        let region = extra
            .iter()
            .find(|r| r.code == block.zone)
            .cloned()
            .or_else(|| crate::catalog::region(block.zone).cloned())
            .unwrap_or_else(|| crate::Region::user(block.zone));
        Ok((region, TimeSeries::new(start.unwrap_or(Hour(0)), values)))
    });
    // First error by line number wins, as if the rows were read in order.
    let mut first = structural;
    let mut pairs = Vec::with_capacity(parsed.len());
    for result in parsed {
        match result {
            Ok(pair) => pairs.push(pair),
            Err(e) => {
                if first
                    .as_ref()
                    .is_none_or(|f| error_line(&e) < error_line(f))
                {
                    first = Some(e);
                }
            }
        }
    }
    if let Some(err) = first {
        return Err(err);
    }
    crate::TraceSet::try_from_series(pairs)
}

/// Checks a row's hour/value fields, mirroring the per-row parse errors.
fn row_error(line: usize, hour_str: &str, value_str: &str) -> Option<TraceError> {
    if let Err(e) = hour_str.trim().parse::<u32>() {
        return Some(TraceError::Parse {
            line,
            message: format!("bad hour: {e}"),
        });
    }
    if let Err(e) = value_str.trim().parse::<f64>() {
        return Some(TraceError::Parse {
            line,
            message: format!("bad value: {e}"),
        });
    }
    None
}

/// The line number an error anchors to (0 for non-parse errors).
fn error_line(err: &TraceError) -> usize {
    match err {
        TraceError::Parse { line, .. } => *line,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let series = TimeSeries::new(Hour(100), vec![1.5, 2.25, 3.125]);
        let mut buf = Vec::new();
        write_series(&series, &mut buf).unwrap();
        let back = read_series(buf.as_slice()).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn empty_input_gives_empty_series() {
        let back = read_series("hour,ci_g_per_kwh\n".as_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_malformed_rows() {
        let err = read_series("header\nnot-a-row\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));
        let err = read_series("header\nx,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));
        let err = read_series("header\n1,abc\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_gaps() {
        let err = read_series("header\n1,1.0\n3,2.0\n".as_bytes()).unwrap_err();
        match err {
            TraceError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("non-contiguous"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn roundtrip_synthetic_region() {
        use crate::catalog;
        use crate::synth::Synthesizer;
        let series = Synthesizer::default().generate(catalog::region("SE").unwrap());
        let head = series.slice(Hour(0), 500).unwrap();
        let mut buf = Vec::new();
        write_series(&head, &mut buf).unwrap();
        let back = read_series(buf.as_slice()).unwrap();
        assert_eq!(head.len(), back.len());
        for ((_, a), (_, b)) in head.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    fn tiny_dataset() -> crate::TraceSet {
        use crate::catalog;
        let pairs = vec![
            (
                catalog::region("SE").unwrap().clone(),
                TimeSeries::new(Hour(10), vec![16.0, 17.5, 15.0]),
            ),
            (
                catalog::region("DE").unwrap().clone(),
                TimeSeries::new(Hour(10), vec![380.0, 410.0, 395.0]),
            ),
        ];
        crate::TraceSet::from_series(pairs)
    }

    #[test]
    fn dataset_roundtrip() {
        let set = tiny_dataset();
        let mut buf = Vec::new();
        write_dataset(&set, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.series("SE").unwrap(), set.series("SE").unwrap());
        assert_eq!(back.series("DE").unwrap(), set.series("DE").unwrap());
    }

    #[test]
    fn dataset_accepts_unknown_zones_with_default_metadata() {
        let input = "zone,hour,ci\nZZ-NOWHERE,0,100.0\nZZ-NOWHERE,1,120.0\nSE,0,16.0\n";
        let set = read_dataset(input.as_bytes()).unwrap();
        assert_eq!(set.len(), 2);
        let unknown = set.region("ZZ-NOWHERE").unwrap();
        assert_eq!(unknown.group, crate::GeoGroup::Other);
        assert_eq!(unknown.name, "ZZ-NOWHERE");
        assert_eq!(set.series("ZZ-NOWHERE").unwrap().len(), 2);
        // Catalog zones still carry catalog metadata.
        assert_eq!(set.region("SE").unwrap().name, "Sweden");
    }

    #[test]
    fn dataset_sidecar_metadata_beats_catalog_and_defaults() {
        let mut custom = crate::Region::user("ZZ-NOWHERE");
        custom.name = "Nowhere Grid".to_string();
        custom.group = crate::GeoGroup::Africa;
        let mut shadow_se = crate::Region::user("SE");
        shadow_se.name = "Sidecar Sweden".to_string();
        let input = "zone,hour,ci\nZZ-NOWHERE,0,100.0\nSE,0,16.0\n";
        let set = read_dataset_with(input.as_bytes(), &[custom, shadow_se]).unwrap();
        assert_eq!(set.region("ZZ-NOWHERE").unwrap().name, "Nowhere Grid");
        assert_eq!(
            set.region("ZZ-NOWHERE").unwrap().group,
            crate::GeoGroup::Africa
        );
        assert_eq!(set.region("SE").unwrap().name, "Sidecar Sweden");
    }

    #[test]
    fn dataset_rejects_split_groups() {
        let input = "zone,hour,ci\nSE,0,16.0\nDE,0,400.0\nSE,1,17.0\n";
        let err = read_dataset(input.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 4, .. }), "{err:?}");
        match err {
            TraceError::Parse { message, .. } => {
                assert!(message.contains("two separate groups"), "{message}")
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown zones get the same duplicate-block protection: the
        // second ZZ block must not silently shadow the first.
        let input = "zone,hour,ci\nZZ,0,10.0\nSE,0,16.0\nZZ,5,12.0\n";
        let err = read_dataset(input.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 4, .. }), "{err:?}");
    }

    #[test]
    fn dataset_rejects_gaps_within_a_group() {
        let input = "zone,hour,ci\nSE,0,16.0\nSE,2,17.0\n";
        let err = read_dataset(input.as_bytes()).unwrap_err();
        match err {
            TraceError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("non-contiguous"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dataset_rejects_short_rows() {
        let input = "zone,hour,ci\nSE;0;16.0\n";
        let err = read_dataset(input.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));
    }

    #[test]
    fn empty_dataset_parses() {
        let back = read_dataset("zone,hour,ci\n".as_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
