//! Error types for the trace substrate.

use crate::time::Hour;

/// Errors produced by trace containers and I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A lookup or window extended beyond the stored horizon.
    OutOfRange {
        /// The offending hour.
        hour: Hour,
    },
    /// A region code was not found in the catalog or dataset.
    UnknownRegion(String),
    /// A region code was interned twice in one table.
    DuplicateRegion(String),
    /// A region table overflowed its dense `u16` id space.
    TableFull(usize),
    /// A CSV record could not be parsed.
    Parse {
        /// Line number (1-based) of the malformed record.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An underlying I/O failure, carried as a string to keep the error
    /// type `Clone + PartialEq` for test assertions.
    Io(String),
    /// A sample-resolution problem: an invalid slot length (must divide
    /// 60), mixed-resolution data, or a resample to a coarser axis.
    Resolution(String),
    /// A binary trace container was rejected: bad magic, an unsupported
    /// version, a content-hash mismatch, a truncated block, or a
    /// structural inconsistency. `reason` states what was found and, for
    /// recoverable problems, what to do about it (e.g. re-pack).
    Container {
        /// The container path (or an in-memory label).
        path: String,
        /// What was wrong with the file.
        reason: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::OutOfRange { hour } => {
                write!(f, "hour {hour} is outside the stored horizon")
            }
            TraceError::UnknownRegion(code) => write!(f, "unknown region code {code:?}"),
            TraceError::DuplicateRegion(code) => {
                write!(f, "region code {code:?} is already interned")
            }
            TraceError::TableFull(len) => {
                write!(f, "region table is full ({len} regions; ids are u16)")
            }
            TraceError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            TraceError::Io(message) => write!(f, "I/O error: {message}"),
            TraceError::Resolution(message) => write!(f, "resolution error: {message}"),
            TraceError::Container { path, reason } => {
                write!(f, "container {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(err: std::io::Error) -> Self {
        TraceError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TraceError::OutOfRange { hour: Hour(3) };
        assert!(format!("{e}").contains("outside"));
        let e = TraceError::UnknownRegion("ZZ".into());
        assert!(format!("{e}").contains("ZZ"));
        let e = TraceError::Parse {
            line: 7,
            message: "bad float".into(),
        };
        assert!(format!("{e}").contains("line 7"));
        let e: TraceError = std::io::Error::other("boom").into();
        assert!(format!("{e}").contains("boom"));
        let e = TraceError::Container {
            path: "data.dct".into(),
            reason: "content hash mismatch".into(),
        };
        let text = format!("{e}");
        assert!(text.contains("data.dct") && text.contains("hash mismatch"));
    }
}
