//! Merit-order grid dispatch: carbon-intensity from first principles.
//!
//! §2.1 of the paper explains *why* carbon-intensity varies: a balancing
//! authority dispatches its generator fleet in merit order (cheapest
//! marginal cost first) against a time-varying demand, and the resulting
//! generation-weighted emission factor is the grid's average CI. This
//! module implements that mechanism so the workspace can derive CI traces
//! from a fleet description instead of the statistical synthesizer —
//! useful for validating the synthesizer's assumptions (renewables lower
//! CI when they produce; fossil peakers raise it at demand peaks) and for
//! building custom what-if grids.

use crate::mix::Source;
use crate::time::Hour;

/// One dispatchable (or must-run) generator in a fleet.
#[derive(Debug, Clone)]
pub struct Generator {
    /// Human-readable name.
    pub name: &'static str,
    /// Fuel/source category (determines the emission factor).
    pub source: Source,
    /// Nameplate capacity in MW.
    pub capacity_mw: f64,
    /// Marginal cost in $/MWh; dispatch is cheapest-first.
    pub marginal_cost: f64,
    /// Availability factor per hour in `[0, 1]` (captures solar diurnal
    /// shape, wind weather, maintenance). `None` means always available.
    pub availability: Option<fn(Hour) -> f64>,
}

impl Generator {
    /// Returns the available capacity at `hour`.
    pub fn available_mw(&self, hour: Hour) -> f64 {
        let factor = self.availability.map_or(1.0, |f| f(hour).clamp(0.0, 1.0));
        self.capacity_mw * factor
    }
}

/// The outcome of dispatching one hour.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchResult {
    /// Total generation in MW (equals demand when feasible).
    pub served_mw: f64,
    /// Unserved demand in MW (non-zero only when the fleet is short).
    pub shortfall_mw: f64,
    /// Generation-weighted average carbon-intensity (g·CO2eq/kWh).
    pub average_ci: f64,
    /// Emission factor of the marginal (last dispatched) generator.
    pub marginal_ci: f64,
    /// Available variable-renewable (wind/solar) capacity left undispatched
    /// in MW — energy the grid *curtails* this hour. Extra flexible load
    /// placed in curtailment hours absorbs this energy at the renewable's
    /// own (near-zero) emission factor.
    pub curtailed_mw: f64,
}

impl DispatchResult {
    /// Total grid emissions this hour in kg·CO2eq (1 MW for 1 h is
    /// 1 MWh = 1000 kWh).
    pub fn emissions_kg(&self) -> f64 {
        self.average_ci * self.served_mw
    }
}

/// A generator fleet dispatched in merit order.
#[derive(Debug, Clone, Default)]
pub struct Fleet {
    generators: Vec<Generator>,
}

impl Fleet {
    /// Creates a fleet from generators (any order; dispatch sorts by
    /// marginal cost).
    pub fn new(mut generators: Vec<Generator>) -> Self {
        generators.sort_by(|a, b| a.marginal_cost.total_cmp(&b.marginal_cost));
        Self { generators }
    }

    /// Returns the generators in merit order.
    pub fn generators(&self) -> &[Generator] {
        &self.generators
    }

    /// Returns the total available capacity at `hour`, MW — the ceiling on
    /// demand the fleet can serve without shortfall.
    pub fn available_capacity_mw(&self, hour: Hour) -> f64 {
        self.generators.iter().map(|g| g.available_mw(hour)).sum()
    }

    /// Dispatches the fleet against `demand_mw` at `hour`.
    ///
    /// Generators are filled cheapest-first up to their available
    /// capacity. Returns the average CI of the served energy (0 when
    /// nothing is served).
    pub fn dispatch(&self, hour: Hour, demand_mw: f64) -> DispatchResult {
        let mut remaining = demand_mw.max(0.0);
        let mut emissions = 0.0; // g/kWh × MW
        let mut served = 0.0;
        let mut marginal_ci = 0.0;
        let mut curtailed = 0.0;
        for generator in &self.generators {
            let available = generator.available_mw(hour);
            let take = available.min(remaining);
            if take > 0.0 {
                emissions += take * generator.source.emission_factor();
                served += take;
                remaining -= take;
                marginal_ci = generator.source.emission_factor();
            }
            if generator.source.is_variable_renewable() {
                curtailed += available - take;
            }
        }
        DispatchResult {
            served_mw: served,
            shortfall_mw: remaining,
            average_ci: if served > 0.0 {
                emissions / served
            } else {
                0.0
            },
            marginal_ci,
            curtailed_mw: curtailed,
        }
    }

    /// Dispatches a whole horizon against a demand curve, returning the
    /// hourly average CI (the signal the rest of the workspace consumes).
    pub fn dispatch_series(
        &self,
        start: Hour,
        demand_mw: impl Fn(Hour) -> f64,
        hours: usize,
    ) -> crate::series::TimeSeries {
        let values = (0..hours)
            .map(|i| {
                let hour = start.plus(i);
                self.dispatch(hour, demand_mw(hour)).average_ci
            })
            .collect();
        crate::series::TimeSeries::new(start, values)
    }

    /// Dispatches a whole horizon and returns the hourly *marginal* CI —
    /// the emission factor of the generator that would serve the next unit
    /// of demand (§2.1 contrasts this consequential signal with the
    /// average CI the GHG protocol reports).
    pub fn marginal_series(
        &self,
        start: Hour,
        demand_mw: impl Fn(Hour) -> f64,
        hours: usize,
    ) -> crate::series::TimeSeries {
        let values = (0..hours)
            .map(|i| {
                let hour = start.plus(i);
                self.dispatch(hour, demand_mw(hour)).marginal_ci
            })
            .collect();
        crate::series::TimeSeries::new(start, values)
    }
}

/// Solar availability: a half-sine between 06:00 and 18:00 UTC.
pub fn solar_availability(hour: Hour) -> f64 {
    let h = hour.hour_of_day();
    if (6..18).contains(&h) {
        ((h - 6) as f64 * std::f64::consts::PI / 12.0).sin()
    } else {
        0.0
    }
}

/// A simple diurnal demand curve: base plus a morning/evening swing.
pub fn diurnal_demand(base_mw: f64, swing_mw: f64) -> impl Fn(Hour) -> f64 {
    move |hour| {
        let h = hour.hour_of_day() as f64;
        base_mw + swing_mw * (std::f64::consts::TAU * (h - 9.0) / 24.0).sin().max(-0.6)
    }
}

/// Night-wind availability: full at night, 10 % by day.
pub fn night_wind_availability(hour: Hour) -> f64 {
    if !(6..20).contains(&hour.hour_of_day()) {
        1.0
    } else {
        0.1
    }
}

/// A reference grid whose margin diverges from its average: must-run
/// coal base, night wind that is regularly curtailed, solar noon, gas
/// peaking. Used by the grid-extension study and the bench harness.
pub fn curtailment_grid() -> Fleet {
    Fleet::new(vec![
        Generator {
            name: "must-run coal",
            source: Source::Coal,
            capacity_mw: 500.0,
            marginal_cost: -5.0,
            availability: None,
        },
        Generator {
            name: "wind",
            source: Source::Wind,
            capacity_mw: 400.0,
            marginal_cost: 0.0,
            availability: Some(night_wind_availability),
        },
        Generator {
            name: "solar",
            source: Source::Solar,
            capacity_mw: 800.0,
            marginal_cost: 1.0,
            availability: Some(solar_availability),
        },
        Generator {
            name: "gas",
            source: Source::Gas,
            capacity_mw: 1200.0,
            marginal_cost: 40.0,
            availability: None,
        },
    ])
}

/// A reference grid whose margin tracks its average: nuclear base, gas
/// for the rest.
pub fn aligned_grid() -> Fleet {
    Fleet::new(vec![
        Generator {
            name: "nuclear",
            source: Source::Nuclear,
            capacity_mw: 400.0,
            marginal_cost: 5.0,
            availability: None,
        },
        Generator {
            name: "gas",
            source: Source::Gas,
            capacity_mw: 1400.0,
            marginal_cost: 40.0,
            availability: None,
        },
    ])
}

/// Two-level demand for [`curtailment_grid`]: 800 MW at night, 1400 MW
/// by day.
pub fn two_level_demand(hour: Hour) -> f64 {
    if (8..20).contains(&hour.hour_of_day()) {
        1400.0
    } else {
        800.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn california_like_fleet() -> Fleet {
        Fleet::new(vec![
            Generator {
                name: "solar farms",
                source: Source::Solar,
                capacity_mw: 900.0,
                marginal_cost: 0.0,
                availability: Some(solar_availability),
            },
            Generator {
                name: "nuclear",
                source: Source::Nuclear,
                capacity_mw: 300.0,
                marginal_cost: 5.0,
                availability: None,
            },
            Generator {
                name: "hydro",
                source: Source::Hydro,
                capacity_mw: 200.0,
                marginal_cost: 8.0,
                availability: None,
            },
            Generator {
                name: "gas CCGT",
                source: Source::Gas,
                capacity_mw: 800.0,
                marginal_cost: 40.0,
                availability: None,
            },
            Generator {
                name: "gas peaker",
                source: Source::Oil,
                capacity_mw: 300.0,
                marginal_cost: 120.0,
                availability: None,
            },
        ])
    }

    #[test]
    fn merit_order_is_sorted_by_cost() {
        let fleet = california_like_fleet();
        let costs: Vec<f64> = fleet.generators().iter().map(|g| g.marginal_cost).collect();
        for pair in costs.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn clean_sources_serve_low_demand() {
        let fleet = california_like_fleet();
        // Noon, low demand: solar + nuclear cover everything → low CI.
        let result = fleet.dispatch(Hour(12), 500.0);
        assert_eq!(result.shortfall_mw, 0.0);
        assert!(result.average_ci < 50.0, "ci {}", result.average_ci);
        // Nothing dirtier than solar (45 g) sets the margin at noon.
        assert!(result.marginal_ci <= 45.0);
    }

    #[test]
    fn peak_demand_raises_ci_and_marginal() {
        let fleet = california_like_fleet();
        // Midnight (no solar), high demand: gas and peakers run.
        let night = fleet.dispatch(Hour(0), 1500.0);
        let noon = fleet.dispatch(Hour(12), 1500.0);
        assert!(night.average_ci > noon.average_ci);
        assert!(night.marginal_ci >= 490.0, "peaker on the margin");
        assert_eq!(night.shortfall_mw, 0.0);
    }

    #[test]
    fn shortfall_reported_when_fleet_short() {
        let fleet = california_like_fleet();
        let result = fleet.dispatch(Hour(0), 10_000.0);
        assert!(result.shortfall_mw > 0.0);
        assert!(result.served_mw < 10_000.0);
        // Served energy still has a well-defined CI.
        assert!(result.average_ci > 0.0);
    }

    #[test]
    fn zero_demand_serves_nothing() {
        let fleet = california_like_fleet();
        let result = fleet.dispatch(Hour(3), 0.0);
        assert_eq!(result.served_mw, 0.0);
        assert_eq!(result.average_ci, 0.0);
        let negative = fleet.dispatch(Hour(3), -5.0);
        assert_eq!(negative.served_mw, 0.0);
    }

    #[test]
    fn dispatch_series_shows_solar_valley() {
        // The dispatched CI trace exhibits the same diurnal dip the
        // synthesizer models for solar-heavy regions.
        let fleet = california_like_fleet();
        let series = fleet.dispatch_series(Hour(0), diurnal_demand(900.0, 200.0), 24 * 7);
        let mut by_hour = [0.0f64; 24];
        for (i, v) in series.values().iter().enumerate() {
            by_hour[i % 24] += v / 7.0;
        }
        let noon = by_hour[12];
        let midnight = by_hour[0];
        assert!(
            noon < midnight * 0.7,
            "noon {noon:.0} vs midnight {midnight:.0}"
        );
        // Weekly series has 24 h periodicity detectable by the stats
        // crate's scoring (sanity link between the two substrates).
        assert!(series.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn more_renewable_capacity_lowers_average_ci() {
        let mut cleaner = california_like_fleet();
        // Double the solar capacity.
        let gens: Vec<Generator> = cleaner
            .generators()
            .iter()
            .cloned()
            .map(|mut g| {
                if g.source == Source::Solar {
                    g.capacity_mw *= 2.0;
                }
                g
            })
            .collect();
        cleaner = Fleet::new(gens);
        let base = california_like_fleet();
        let demand = diurnal_demand(900.0, 200.0);
        let base_mean = base.dispatch_series(Hour(0), &demand, 24 * 30).mean();
        let clean_mean = cleaner.dispatch_series(Hour(0), &demand, 24 * 30).mean();
        assert!(clean_mean < base_mean);
    }

    #[test]
    fn curtailment_tracks_unused_renewables() {
        let fleet = california_like_fleet();
        // Noon: 900 MW of solar available, 500 MW of demand → everything
        // served by solar, 400 MW curtailed.
        let noon = fleet.dispatch(Hour(12), 500.0);
        assert!(
            (noon.curtailed_mw - 400.0).abs() < 1e-9,
            "{}",
            noon.curtailed_mw
        );
        // Midnight: no solar available, nothing to curtail.
        let night = fleet.dispatch(Hour(0), 500.0);
        assert_eq!(night.curtailed_mw, 0.0);
        // High noon demand: all solar dispatched, zero curtailment.
        let busy = fleet.dispatch(Hour(12), 2000.0);
        assert_eq!(busy.curtailed_mw, 0.0);
    }

    #[test]
    fn extra_load_in_curtailment_hours_is_near_free() {
        let fleet = california_like_fleet();
        let before = fleet.dispatch(Hour(12), 500.0);
        let after = fleet.dispatch(Hour(12), 600.0);
        // The extra 100 MW is absorbed by curtailed solar: the delta
        // emissions equal solar's own factor.
        let delta_kg = after.emissions_kg() - before.emissions_kg();
        assert!((delta_kg - 100.0 * 45.0).abs() < 1e-6, "delta {delta_kg}");
        assert!((after.curtailed_mw - 300.0).abs() < 1e-9);
    }

    #[test]
    fn marginal_series_tracks_the_price_setting_generator() {
        let fleet = california_like_fleet();
        let marginal = fleet.marginal_series(Hour(0), |_| 1500.0, 24);
        // At 1500 MW the night margin is the oil peaker, the solar noon
        // margin is cheaper gas.
        assert!(marginal.get(Hour(0)) >= 490.0);
        assert!(marginal.get(Hour(12)) < marginal.get(Hour(0)));
    }

    #[test]
    fn emissions_kg_is_ci_times_served() {
        let r = DispatchResult {
            served_mw: 100.0,
            shortfall_mw: 0.0,
            average_ci: 300.0,
            marginal_ci: 490.0,
            curtailed_mw: 0.0,
        };
        // 100 MWh at 300 g/kWh = 30 t = 30 000 kg.
        assert!((r.emissions_kg() - 30_000.0).abs() < 1e-9);
    }

    #[test]
    fn availability_clamped() {
        fn weird(_: Hour) -> f64 {
            7.0
        }
        let g = Generator {
            name: "weird",
            source: Source::Wind,
            capacity_mw: 100.0,
            marginal_cost: 1.0,
            availability: Some(weird),
        };
        assert_eq!(g.available_mw(Hour(0)), 100.0);
    }
}
