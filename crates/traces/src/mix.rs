//! Generation-mix modelling and life-cycle emission factors.
//!
//! A region's average carbon-intensity is the generation-weighted average of
//! its sources' emission factors (§2.1 of the paper). The factors below are
//! the IPCC AR5 median life-cycle values in g·CO2eq/kWh, the same family of
//! constants Electricity Maps uses.

/// A generation source category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Hard coal and lignite.
    Coal,
    /// Natural gas (combined and open cycle).
    Gas,
    /// Oil-fired generation.
    Oil,
    /// Nuclear fission.
    Nuclear,
    /// Reservoir and run-of-river hydro.
    Hydro,
    /// Onshore and offshore wind.
    Wind,
    /// Utility and rooftop solar PV.
    Solar,
    /// Geothermal.
    Geothermal,
    /// Biomass and waste.
    Biomass,
}

impl Source {
    /// Position of this source in [`Source::ALL`] (declaration order).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// All source categories, in the canonical order used by [`EnergyMix`].
    pub const ALL: [Source; 9] = [
        Source::Coal,
        Source::Gas,
        Source::Oil,
        Source::Nuclear,
        Source::Hydro,
        Source::Wind,
        Source::Solar,
        Source::Geothermal,
        Source::Biomass,
    ];

    /// Returns the IPCC median life-cycle emission factor in g·CO2eq/kWh.
    pub fn emission_factor(self) -> f64 {
        match self {
            Source::Coal => 820.0,
            Source::Gas => 490.0,
            Source::Oil => 650.0,
            Source::Nuclear => 12.0,
            Source::Hydro => 24.0,
            Source::Wind => 11.0,
            Source::Solar => 45.0,
            Source::Geothermal => 38.0,
            Source::Biomass => 230.0,
        }
    }

    /// Returns `true` for fossil-fuel sources (coal, gas, oil).
    pub fn is_fossil(self) -> bool {
        matches!(self, Source::Coal | Source::Gas | Source::Oil)
    }

    /// Returns `true` for variable renewables (wind, solar).
    pub fn is_variable_renewable(self) -> bool {
        matches!(self, Source::Wind | Source::Solar)
    }

    /// Returns a short label for table output.
    pub fn label(self) -> &'static str {
        match self {
            Source::Coal => "coal",
            Source::Gas => "gas",
            Source::Oil => "oil",
            Source::Nuclear => "nuclear",
            Source::Hydro => "hydro",
            Source::Wind => "wind",
            Source::Solar => "solar",
            Source::Geothermal => "geothermal",
            Source::Biomass => "biomass",
        }
    }

    /// Parses a source label (metadata sidecars, scenario files).
    pub fn parse(label: &str) -> Result<Source, String> {
        let needle = label.trim().to_lowercase();
        Source::ALL
            .into_iter()
            .find(|s| s.label() == needle)
            .ok_or_else(|| {
                let valid: Vec<&str> = Source::ALL.iter().map(|s| s.label()).collect();
                format!(
                    "unknown energy source `{label}` (valid: {})",
                    valid.join(", ")
                )
            })
    }
}

/// A region's annual average generation mix (shares sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyMix {
    shares: [f64; 9],
}

impl EnergyMix {
    /// Creates a mix from shares in [`Source::ALL`] order, normalizing so
    /// the shares sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if any share is negative or all shares are zero.
    pub fn new(shares: [f64; 9]) -> Self {
        let total: f64 = shares.iter().sum();
        assert!(
            shares.iter().all(|&s| s >= 0.0) && total > 0.0,
            "mix shares must be non-negative and not all zero"
        );
        let mut normalized = shares;
        for s in &mut normalized {
            *s /= total;
        }
        Self { shares: normalized }
    }

    /// Crate-internal constructor for shares that are already
    /// normalized (binary-container decode): skips the re-normalization
    /// in [`EnergyMix::new`], whose division by a sum within 1 ulp of
    /// 1.0 would perturb the stored bits. The caller validates.
    pub(crate) fn from_normalized(shares: [f64; 9]) -> Self {
        Self { shares }
    }

    /// Returns the share of `source` in the mix.
    #[inline]
    pub fn share(&self, source: Source) -> f64 {
        self.shares[source.index()]
    }

    /// Returns the combined share of fossil sources.
    pub fn fossil_share(&self) -> f64 {
        Source::ALL
            .iter()
            .filter(|s| s.is_fossil())
            .map(|&s| self.share(s))
            .sum()
    }

    /// Returns the combined share of all renewable sources (hydro, wind,
    /// solar, geothermal, biomass).
    pub fn renewable_share(&self) -> f64 {
        self.share(Source::Hydro)
            + self.share(Source::Wind)
            + self.share(Source::Solar)
            + self.share(Source::Geothermal)
            + self.share(Source::Biomass)
    }

    /// Returns the combined share of variable renewables (wind + solar),
    /// the driver of carbon-intensity *variability*.
    pub fn variable_renewable_share(&self) -> f64 {
        self.share(Source::Wind) + self.share(Source::Solar)
    }

    /// Returns the mix-implied average carbon-intensity in g·CO2eq/kWh.
    pub fn implied_ci(&self) -> f64 {
        Source::ALL
            .iter()
            .map(|&s| self.share(s) * s.emission_factor())
            .sum()
    }

    /// Returns a new mix with an extra `fraction` of total generation added
    /// from variable renewables (50 % wind, 50 % solar), displacing the
    /// existing mix proportionally.
    ///
    /// This is the transformation behind the paper's "increasing renewable
    /// penetration" what-if (§6.3).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    pub fn with_added_renewables(&self, fraction: f64) -> EnergyMix {
        assert!(
            (0.0..1.0).contains(&fraction),
            "added renewable fraction must be in [0, 1)"
        );
        let mut shares = self.shares;
        for s in &mut shares {
            *s *= 1.0 - fraction;
        }
        let wind_idx = Source::Wind.index();
        let solar_idx = Source::Solar.index();
        shares[wind_idx] += fraction / 2.0;
        shares[solar_idx] += fraction / 2.0;
        EnergyMix::new(shares)
    }

    /// Iterates over `(source, share)` pairs with non-zero share.
    pub fn iter(&self) -> impl Iterator<Item = (Source, f64)> + '_ {
        Source::ALL
            .iter()
            .zip(self.shares.iter())
            .filter(|(_, &share)| share > 0.0)
            .map(|(&s, &share)| (s, share))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn california_like() -> EnergyMix {
        // coal gas oil nuclear hydro wind solar geo biomass
        EnergyMix::new([0.0, 0.40, 0.0, 0.08, 0.10, 0.10, 0.25, 0.05, 0.02])
    }

    #[test]
    fn index_matches_declaration_order() {
        for (i, s) in Source::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Source::ALL[s.index()], *s);
        }
    }

    #[test]
    fn shares_normalize() {
        let mix = EnergyMix::new([2.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((mix.share(Source::Coal) - 0.5).abs() < 1e-12);
        assert!((mix.share(Source::Hydro) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn implied_ci_weighted_average() {
        let mix = EnergyMix::new([1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        // Half coal (820), half hydro (24) → 422.
        assert!((mix.implied_ci() - 422.0).abs() < 1e-9);
    }

    #[test]
    fn share_groupings() {
        let mix = california_like();
        assert!((mix.fossil_share() - 0.40).abs() < 1e-9);
        assert!((mix.variable_renewable_share() - 0.35).abs() < 1e-9);
        assert!((mix.renewable_share() - 0.52).abs() < 1e-9);
    }

    #[test]
    fn added_renewables_lower_ci() {
        let mix = california_like();
        let greener = mix.with_added_renewables(0.5);
        assert!(greener.implied_ci() < mix.implied_ci());
        assert!(greener.variable_renewable_share() > mix.variable_renewable_share());
        let total: f64 = Source::ALL.iter().map(|&s| greener.share(s)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn added_renewables_monotone() {
        let mix = california_like();
        let mut last = mix.implied_ci();
        for pct in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let ci = mix.with_added_renewables(pct).implied_ci();
            assert!(ci < last, "CI should fall as renewables grow");
            last = ci;
        }
    }

    #[test]
    fn iter_skips_zero_shares() {
        let mix = EnergyMix::new([1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let sources: Vec<Source> = mix.iter().map(|(s, _)| s).collect();
        assert_eq!(sources, vec![Source::Coal, Source::Hydro]);
    }

    #[test]
    fn fossil_classification() {
        assert!(Source::Coal.is_fossil());
        assert!(Source::Gas.is_fossil());
        assert!(Source::Oil.is_fossil());
        assert!(!Source::Nuclear.is_fossil());
        assert!(Source::Wind.is_variable_renewable());
        assert!(!Source::Hydro.is_variable_renewable());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_share_panics() {
        EnergyMix::new([-0.1, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn bad_renewable_fraction_panics() {
        california_like().with_added_renewables(1.0);
    }
}
