//! Hourly time series and prefix-sum acceleration structures.

use crate::error::TraceError;
use crate::time::Hour;

/// An hourly time series anchored at an absolute [`Hour`].
///
/// The series owns a dense `Vec<f64>` of samples; index `i` holds the value
/// for hour `start + i`. All scheduling kernels in `decarb-core` consume
/// slices of this type.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    start: Hour,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from a start hour and raw samples.
    pub fn new(start: Hour, values: Vec<f64>) -> Self {
        Self { start, values }
    }

    /// Returns the absolute hour of the first sample.
    #[inline]
    pub fn start(&self) -> Hour {
        self.start
    }

    /// Returns the absolute hour just past the last sample.
    #[inline]
    pub fn end(&self) -> Hour {
        self.start.plus(self.len())
    }

    /// Returns the number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the series holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the raw sample slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns the sample at absolute hour `hour`, if in range.
    #[inline]
    pub fn at(&self, hour: Hour) -> Option<f64> {
        let i = hour.0.checked_sub(self.start.0)? as usize;
        self.values.get(i).copied()
    }

    /// Returns the sample at absolute hour `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is out of range; use [`TimeSeries::at`] for a
    /// fallible lookup.
    #[inline]
    pub fn get(&self, hour: Hour) -> f64 {
        self.at(hour).unwrap_or_else(|| {
            // decarb-analyze: allow(no-panic) -- documented panicking accessor; `at` is the fallible sibling
            panic!(
                "hour {hour} outside series [{}, {})",
                self.start,
                self.end()
            )
        })
    }

    /// Returns the contiguous window of `len` samples starting at `from`.
    pub fn window(&self, from: Hour, len: usize) -> Result<&[f64], TraceError> {
        let i = from
            .0
            .checked_sub(self.start.0)
            .ok_or(TraceError::OutOfRange { hour: from })? as usize;
        if i + len > self.values.len() {
            return Err(TraceError::OutOfRange {
                hour: from.plus(len.saturating_sub(1)),
            });
        }
        Ok(&self.values[i..i + len])
    }

    /// Returns a new series holding the samples for hours `[from, from+len)`.
    pub fn slice(&self, from: Hour, len: usize) -> Result<TimeSeries, TraceError> {
        Ok(TimeSeries::new(from, self.window(from, len)?.to_vec()))
    }

    /// Returns the arithmetic mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Returns the minimum sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Returns the maximum sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Iterates over `(hour, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Hour, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.start.plus(i), v))
    }

    /// Applies `f` to every sample in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(Hour, f64) -> f64) {
        for (i, v) in self.values.iter_mut().enumerate() {
            *v = f(self.start.plus(i), *v);
        }
    }

    /// Builds a prefix-sum accelerator over this series.
    pub fn prefix_sum(&self) -> PrefixSum {
        PrefixSum::build(self)
    }

    /// Builds the two-level [`ChunkedPrefix`] accelerator, the
    /// cache-friendly variant for long sub-hourly series.
    pub fn chunked_prefix(&self) -> ChunkedPrefix {
        ChunkedPrefix::build(self)
    }
}

/// Prefix sums over a [`TimeSeries`], enabling O(1) window-cost queries.
///
/// `sum(from, len)` returns the total carbon cost (assuming a unit 1 kW
/// draw) of running for `len` contiguous hours starting at `from`, which is
/// the primitive every temporal-shifting kernel is built on.
#[derive(Debug, Clone)]
pub struct PrefixSum {
    start: Hour,
    // `prefix[i]` is the sum of the first `i` samples.
    prefix: Vec<f64>,
}

impl PrefixSum {
    /// Builds prefix sums for `series`.
    pub fn build(series: &TimeSeries) -> Self {
        let mut prefix = Vec::with_capacity(series.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &v in series.values() {
            acc += v;
            prefix.push(acc);
        }
        Self {
            start: series.start(),
            prefix,
        }
    }

    /// Returns the number of underlying samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Returns `true` if there are no underlying samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the start hour of the underlying series.
    #[inline]
    pub fn start(&self) -> Hour {
        self.start
    }

    /// Returns the sum of `len` samples starting at absolute hour `from`.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of range.
    #[inline]
    pub fn sum(&self, from: Hour, len: usize) -> f64 {
        let i = (from.0 - self.start.0) as usize;
        self.prefix[i + len] - self.prefix[i]
    }

    /// Fallible version of [`PrefixSum::sum`].
    pub fn try_sum(&self, from: Hour, len: usize) -> Result<f64, TraceError> {
        let i = from
            .0
            .checked_sub(self.start.0)
            .ok_or(TraceError::OutOfRange { hour: from })? as usize;
        if i + len > self.len() {
            return Err(TraceError::OutOfRange {
                hour: from.plus(len.saturating_sub(1)),
            });
        }
        Ok(self.prefix[i + len] - self.prefix[i])
    }
}

/// A two-level prefix sum for long (sub-hourly, year-scale) series.
///
/// One flat prefix array over a 105k-sample 5-minute year trace spans
/// ~840 kB; the planners' sliding-window queries then touch two cache
/// lines far apart per probe. `ChunkedPrefix` splits the series into
/// fixed blocks, keeping a small block-level prefix (sum of everything
/// before each block) plus within-block relative prefixes whose
/// magnitudes stay near the block sum — so short-window queries resolve
/// inside one or two blocks, and the relative prefixes lose less
/// precision than a monotonically growing global accumulator.
///
/// `sum(from, len)` returns the same window total as
/// [`PrefixSum::sum`] up to floating-point association; the hourly
/// planners keep the flat [`PrefixSum`] (their results are golden-
/// pinned), while sub-hourly planners build this structure.
#[derive(Debug, Clone)]
pub struct ChunkedPrefix {
    start: Hour,
    len: usize,
    /// `block[k]` is the exact sum of all samples before block `k`.
    block: Vec<f64>,
    /// `rel[i]` is the sum of samples within `i`'s block up to and
    /// including sample `i-1` of that block (0.0 at block starts);
    /// laid out densely parallel to the samples, plus one tail entry
    /// per block boundary folded into indexing below.
    rel: Vec<f64>,
}

impl ChunkedPrefix {
    /// Samples per block: 4096 f64s = 32 kB of relative prefixes per
    /// block, sized to L1/L2-friendly strides for sliding windows.
    pub const BLOCK: usize = 4096;

    /// Builds the two-level prefix over `series`.
    pub fn build(series: &TimeSeries) -> Self {
        let n = series.len();
        // `rel` holds, for position i, the sum of `i`'s block's samples
        // strictly before `i` — an (n+1)-entry array so a window ending
        // exactly at `n` indexes cleanly.
        let mut block = Vec::with_capacity(n / Self::BLOCK + 2);
        let mut rel = Vec::with_capacity(n + 1);
        let mut total = 0.0f64;
        let mut acc = 0.0f64;
        for (i, &v) in series.values().iter().enumerate() {
            if i % Self::BLOCK == 0 {
                total += acc;
                block.push(total);
                acc = 0.0;
            }
            rel.push(acc);
            acc += v;
        }
        // Position `n` either opens a fresh block (exact multiple) or
        // tails off the current one.
        if n.is_multiple_of(Self::BLOCK) {
            total += acc;
            block.push(total);
            acc = 0.0;
        }
        rel.push(acc);
        Self {
            start: series.start(),
            len: n,
            block,
            rel,
        }
    }

    /// Returns the number of underlying samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if there are no underlying samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the start hour (slot) of the underlying series.
    #[inline]
    pub fn start(&self) -> Hour {
        self.start
    }

    /// Absolute prefix at sample offset `i` (sum of the first `i`
    /// samples).
    #[inline]
    fn prefix_at(&self, i: usize) -> f64 {
        self.block[i / Self::BLOCK] + self.rel[i]
    }

    /// Returns the sum of `len` samples starting at absolute slot
    /// `from`.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of range.
    #[inline]
    pub fn sum(&self, from: Hour, len: usize) -> f64 {
        let i = (from.0 - self.start.0) as usize;
        self.prefix_at(i + len) - self.prefix_at(i)
    }

    /// Fallible version of [`ChunkedPrefix::sum`].
    pub fn try_sum(&self, from: Hour, len: usize) -> Result<f64, TraceError> {
        let i = from
            .0
            .checked_sub(self.start.0)
            .ok_or(TraceError::OutOfRange { hour: from })? as usize;
        if i + len > self.len {
            return Err(TraceError::OutOfRange {
                hour: from.plus(len.saturating_sub(1)),
            });
        }
        Ok(self.prefix_at(i + len) - self.prefix_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: &[f64]) -> TimeSeries {
        TimeSeries::new(Hour(10), values.to_vec())
    }

    #[test]
    fn basic_accessors() {
        let s = ts(&[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.start(), Hour(10));
        assert_eq!(s.end(), Hour(13));
        assert_eq!(s.at(Hour(11)), Some(2.0));
        assert_eq!(s.at(Hour(13)), None);
        assert_eq!(s.at(Hour(9)), None);
        assert_eq!(s.get(Hour(12)), 3.0);
    }

    #[test]
    fn window_and_slice() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.window(Hour(11), 2).unwrap(), &[2.0, 3.0]);
        assert!(s.window(Hour(11), 4).is_err());
        assert!(s.window(Hour(9), 1).is_err());
        let sub = s.slice(Hour(12), 2).unwrap();
        assert_eq!(sub.start(), Hour(12));
        assert_eq!(sub.values(), &[3.0, 4.0]);
    }

    #[test]
    fn stats() {
        let s = ts(&[2.0, 4.0, 6.0]);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        let empty = TimeSeries::new(Hour(0), vec![]);
        assert_eq!(empty.mean(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn iter_yields_absolute_hours() {
        let s = ts(&[1.0, 2.0]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(Hour(10), 1.0), (Hour(11), 2.0)]);
    }

    #[test]
    fn map_in_place_applies() {
        let mut s = ts(&[1.0, 2.0]);
        s.map_in_place(|h, v| v + h.index() as f64);
        assert_eq!(s.values(), &[11.0, 13.0]);
    }

    #[test]
    fn prefix_sums_match_direct() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let p = s.prefix_sum();
        for from in 0..5usize {
            for len in 0..=(5 - from) {
                let direct: f64 = s.values()[from..from + len].iter().sum();
                let fast = p.sum(Hour(10 + from as u32), len);
                assert!((direct - fast).abs() < 1e-12, "from={from} len={len}");
            }
        }
    }

    #[test]
    fn prefix_try_sum_bounds() {
        let s = ts(&[1.0, 2.0]);
        let p = s.prefix_sum();
        assert!(p.try_sum(Hour(10), 2).is_ok());
        assert!(p.try_sum(Hour(10), 3).is_err());
        assert!(p.try_sum(Hour(9), 1).is_err());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn chunked_prefix_matches_direct_sums() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let c = s.chunked_prefix();
        assert_eq!(c.len(), 5);
        assert_eq!(c.start(), Hour(10));
        for from in 0..5usize {
            for len in 0..=(5 - from) {
                let direct: f64 = s.values()[from..from + len].iter().sum();
                let fast = c.sum(Hour(10 + from as u32), len);
                assert!((direct - fast).abs() < 1e-12, "from={from} len={len}");
            }
        }
    }

    #[test]
    fn chunked_prefix_crosses_block_boundaries() {
        // Integer-valued series spanning several blocks: sums crossing
        // block boundaries must be exact (integers stay exact in f64).
        let n = ChunkedPrefix::BLOCK * 2 + 500;
        let values: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
        let series = TimeSeries::new(Hour(0), values.clone());
        let c = series.chunked_prefix();
        let flat = series.prefix_sum();
        for (from, len) in [
            (0, n),
            (ChunkedPrefix::BLOCK - 3, 7),
            (ChunkedPrefix::BLOCK - 1, ChunkedPrefix::BLOCK + 2),
            (ChunkedPrefix::BLOCK * 2 - 1, 501),
            (17, 4096),
            (n - 1, 1),
            (n, 0),
        ] {
            let direct: f64 = values[from..from + len].iter().sum();
            assert_eq!(c.sum(Hour(from as u32), len), direct, "{from}+{len}");
            assert_eq!(
                c.sum(Hour(from as u32), len),
                flat.sum(Hour(from as u32), len),
                "{from}+{len} vs flat"
            );
        }
    }

    #[test]
    fn chunked_prefix_exact_block_multiple_and_bounds() {
        let n = ChunkedPrefix::BLOCK;
        let values: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let series = TimeSeries::new(Hour(5), values.clone());
        let c = series.chunked_prefix();
        let total: f64 = values.iter().sum();
        assert_eq!(c.sum(Hour(5), n), total);
        assert!(c.try_sum(Hour(5), n).is_ok());
        assert!(c.try_sum(Hour(5), n + 1).is_err());
        assert!(c.try_sum(Hour(4), 1).is_err());
        let empty = TimeSeries::new(Hour(0), vec![]).chunked_prefix();
        assert!(empty.is_empty());
        assert_eq!(empty.sum(Hour(0), 0), 0.0);
    }
}
