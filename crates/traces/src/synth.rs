//! Deterministic synthesis of hourly carbon-intensity traces.
//!
//! The generator turns a [`Region`]'s calibration targets into a multi-year
//! hourly trace with the statistical structure the paper's analysis depends
//! on (§2.1, §4):
//!
//! * **Magnitude** — each calendar year's mean equals the catalog target
//!   exactly (linear 2020→2022 drift, extrapolated to 2023);
//! * **Diurnal shape** — a solar generation dip (scaled by the solar share,
//!   in local solar time, stronger in summer) plus a human-demand
//!   double-peak (scaled by the fossil share);
//! * **Weekly shape** — a weekday/weekend effect (168 h period);
//! * **Seasonal shape** — an annual cycle, phase-flipped by hemisphere;
//! * **Noise** — an AR(1) process scaled by the wind share (wind is the
//!   dominant source of aperiodic CI variance);
//! * **Variability** — the realized *average daily coefficient of
//!   variation* is calibrated to the catalog target by scaling the shape.
//!
//! The output is deterministic: the same `(seed, region)` always produces
//! the same trace, so numbers recorded in `EXPERIMENTS.md` are stable.

use crate::region::Region;
use crate::rng::Xoshiro256;
use crate::series::TimeSeries;
use crate::time::{self, Hour, HOURS_PER_DAY};

/// Configuration for the trace synthesizer.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Master seed; mixed with each region code for independent streams.
    pub seed: u64,
    /// First generated calendar year (inclusive).
    pub first_year: i32,
    /// Last generated calendar year (inclusive).
    pub last_year: i32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            seed: 0xDECA_2B00,
            first_year: 2020,
            last_year: 2023,
        }
    }
}

/// Deterministic carbon-intensity trace generator.
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    config: SynthConfig,
}

/// AR(1) persistence of the noise component.
const AR_RHO: f64 = 0.85;
/// Weight of the weekly (weekday/weekend) component.
const W_WEEKLY: f64 = 0.10;
/// Weight of the annual seasonal component.
const W_SEASONAL: f64 = 0.40;
/// Floor for generated carbon-intensity values (g·CO2eq/kWh).
const CI_FLOOR: f64 = 0.5;

impl Synthesizer {
    /// Creates a synthesizer with the given configuration.
    pub fn new(config: SynthConfig) -> Self {
        Self { config }
    }

    /// Returns the configured horizon as `(start_hour, total_hours)`.
    pub fn horizon(&self) -> (Hour, usize) {
        let start = time::year_start(self.config.first_year);
        let total: usize = (self.config.first_year..=self.config.last_year)
            .map(time::hours_in_year)
            .sum();
        (start, total)
    }

    /// Generates the full multi-year hourly trace for `region`.
    pub fn generate(&self, region: &Region) -> TimeSeries {
        let (start, total) = self.horizon();
        let raw = self.raw_shape(region, start, total);
        let scaled = calibrate(region, start, &raw);
        let values = rescale_annual_means(region, start, scaled, self.config.last_year);
        TimeSeries::new(start, values)
    }

    /// Generates the dimensionless shape signal before calibration.
    fn raw_shape(&self, region: &Region, start: Hour, total: usize) -> Vec<f64> {
        let mut rng = Xoshiro256::from_label(&region.code, self.config.seed);
        let solar_share = region.mix.share(crate::mix::Source::Solar);
        let wind_share = region.mix.share(crate::mix::Source::Wind);
        let fossil_share = region.mix.fossil_share();

        let w_solar = 1.5 * solar_share + 0.05;
        let w_demand = 0.6 * fossil_share + 0.20;
        let w_noise = 0.5 * wind_share + 0.10 + 0.30 * (1.0 - region.periodicity);
        // Local solar time offset from UTC, derived from longitude.
        let solar_offset = (region.lon / 15.0).round() as i64;
        let southern = region.lat < 0.0;

        let mut raw = Vec::with_capacity(total);
        let mut ar = 0.0f64;
        let ar_innovation = (1.0 - AR_RHO * AR_RHO).sqrt();
        for i in 0..total {
            let hour = start.plus(i);
            let local_hour = (hour.hour_of_day() as i64 + solar_offset).rem_euclid(24) as usize;
            let doy = hour.day_of_year() as f64;
            let days = time::days_in_year(hour.year()) as f64;

            // Annual cycle: CI peaks in local winter (heating demand).
            let season_phase = if southern { 0.5 } else { 0.0 };
            let season = (std::f64::consts::TAU * (doy / days - season_phase)).cos();

            // Solar output is stronger in local summer.
            let solar_season = 1.0 + 0.5 * -season;
            let solar = solar_dip(local_hour) * solar_season;

            let demand = DEMAND_PROFILE[local_hour];
            let weekly = if hour.is_weekend() { -1.0 } else { 0.4 };

            ar = AR_RHO * ar + ar_innovation * rng.normal();

            let periodic = w_solar * solar + w_demand * demand + W_WEEKLY * weekly;
            raw.push(region.periodicity * periodic + w_noise * ar + W_SEASONAL * season);
        }
        raw
    }
}

/// Hour-of-day demand anomaly (mean-zero over the day): night trough,
/// morning ramp, evening peak.
const DEMAND_PROFILE: [f64; 24] = [
    -1.17, -1.37, -1.47, -1.52, -1.47, -1.27, -0.77, -0.17, 0.33, 0.63, 0.73, 0.73, 0.63, 0.53,
    0.43, 0.43, 0.53, 0.83, 1.13, 1.23, 1.03, 0.63, 0.03, -0.67,
];

/// Solar generation dip by local hour: 0 at night, most negative at noon,
/// mean-adjusted to zero over the day.
fn solar_dip(local_hour: usize) -> f64 {
    let raw = if (6..18).contains(&local_hour) {
        -((local_hour - 6) as f64 * std::f64::consts::PI / 12.0).sin()
    } else {
        0.0
    };
    // The raw profile has mean -(2/π)·(12/24) ≈ -0.2122 over the day.
    raw + 2.0 / std::f64::consts::PI / 2.0
}

/// Scales the raw shape so the realized average daily CV matches the
/// region's target, and applies the drifting annual mean.
fn calibrate(region: &Region, start: Hour, raw: &[f64]) -> Vec<f64> {
    let mean = raw.iter().sum::<f64>() / raw.len() as f64;
    let centered: Vec<f64> = raw.iter().map(|v| v - mean).collect();

    // Average intra-day standard deviation of the centered shape.
    let mut acc_std = 0.0;
    let mut days = 0usize;
    for day in centered.chunks_exact(HOURS_PER_DAY) {
        let m: f64 = day.iter().sum::<f64>() / HOURS_PER_DAY as f64;
        let var: f64 = day.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / HOURS_PER_DAY as f64;
        acc_std += var.sqrt();
        days += 1;
    }
    let avg_daily_std = acc_std / days.max(1) as f64;
    let k = if avg_daily_std > 1e-12 {
        region.daily_cv / avg_daily_std
    } else {
        0.0
    };

    centered
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let m = drifting_mean(region, start.plus(i));
            (m * (1.0 + k * c)).max(CI_FLOOR)
        })
        .collect()
}

/// Smooth annual-mean trajectory: the catalog's per-year means anchored at
/// year centers with linear interpolation between them.
fn drifting_mean(region: &Region, hour: Hour) -> f64 {
    let year = hour.year();
    let frac = hour.hour_of_year() as f64 / time::hours_in_year(year) as f64;
    if frac < 0.5 {
        let w = frac + 0.5;
        region.mean_ci(year - 1) * (1.0 - w) + region.mean_ci(year) * w
    } else {
        let w = frac - 0.5;
        region.mean_ci(year) * (1.0 - w) + region.mean_ci(year + 1) * w
    }
}

/// Rescales each calendar year multiplicatively so its realized mean equals
/// the catalog target exactly.
fn rescale_annual_means(
    region: &Region,
    start: Hour,
    mut values: Vec<f64>,
    last_year: i32,
) -> Vec<f64> {
    let mut offset = 0usize;
    let mut year = start.year();
    while offset < values.len() && year <= last_year {
        let len = time::hours_in_year(year).min(values.len() - offset);
        let chunk = &mut values[offset..offset + len];
        let mean: f64 = chunk.iter().sum::<f64>() / len as f64;
        let target = region.mean_ci(year);
        if mean > 1e-12 {
            let scale = target / mean;
            for v in chunk.iter_mut() {
                *v = (*v * scale).max(CI_FLOOR);
            }
        }
        offset += len;
        year += 1;
    }
    values
}

/// Computes the paper's variability metric: the mean over days of each
/// day's coefficient of variation.
pub fn average_daily_cv(series: &TimeSeries) -> f64 {
    let mut acc = 0.0;
    let mut days = 0usize;
    for day in series.values().chunks_exact(HOURS_PER_DAY) {
        let m: f64 = day.iter().sum::<f64>() / HOURS_PER_DAY as f64;
        if m <= 0.0 {
            continue;
        }
        let var: f64 = day.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / HOURS_PER_DAY as f64;
        acc += var.sqrt() / m;
        days += 1;
    }
    if days == 0 {
        0.0
    } else {
        acc / days as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::time::year_start;

    fn series_for(code: &str) -> TimeSeries {
        Synthesizer::default().generate(catalog::region(code).unwrap())
    }

    fn year_slice(series: &TimeSeries, year: i32) -> TimeSeries {
        series
            .slice(year_start(year), time::hours_in_year(year))
            .unwrap()
    }

    #[test]
    fn deterministic_output() {
        let a = series_for("US-CA");
        let b = series_for("US-CA");
        assert_eq!(a, b);
    }

    #[test]
    fn horizon_covers_2020_to_2023() {
        let s = series_for("SE");
        assert_eq!(s.start(), Hour(0));
        assert_eq!(s.len(), time::horizon_hours());
    }

    #[test]
    fn annual_means_match_catalog_targets() {
        for code in ["SE", "US-CA", "IN-WE", "AU-SA", "HK", "DE"] {
            let region = catalog::region(code).unwrap();
            let s = series_for(code);
            for year in 2020..=2022 {
                let mean = year_slice(&s, year).mean();
                let target = region.mean_ci(year);
                assert!(
                    (mean - target).abs() / target < 0.02,
                    "{code} {year}: mean {mean:.2} vs target {target:.2}"
                );
            }
        }
    }

    #[test]
    fn sweden_mean_is_paper_anchor() {
        let s = year_slice(&series_for("SE"), 2022);
        assert!((s.mean() - 16.0).abs() < 0.5, "mean {:.2}", s.mean());
    }

    #[test]
    fn values_positive_everywhere() {
        for code in ["SE", "AL", "CA-MB", "US-CA", "AU-SA"] {
            let s = series_for(code);
            assert!(s.min() >= CI_FLOOR, "{code} min {}", s.min());
        }
    }

    #[test]
    fn daily_cv_matches_target() {
        for code in ["US-CA", "DE", "IN-WE", "HK", "AU-SA", "SE", "PL"] {
            let region = catalog::region(code).unwrap();
            let s = year_slice(&series_for(code), 2022);
            let cv = average_daily_cv(&s);
            let target = region.daily_cv;
            assert!(
                (cv - target).abs() < 0.25 * target + 0.01,
                "{code}: cv {cv:.3} vs target {target:.3}"
            );
        }
    }

    #[test]
    fn california_swings_2x_within_days() {
        // Fig. 1(a): California's CI varies by ≈ 2× over a day.
        let s = year_slice(&series_for("US-CA"), 2022);
        let mut ratios = Vec::new();
        for day in s.values().chunks_exact(HOURS_PER_DAY) {
            let max = day.iter().cloned().fold(f64::MIN, f64::max);
            let min = day.iter().cloned().fold(f64::MAX, f64::min);
            ratios.push(max / min);
        }
        ratios.sort_by(f64::total_cmp);
        let p90 = ratios[(ratios.len() as f64 * 0.9) as usize];
        assert!(p90 > 1.5, "p90 daily swing {p90:.2} should exceed 1.5×");
    }

    #[test]
    fn hong_kong_is_flat_and_aperiodic() {
        let s = year_slice(&series_for("HK"), 2022);
        let cv = average_daily_cv(&s);
        assert!(cv < 0.03, "HK daily cv {cv:.3}");
        // No diurnal structure: hour-of-day means stay within a tight band.
        let mut by_hour = [0.0f64; 24];
        for (i, v) in s.values().iter().enumerate() {
            by_hour[i % 24] += v;
        }
        let days = s.len() as f64 / 24.0;
        let means: Vec<f64> = by_hour.iter().map(|v| v / days).collect();
        let overall = means.iter().sum::<f64>() / 24.0;
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread / overall < 0.02,
            "HK diurnal spread {:.4}",
            spread / overall
        );
    }

    #[test]
    fn california_has_diurnal_structure() {
        let s = year_slice(&series_for("US-CA"), 2022);
        let mut by_hour = [0.0f64; 24];
        for (i, v) in s.values().iter().enumerate() {
            by_hour[i % 24] += v;
        }
        let days = s.len() as f64 / 24.0;
        let means: Vec<f64> = by_hour.iter().map(|v| v / days).collect();
        let overall = means.iter().sum::<f64>() / 24.0;
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread / overall > 0.10,
            "CA diurnal spread {:.4}",
            spread / overall
        );
    }

    #[test]
    fn drift_reproduces_catalog_delta() {
        for code in ["GR", "AU-SA", "IN-WE", "SE"] {
            let region = catalog::region(code).unwrap();
            let s = series_for(code);
            let mean_2020 = year_slice(&s, 2020).mean();
            let mean_2022 = year_slice(&s, 2022).mean();
            let delta = mean_2022 - mean_2020;
            let target = region.ci_delta_2020_2022;
            assert!(
                (delta - target).abs() < 0.05 * region.mean_ci_2022 + 2.0,
                "{code}: delta {delta:.1} vs target {target:.1}"
            );
        }
    }

    #[test]
    fn different_regions_produce_independent_noise() {
        let a = year_slice(&series_for("QA"), 2022);
        let b = year_slice(&series_for("BH"), 2022);
        // Similar gas-dominated profiles but independent noise streams.
        let corr = correlation(a.values(), b.values());
        assert!(corr < 0.9, "corr {corr:.3}");
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn average_daily_cv_of_constant_is_zero() {
        let s = TimeSeries::new(Hour(0), vec![5.0; 48]);
        assert_eq!(average_daily_cv(&s), 0.0);
        let empty = TimeSeries::new(Hour(0), vec![]);
        assert_eq!(average_daily_cv(&empty), 0.0);
    }
}
