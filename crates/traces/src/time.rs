//! Calendar and hour-index arithmetic for the 2020–2023 trace horizon.
//!
//! All traces in this workspace are hourly and share a common epoch:
//! **2020-01-01 00:00 UTC**. An [`Hour`] is an absolute index into that
//! horizon. Keeping time as a plain index (instead of a datetime library)
//! makes every scheduling kernel a straightforward array computation, which
//! is exactly how the paper's analysis operates.

/// Hours in a day.
pub const HOURS_PER_DAY: usize = 24;
/// Hours in a week.
pub const HOURS_PER_WEEK: usize = 168;
/// Hours in a non-leap year.
pub const HOURS_PER_YEAR: usize = 8760;

/// First year covered by the built-in dataset.
pub const EPOCH_YEAR: i32 = 2020;
/// Last year covered by the built-in dataset (inclusive).
pub const LAST_YEAR: i32 = 2023;

/// Day of week of the epoch (2020-01-01 was a Wednesday; Monday = 0).
const EPOCH_WEEKDAY: usize = 2;

/// An absolute hour index since 2020-01-01 00:00 UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hour(pub u32);

impl Hour {
    /// Returns the hour index as a `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the hour-of-day in UTC (0–23).
    #[inline]
    pub fn hour_of_day(self) -> usize {
        self.index() % HOURS_PER_DAY
    }

    /// Returns the day-of-week (Monday = 0 … Sunday = 6).
    #[inline]
    pub fn day_of_week(self) -> usize {
        (self.index() / HOURS_PER_DAY + EPOCH_WEEKDAY) % 7
    }

    /// Returns `true` if the hour falls on a Saturday or Sunday.
    #[inline]
    pub fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// Returns the calendar year containing this hour.
    ///
    /// # Panics
    ///
    /// Panics if the hour lies beyond [`LAST_YEAR`].
    pub fn year(self) -> i32 {
        let mut rest = self.index();
        for year in EPOCH_YEAR..=LAST_YEAR {
            let len = hours_in_year(year);
            if rest < len {
                return year;
            }
            rest -= len;
        }
        // decarb-analyze: allow(no-panic) -- documented panicking accessor (# Panics: beyond LAST_YEAR)
        panic!("hour {} beyond dataset horizon", self.0);
    }

    /// Returns the hour offset within its calendar year.
    pub fn hour_of_year(self) -> usize {
        self.index() - year_start(self.year()).index()
    }

    /// Returns the (zero-based) day-of-year containing this hour.
    pub fn day_of_year(self) -> usize {
        self.hour_of_year() / HOURS_PER_DAY
    }

    /// Returns a new hour advanced by `delta` hours.
    #[inline]
    pub fn plus(self, delta: usize) -> Hour {
        Hour(self.0 + delta as u32)
    }
}

impl std::fmt::Display for Hour {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}y+{:04}h", self.year(), self.hour_of_year())
    }
}

/// The sample resolution of a dataset: how many minutes one slot spans.
///
/// A [`Hour`] is really a *slot index*: at the default hourly resolution
/// slot `n` covers `[epoch + n·60min, epoch + (n+1)·60min)`; at 5-minute
/// resolution the same index type counts 5-minute slots from the same
/// epoch. Every dataset carries exactly one resolution, and all
/// wall-clock quantities (job lengths, slack, horizons) convert to slot
/// counts once at the edge via the helpers here. Only divisors of 60
/// are valid, so an hour is always a whole number of slots and hourly
/// data embeds losslessly in any finer axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    minutes: u32,
}

impl Default for Resolution {
    fn default() -> Self {
        Resolution::HOURLY
    }
}

impl Resolution {
    /// The default hourly resolution (60-minute slots).
    pub const HOURLY: Resolution = Resolution { minutes: 60 };

    /// Creates a resolution from a slot length in minutes.
    ///
    /// Only divisors of 60 in `1..=60` are accepted: an hour must be a
    /// whole number of slots for hour-denominated quantities (slack,
    /// horizons) to convert exactly.
    pub fn from_minutes(minutes: u32) -> Result<Resolution, String> {
        if !(1..=60).contains(&minutes) || 60 % minutes != 0 {
            return Err(format!(
                "invalid resolution {minutes} min (must divide 60 and lie in 1..=60: \
                 1, 2, 3, 4, 5, 6, 10, 12, 15, 20, 30, or 60)"
            ));
        }
        Ok(Resolution { minutes })
    }

    /// The slot length in minutes.
    #[inline]
    pub fn minutes(self) -> u32 {
        self.minutes
    }

    /// Returns `true` at the default 60-minute resolution.
    #[inline]
    pub fn is_hourly(self) -> bool {
        self.minutes == 60
    }

    /// Slots per wall-clock hour (1 at hourly, 12 at 5-minute).
    #[inline]
    pub fn slots_per_hour(self) -> usize {
        (60 / self.minutes) as usize
    }

    /// Slots per wall-clock day.
    #[inline]
    pub fn slots_per_day(self) -> usize {
        HOURS_PER_DAY * self.slots_per_hour()
    }

    /// Converts a whole number of wall-clock hours to slots (exact).
    #[inline]
    pub fn hours_to_slots(self, hours: usize) -> usize {
        hours * self.slots_per_hour()
    }

    /// Converts a fractional wall-clock duration in hours to the number
    /// of slots needed to cover it (ceiling, at least 1).
    #[inline]
    pub fn duration_to_slots(self, hours: f64) -> usize {
        let slots = hours * self.slots_per_hour() as f64;
        (slots.ceil() as usize).max(1)
    }

    /// Re-anchors an hour-domain index (e.g. [`year_start`]) as a slot
    /// index on this axis.
    #[inline]
    pub fn slot_of_hour(self, hour: Hour) -> Hour {
        Hour(hour.0 * self.slots_per_hour() as u32)
    }

    /// Returns `true` when `slot` falls on a wall-clock hour boundary.
    #[inline]
    pub fn is_hour_aligned(self, slot: Hour) -> bool {
        slot.index().is_multiple_of(self.slots_per_hour())
    }

    /// Returns `true` when `hours` wall-clock hours convert to a whole
    /// number of slots — trivially true for integer hours; used by the
    /// scenario checker for fractional durations.
    pub fn aligns(self, hours: f64) -> bool {
        let slots = hours * self.slots_per_hour() as f64;
        slots.fract() == 0.0
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}min", self.minutes)
    }
}

/// Returns `true` if `year` is a leap year.
#[inline]
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Returns the number of hours in `year`.
#[inline]
pub fn hours_in_year(year: i32) -> usize {
    if is_leap_year(year) {
        HOURS_PER_YEAR + HOURS_PER_DAY
    } else {
        HOURS_PER_YEAR
    }
}

/// Returns the number of days in `year`.
#[inline]
pub fn days_in_year(year: i32) -> usize {
    hours_in_year(year) / HOURS_PER_DAY
}

/// Returns the absolute hour at which `year` starts.
///
/// # Panics
///
/// Panics if `year` lies outside the `2020..=2023` dataset horizon.
pub fn year_start(year: i32) -> Hour {
    assert!(
        (EPOCH_YEAR..=LAST_YEAR).contains(&year),
        "year {year} outside dataset horizon"
    );
    let mut acc = 0usize;
    for y in EPOCH_YEAR..year {
        acc += hours_in_year(y);
    }
    Hour(acc as u32)
}

/// Returns the total number of hours in the full 2020–2023 horizon.
pub fn horizon_hours() -> usize {
    (EPOCH_YEAR..=LAST_YEAR).map(hours_in_year).sum()
}

/// Returns every hourly start time within `year` as absolute hours.
pub fn hours_of_year(year: i32) -> impl Iterator<Item = Hour> {
    let start = year_start(year).0;
    let len = hours_in_year(year) as u32;
    (start..start + len).map(Hour)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2020));
        assert!(!is_leap_year(2021));
        assert!(!is_leap_year(2022));
        assert!(!is_leap_year(2023));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
    }

    #[test]
    fn year_lengths() {
        assert_eq!(hours_in_year(2020), 8784);
        assert_eq!(hours_in_year(2021), 8760);
        assert_eq!(horizon_hours(), 8784 + 3 * 8760);
    }

    #[test]
    fn year_starts_chain() {
        assert_eq!(year_start(2020), Hour(0));
        assert_eq!(year_start(2021), Hour(8784));
        assert_eq!(year_start(2022), Hour(8784 + 8760));
        assert_eq!(year_start(2023), Hour(8784 + 2 * 8760));
    }

    #[test]
    fn hour_year_roundtrip() {
        for year in EPOCH_YEAR..=LAST_YEAR {
            let start = year_start(year);
            assert_eq!(start.year(), year);
            assert_eq!(start.hour_of_year(), 0);
            let last = Hour(start.0 + hours_in_year(year) as u32 - 1);
            assert_eq!(last.year(), year);
            assert_eq!(last.hour_of_year(), hours_in_year(year) - 1);
        }
    }

    #[test]
    fn epoch_weekday_is_wednesday() {
        // 2020-01-01 was a Wednesday (Monday = 0 → Wednesday = 2).
        assert_eq!(Hour(0).day_of_week(), 2);
        // 2020-01-04 was a Saturday.
        assert!(Hour(3 * 24).is_weekend());
        // 2020-01-06 was a Monday.
        assert_eq!(Hour(5 * 24).day_of_week(), 0);
        assert!(!Hour(5 * 24).is_weekend());
    }

    #[test]
    fn hour_of_day_cycles() {
        assert_eq!(Hour(0).hour_of_day(), 0);
        assert_eq!(Hour(23).hour_of_day(), 23);
        assert_eq!(Hour(24).hour_of_day(), 0);
    }

    #[test]
    fn hours_of_year_iterates_full_year() {
        let hours: Vec<Hour> = hours_of_year(2022).collect();
        assert_eq!(hours.len(), 8760);
        assert_eq!(hours[0], year_start(2022));
        assert_eq!(hours[0].year(), 2022);
        assert_eq!(hours.last().unwrap().year(), 2022);
    }

    #[test]
    fn display_formats() {
        let h = year_start(2022).plus(5);
        assert_eq!(format!("{h}"), "2022y+0005h");
    }

    #[test]
    #[should_panic(expected = "outside dataset horizon")]
    fn year_start_out_of_range_panics() {
        let _ = year_start(2019);
    }

    #[test]
    fn resolution_accepts_only_divisors_of_sixty() {
        for minutes in [1u32, 2, 3, 4, 5, 6, 10, 12, 15, 20, 30, 60] {
            let res = Resolution::from_minutes(minutes).unwrap();
            assert_eq!(res.minutes(), minutes);
            assert_eq!(res.slots_per_hour() * minutes as usize, 60);
        }
        for minutes in [0u32, 7, 8, 9, 11, 13, 25, 45, 61, 90, 120] {
            assert!(Resolution::from_minutes(minutes).is_err(), "{minutes}");
        }
    }

    #[test]
    fn resolution_slot_arithmetic() {
        let five = Resolution::from_minutes(5).unwrap();
        assert!(!five.is_hourly());
        assert_eq!(five.slots_per_hour(), 12);
        assert_eq!(five.slots_per_day(), 288);
        assert_eq!(five.hours_to_slots(24), 288);
        assert_eq!(five.duration_to_slots(8.0), 96);
        assert_eq!(five.duration_to_slots(0.01), 1, "at least one slot");
        assert_eq!(five.duration_to_slots(6.5), 78);
        assert_eq!(five.slot_of_hour(Hour(100)), Hour(1200));
        assert!(five.is_hour_aligned(Hour(24)));
        assert!(!five.is_hour_aligned(Hour(25)));
        assert!(five.aligns(6.5));
        assert!(!five.aligns(6.51));
        assert_eq!(format!("{five}"), "5min");
    }

    #[test]
    fn hourly_resolution_is_identity() {
        let hourly = Resolution::default();
        assert!(hourly.is_hourly());
        assert_eq!(hourly, Resolution::HOURLY);
        assert_eq!(hourly.slots_per_hour(), 1);
        assert_eq!(hourly.hours_to_slots(17), 17);
        assert_eq!(hourly.duration_to_slots(8.0), 8);
        assert_eq!(hourly.duration_to_slots(7.2), 8, "ceiling");
        assert_eq!(hourly.slot_of_hour(Hour(42)), Hour(42));
        assert!(hourly.is_hour_aligned(Hour(41)));
        assert!(hourly.aligns(3.0));
        assert!(!hourly.aligns(2.5));
    }
}
