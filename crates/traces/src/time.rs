//! Calendar and hour-index arithmetic for the 2020–2023 trace horizon.
//!
//! All traces in this workspace are hourly and share a common epoch:
//! **2020-01-01 00:00 UTC**. An [`Hour`] is an absolute index into that
//! horizon. Keeping time as a plain index (instead of a datetime library)
//! makes every scheduling kernel a straightforward array computation, which
//! is exactly how the paper's analysis operates.

/// Hours in a day.
pub const HOURS_PER_DAY: usize = 24;
/// Hours in a week.
pub const HOURS_PER_WEEK: usize = 168;
/// Hours in a non-leap year.
pub const HOURS_PER_YEAR: usize = 8760;

/// First year covered by the built-in dataset.
pub const EPOCH_YEAR: i32 = 2020;
/// Last year covered by the built-in dataset (inclusive).
pub const LAST_YEAR: i32 = 2023;

/// Day of week of the epoch (2020-01-01 was a Wednesday; Monday = 0).
const EPOCH_WEEKDAY: usize = 2;

/// An absolute hour index since 2020-01-01 00:00 UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hour(pub u32);

impl Hour {
    /// Returns the hour index as a `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the hour-of-day in UTC (0–23).
    #[inline]
    pub fn hour_of_day(self) -> usize {
        self.index() % HOURS_PER_DAY
    }

    /// Returns the day-of-week (Monday = 0 … Sunday = 6).
    #[inline]
    pub fn day_of_week(self) -> usize {
        (self.index() / HOURS_PER_DAY + EPOCH_WEEKDAY) % 7
    }

    /// Returns `true` if the hour falls on a Saturday or Sunday.
    #[inline]
    pub fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// Returns the calendar year containing this hour.
    ///
    /// # Panics
    ///
    /// Panics if the hour lies beyond [`LAST_YEAR`].
    pub fn year(self) -> i32 {
        let mut rest = self.index();
        for year in EPOCH_YEAR..=LAST_YEAR {
            let len = hours_in_year(year);
            if rest < len {
                return year;
            }
            rest -= len;
        }
        // decarb-analyze: allow(no-panic) -- documented panicking accessor (# Panics: beyond LAST_YEAR)
        panic!("hour {} beyond dataset horizon", self.0);
    }

    /// Returns the hour offset within its calendar year.
    pub fn hour_of_year(self) -> usize {
        self.index() - year_start(self.year()).index()
    }

    /// Returns the (zero-based) day-of-year containing this hour.
    pub fn day_of_year(self) -> usize {
        self.hour_of_year() / HOURS_PER_DAY
    }

    /// Returns a new hour advanced by `delta` hours.
    #[inline]
    pub fn plus(self, delta: usize) -> Hour {
        Hour(self.0 + delta as u32)
    }
}

impl std::fmt::Display for Hour {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}y+{:04}h", self.year(), self.hour_of_year())
    }
}

/// Returns `true` if `year` is a leap year.
#[inline]
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Returns the number of hours in `year`.
#[inline]
pub fn hours_in_year(year: i32) -> usize {
    if is_leap_year(year) {
        HOURS_PER_YEAR + HOURS_PER_DAY
    } else {
        HOURS_PER_YEAR
    }
}

/// Returns the number of days in `year`.
#[inline]
pub fn days_in_year(year: i32) -> usize {
    hours_in_year(year) / HOURS_PER_DAY
}

/// Returns the absolute hour at which `year` starts.
///
/// # Panics
///
/// Panics if `year` lies outside the `2020..=2023` dataset horizon.
pub fn year_start(year: i32) -> Hour {
    assert!(
        (EPOCH_YEAR..=LAST_YEAR).contains(&year),
        "year {year} outside dataset horizon"
    );
    let mut acc = 0usize;
    for y in EPOCH_YEAR..year {
        acc += hours_in_year(y);
    }
    Hour(acc as u32)
}

/// Returns the total number of hours in the full 2020–2023 horizon.
pub fn horizon_hours() -> usize {
    (EPOCH_YEAR..=LAST_YEAR).map(hours_in_year).sum()
}

/// Returns every hourly start time within `year` as absolute hours.
pub fn hours_of_year(year: i32) -> impl Iterator<Item = Hour> {
    let start = year_start(year).0;
    let len = hours_in_year(year) as u32;
    (start..start + len).map(Hour)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2020));
        assert!(!is_leap_year(2021));
        assert!(!is_leap_year(2022));
        assert!(!is_leap_year(2023));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
    }

    #[test]
    fn year_lengths() {
        assert_eq!(hours_in_year(2020), 8784);
        assert_eq!(hours_in_year(2021), 8760);
        assert_eq!(horizon_hours(), 8784 + 3 * 8760);
    }

    #[test]
    fn year_starts_chain() {
        assert_eq!(year_start(2020), Hour(0));
        assert_eq!(year_start(2021), Hour(8784));
        assert_eq!(year_start(2022), Hour(8784 + 8760));
        assert_eq!(year_start(2023), Hour(8784 + 2 * 8760));
    }

    #[test]
    fn hour_year_roundtrip() {
        for year in EPOCH_YEAR..=LAST_YEAR {
            let start = year_start(year);
            assert_eq!(start.year(), year);
            assert_eq!(start.hour_of_year(), 0);
            let last = Hour(start.0 + hours_in_year(year) as u32 - 1);
            assert_eq!(last.year(), year);
            assert_eq!(last.hour_of_year(), hours_in_year(year) - 1);
        }
    }

    #[test]
    fn epoch_weekday_is_wednesday() {
        // 2020-01-01 was a Wednesday (Monday = 0 → Wednesday = 2).
        assert_eq!(Hour(0).day_of_week(), 2);
        // 2020-01-04 was a Saturday.
        assert!(Hour(3 * 24).is_weekend());
        // 2020-01-06 was a Monday.
        assert_eq!(Hour(5 * 24).day_of_week(), 0);
        assert!(!Hour(5 * 24).is_weekend());
    }

    #[test]
    fn hour_of_day_cycles() {
        assert_eq!(Hour(0).hour_of_day(), 0);
        assert_eq!(Hour(23).hour_of_day(), 23);
        assert_eq!(Hour(24).hour_of_day(), 0);
    }

    #[test]
    fn hours_of_year_iterates_full_year() {
        let hours: Vec<Hour> = hours_of_year(2022).collect();
        assert_eq!(hours.len(), 8760);
        assert_eq!(hours[0], year_start(2022));
        assert_eq!(hours[0].year(), 2022);
        assert_eq!(hours.last().unwrap().year(), 2022);
    }

    #[test]
    fn display_formats() {
        let h = year_start(2022).plus(5);
        assert_eq!(format!("{h}"), "2022y+0005h");
    }

    #[test]
    #[should_panic(expected = "outside dataset horizon")]
    fn year_start_out_of_range_panics() {
        let _ = year_start(2019);
    }
}
