//! The `TraceSet` container: every region's trace plus lookup helpers.

use std::sync::{Arc, OnceLock};

use crate::catalog;
use crate::error::TraceError;
use crate::region::{GeoGroup, Region};
use crate::series::{ChunkedPrefix, TimeSeries};
use crate::synth::{SynthConfig, Synthesizer};
use crate::table::{RegionId, RegionTable};
use crate::time::{self, Hour, Resolution};

/// A set of carbon-intensity traces over an interned [`RegionTable`].
///
/// This is the dataset object every experiment consumes. Series are
/// stored in a dense `Vec` indexed by [`RegionId`] — string lookups
/// ([`TraceSet::series`], [`TraceSet::region`]) happen only at the API
/// edge; the simulator's step loop and the planners index by id. The
/// built-in set ([`builtin_dataset`]) interns all 123 catalog regions
/// over 2020–2023; imported datasets and scenario files intern whatever
/// regions they declare.
#[derive(Debug, Clone)]
pub struct TraceSet {
    table: RegionTable,
    series: Vec<TimeSeries>,
    /// Slot length shared by every series in the set. [`Hour`] indices
    /// in this dataset are slot indices on this axis.
    resolution: Resolution,
    /// Lazily built [`ChunkedPrefix`] accelerators, one slot per series.
    /// Building one is O(series length) — noticeable at 105k-sample
    /// sub-hourly scale — so every consumer that window-sums a trace
    /// (the simulator's span accrual above all) shares one build per
    /// dataset instead of paying it per run. `OnceLock` keeps the cache
    /// race-safe under the scenario engine's thread fan-out.
    prefix_cache: Vec<OnceLock<ChunkedPrefix>>,
}

impl TraceSet {
    /// Builds a trace set by synthesizing every region in `regions`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate region codes.
    pub fn synthesize(regions: Vec<Region>, config: SynthConfig) -> Self {
        let synth = Synthesizer::new(config);
        let mut set = Self {
            table: RegionTable::new(),
            series: Vec::with_capacity(regions.len()),
            resolution: Resolution::HOURLY,
            prefix_cache: Vec::new(),
        };
        for region in regions {
            let series = synth.generate(&region);
            // decarb-analyze: allow(no-panic) -- documented panicking constructor (header: # Panics on duplicate codes)
            set.table.intern(region).expect("unique region codes");
            set.series.push(series);
            set.prefix_cache.push(OnceLock::new());
        }
        set
    }

    /// Builds a trace set from explicit `(region, series)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate region codes (use [`TraceSet::try_from_series`]
    /// to handle them as errors).
    pub fn from_series(pairs: Vec<(Region, TimeSeries)>) -> Self {
        // decarb-analyze: allow(no-panic) -- documented panicking variant; `try_from_series` is the fallible API
        Self::try_from_series(pairs).expect("unique region codes")
    }

    /// Fallible [`TraceSet::from_series`]: errors on duplicate codes.
    pub fn try_from_series(pairs: Vec<(Region, TimeSeries)>) -> Result<Self, TraceError> {
        let mut set = Self {
            table: RegionTable::new(),
            series: Vec::with_capacity(pairs.len()),
            resolution: Resolution::HOURLY,
            prefix_cache: Vec::new(),
        };
        for (region, series) in pairs {
            set.table.intern(region)?;
            set.series.push(series);
            set.prefix_cache.push(OnceLock::new());
        }
        Ok(set)
    }

    /// Interns `regions` that are not yet covered and synthesizes their
    /// traces with `config` — how scenario files add fully custom
    /// regions on top of an existing dataset. Regions whose code is
    /// already covered are left untouched (the dataset's trace wins).
    pub fn extend_synthesized(&mut self, regions: Vec<Region>, config: SynthConfig) {
        let synth = Synthesizer::new(config);
        let factor = self.resolution.slots_per_hour();
        for region in regions {
            if self.table.id(&region.code).is_some() {
                continue;
            }
            // The synthesizer generates hourly samples; on a sub-hourly
            // set each hour expands into its slots so the new trace
            // lives on the same axis as the rest of the dataset.
            let series = expand_series(&synth.generate(&region), factor);
            if self.table.intern(region).is_ok() {
                self.series.push(series);
                self.prefix_cache.push(OnceLock::new());
            }
        }
    }

    /// The dataset's sample resolution (hourly unless the source data
    /// declared otherwise).
    #[inline]
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Stamps the set with a sample resolution — used by ingestion
    /// (containers, CSV, sidecars) after validating that the source
    /// data really is on that axis. The caller owns the invariant that
    /// every series' `start`/`len` are slot counts at `resolution`.
    pub fn with_resolution(mut self, resolution: Resolution) -> Self {
        self.resolution = resolution;
        self
    }

    /// Re-expresses this dataset on a finer axis: every sample is
    /// repeated over the slots its original interval covers, and slot
    /// anchors are rescaled. The carbon signal is unchanged — this is
    /// exactly the "hourly data embeds losslessly in a finer axis"
    /// direction; genuinely finer information can only come from finer
    /// source data.
    pub fn resample_to(&self, resolution: Resolution) -> Result<TraceSet, TraceError> {
        if resolution.minutes() > self.resolution.minutes()
            || !self
                .resolution
                .minutes()
                .is_multiple_of(resolution.minutes())
        {
            return Err(TraceError::Resolution(format!(
                "cannot resample {} data to {} (target must evenly subdivide the source)",
                self.resolution, resolution
            )));
        }
        let factor = (self.resolution.minutes() / resolution.minutes()) as usize;
        Ok(TraceSet {
            table: self.table.clone(),
            series: self
                .series
                .iter()
                .map(|s| expand_series(s, factor))
                .collect(),
            resolution,
            prefix_cache: self.series.iter().map(|_| OnceLock::new()).collect(),
        })
    }

    /// Returns the number of regions.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if the set holds no regions.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The interned region table (id ↔ code ↔ metadata).
    pub fn table(&self) -> &RegionTable {
        &self.table
    }

    /// Returns the regions in intern order, indexable by
    /// [`RegionId::index`].
    pub fn regions(&self) -> &[Region] {
        self.table.regions()
    }

    /// All region ids, in intern order.
    pub fn ids(&self) -> impl Iterator<Item = RegionId> + 'static {
        self.table.ids()
    }

    /// Resolves a zone code to its dense id (the string edge).
    pub fn id_of(&self, code: &str) -> Result<RegionId, TraceError> {
        self.table
            .id(code)
            .ok_or_else(|| TraceError::UnknownRegion(code.to_string()))
    }

    /// The region metadata behind `id` (panics on a foreign id).
    #[inline]
    pub fn region_by_id(&self, id: RegionId) -> &Region {
        self.table.get(id)
    }

    /// The trace behind `id` (panics on a foreign id).
    #[inline]
    pub fn series_by_id(&self, id: RegionId) -> &TimeSeries {
        &self.series[id.index()]
    }

    /// The trace behind `id`, if the id belongs to this set.
    #[inline]
    pub fn try_series_by_id(&self, id: RegionId) -> Option<&TimeSeries> {
        self.series.get(id.index())
    }

    /// The shared [`ChunkedPrefix`] accelerator for `id`'s trace,
    /// built on first use and reused by every subsequent caller
    /// (panics on a foreign id).
    #[inline]
    pub fn chunked_prefix_by_id(&self, id: RegionId) -> &ChunkedPrefix {
        self.prefix_cache[id.index()].get_or_init(|| self.series[id.index()].chunked_prefix())
    }

    /// Fallible [`TraceSet::chunked_prefix_by_id`]: `None` for ids that
    /// do not belong to this set.
    #[inline]
    pub fn try_chunked_prefix_by_id(&self, id: RegionId) -> Option<&ChunkedPrefix> {
        let cell = self.prefix_cache.get(id.index())?;
        Some(cell.get_or_init(|| self.series[id.index()].chunked_prefix()))
    }

    /// The zone code behind `id` (panics on a foreign id).
    #[inline]
    pub fn code(&self, id: RegionId) -> &str {
        self.table.code(id)
    }

    /// Returns the region metadata for `code`.
    pub fn region(&self, code: &str) -> Result<&Region, TraceError> {
        Ok(self.table.get(self.id_of(code)?))
    }

    /// Returns the trace for `code`.
    pub fn series(&self, code: &str) -> Result<&TimeSeries, TraceError> {
        Ok(&self.series[self.id_of(code)?.index()])
    }

    /// Iterates over `(region, series)` pairs in intern order.
    pub fn iter(&self) -> impl Iterator<Item = (&Region, &TimeSeries)> + '_ {
        self.table.regions().iter().zip(self.series.iter())
    }

    /// Iterates over `(id, region, series)` triples in intern order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (RegionId, &Region, &TimeSeries)> + '_ {
        self.iter()
            .enumerate()
            .map(|(i, (r, s))| (RegionId(i as u16), r, s))
    }

    /// Returns the regions belonging to `group`.
    pub fn regions_in_group(&self, group: GeoGroup) -> Vec<&Region> {
        self.table
            .regions()
            .iter()
            .filter(|r| r.group == group)
            .collect()
    }

    /// Returns each region's mean CI over the window `[from, from+len)`.
    pub fn window_means(&self, from: Hour, len: usize) -> Result<Vec<(&Region, f64)>, TraceError> {
        self.iter()
            .map(|(region, series)| {
                let w = series.window(from, len)?;
                Ok((region, w.iter().sum::<f64>() / len as f64))
            })
            .collect()
    }

    /// Returns each region's mean CI over calendar `year`.
    pub fn annual_means(&self, year: i32) -> Vec<(&Region, f64)> {
        let start = time::year_start(year);
        let len = time::hours_in_year(year);
        self.iter()
            .map(|(region, series)| {
                let w = series
                    .window(start, len)
                    // decarb-analyze: allow(no-panic) -- every constructor synthesizes/loads full-horizon series per region
                    .expect("dataset horizon covers requested year");
                (region, w.iter().sum::<f64>() / len as f64)
            })
            .collect()
    }

    /// Returns each region's mean CI over its *whole stored range* — the
    /// fallback ranking for imported datasets that do not cover a full
    /// calendar year (see [`TraceSet::annual_means`] for the calendar
    /// version the paper's experiments use).
    pub fn stored_means(&self) -> Vec<(&Region, f64)> {
        self.iter()
            .map(|(region, series)| (region, series.mean()))
            .collect()
    }

    /// Returns the average of all regions' annual means for `year` — the
    /// paper's "global average carbon-intensity".
    pub fn global_mean(&self, year: i32) -> f64 {
        let means = self.annual_means(year);
        means.iter().map(|(_, m)| m).sum::<f64>() / means.len() as f64
    }

    /// Returns the region with the lowest annual mean in `year` (Sweden in
    /// the built-in dataset) together with that mean.
    pub fn greenest_region(&self, year: i32) -> (&Region, f64) {
        self.annual_means(year)
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // decarb-analyze: allow(no-panic) -- like `global_mean`, meaningless on an empty set; builtin sets never are
            .expect("dataset is non-empty")
    }
}

/// Repeats each sample of `series` `factor` times and rescales the
/// anchor, moving the series to an axis `factor`× finer.
fn expand_series(series: &TimeSeries, factor: usize) -> TimeSeries {
    if factor <= 1 {
        return series.clone();
    }
    let mut values = Vec::with_capacity(series.len() * factor);
    for &v in series.values() {
        values.extend(std::iter::repeat_n(v, factor));
    }
    TimeSeries::new(Hour(series.start().0 * factor as u32), values)
}

/// Returns the shared built-in dataset: all 123 regions, 2020–2023,
/// synthesized once per process and shared behind an `Arc`.
pub fn builtin_dataset() -> Arc<TraceSet> {
    static DATASET: OnceLock<Arc<TraceSet>> = OnceLock::new();
    DATASET
        .get_or_init(|| {
            Arc::new(TraceSet::synthesize(
                catalog::builtin_catalog().to_vec(),
                SynthConfig::default(),
            ))
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_all_regions() {
        let data = builtin_dataset();
        assert_eq!(data.len(), 123);
        assert!(!data.is_empty());
        for (region, series) in data.iter() {
            assert_eq!(series.len(), time::horizon_hours(), "{}", region.code);
        }
    }

    #[test]
    fn builtin_is_shared() {
        let a = builtin_dataset();
        let b = builtin_dataset();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn id_lookups_match_string_lookups() {
        let data = builtin_dataset();
        for (id, region, series) in data.iter_ids() {
            assert_eq!(data.id_of(&region.code).unwrap(), id);
            assert_eq!(data.code(id), region.code);
            assert!(std::ptr::eq(data.region_by_id(id), region));
            assert!(std::ptr::eq(data.series_by_id(id), series));
            assert!(std::ptr::eq(
                data.series(&region.code).unwrap(),
                data.series_by_id(id)
            ));
        }
        assert!(data.try_series_by_id(RegionId(9999)).is_none());
        assert!(matches!(
            data.id_of("NOPE"),
            Err(TraceError::UnknownRegion(_))
        ));
    }

    #[test]
    fn global_mean_near_paper_value() {
        let data = builtin_dataset();
        let mean = data.global_mean(2022);
        assert!(
            (mean - 368.39).abs() < 12.0,
            "global 2022 mean {mean:.2} vs paper 368.39"
        );
    }

    #[test]
    fn greenest_region_is_sweden() {
        let data = builtin_dataset();
        let (region, mean) = data.greenest_region(2022);
        assert_eq!(region.code, "SE");
        assert!((mean - 16.0).abs() < 1.0);
    }

    #[test]
    fn lookup_errors_for_unknown_codes() {
        let data = builtin_dataset();
        assert!(matches!(
            data.series("NOPE"),
            Err(TraceError::UnknownRegion(_))
        ));
        assert!(matches!(
            data.region("NOPE"),
            Err(TraceError::UnknownRegion(_))
        ));
    }

    #[test]
    fn window_means_match_annual_means() {
        let data = builtin_dataset();
        let start = time::year_start(2022);
        let len = time::hours_in_year(2022);
        let windows = data.window_means(start, len).unwrap();
        let annual = data.annual_means(2022);
        for (w, a) in windows.iter().zip(annual.iter()) {
            assert_eq!(w.0.code, a.0.code);
            assert!((w.1 - a.1).abs() < 1e-9);
        }
    }

    #[test]
    fn group_queries() {
        let data = builtin_dataset();
        let oceania = data.regions_in_group(GeoGroup::Oceania);
        assert_eq!(oceania.len(), 7);
        assert!(oceania.iter().all(|r| r.group == GeoGroup::Oceania));
    }

    #[test]
    fn duplicate_codes_error_in_try_from_series() {
        let se = catalog::region("SE").unwrap().clone();
        let pairs = vec![
            (se.clone(), TimeSeries::new(Hour(0), vec![1.0])),
            (se, TimeSeries::new(Hour(0), vec![2.0])),
        ];
        assert!(matches!(
            TraceSet::try_from_series(pairs),
            Err(TraceError::DuplicateRegion(code)) if code == "SE"
        ));
    }

    #[test]
    fn default_resolution_is_hourly() {
        let data = builtin_dataset();
        assert!(data.resolution().is_hourly());
        assert_eq!(data.resolution(), Resolution::HOURLY);
    }

    #[test]
    fn resample_expands_each_sample_into_its_slots() {
        let se = catalog::region("SE").unwrap().clone();
        let hourly =
            TraceSet::from_series(vec![(se, TimeSeries::new(Hour(2), vec![10.0, 20.0, 30.0]))]);
        let five = Resolution::from_minutes(5).unwrap();
        let fine = hourly.resample_to(five).unwrap();
        assert_eq!(fine.resolution(), five);
        let series = fine.series("SE").unwrap();
        assert_eq!(series.start(), Hour(24), "anchor rescaled to slots");
        assert_eq!(series.len(), 36);
        assert!(series.values()[..12].iter().all(|&v| v == 10.0));
        assert!(series.values()[12..24].iter().all(|&v| v == 20.0));
        assert!(series.values()[24..].iter().all(|&v| v == 30.0));
        // Signal (time-weighted mean) is unchanged.
        assert!((series.mean() - hourly.series("SE").unwrap().mean()).abs() < 1e-12);
        // Coarsening is rejected.
        assert!(matches!(
            fine.resample_to(Resolution::HOURLY),
            Err(TraceError::Resolution(_))
        ));
        // 15-minute → 5-minute works (factor 3).
        let quarter = hourly
            .resample_to(Resolution::from_minutes(15).unwrap())
            .unwrap();
        let finer = quarter.resample_to(five).unwrap();
        assert_eq!(finer.series("SE").unwrap().len(), 36);
    }

    #[test]
    fn extend_synthesized_matches_set_resolution() {
        let se = catalog::region("SE").unwrap().clone();
        let five = Resolution::from_minutes(5).unwrap();
        let mut set = TraceSet::from_series(vec![(se, TimeSeries::new(Hour(0), vec![16.0; 24]))])
            .resample_to(five)
            .unwrap();
        set.extend_synthesized(vec![Region::user("XX-NEW")], SynthConfig::default());
        let new = set.series("XX-NEW").unwrap();
        assert_eq!(new.len(), time::horizon_hours() * 12, "expanded to slots");
        // Each synthesized hour occupies 12 equal slots.
        let v = new.values();
        assert!(v[..12].iter().all(|&x| x == v[0]));
    }

    #[test]
    fn extend_synthesized_interns_only_new_regions() {
        let se = catalog::region("SE").unwrap().clone();
        let mut set = TraceSet::from_series(vec![(se, TimeSeries::new(Hour(0), vec![16.0]))]);
        let custom = Region::user("XX-NEW");
        set.extend_synthesized(
            vec![custom, catalog::region("SE").unwrap().clone()],
            SynthConfig::default(),
        );
        assert_eq!(set.len(), 2, "SE kept its imported trace");
        assert_eq!(set.series("SE").unwrap().len(), 1);
        let new = set.series("XX-NEW").unwrap();
        assert_eq!(new.len(), time::horizon_hours(), "synthesized full span");
        assert!(new.mean() > 0.0);
    }
}
