//! The `TraceSet` container: every region's trace plus lookup helpers.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::catalog;
use crate::error::TraceError;
use crate::region::{GeoGroup, Region};
use crate::series::TimeSeries;
use crate::synth::{SynthConfig, Synthesizer};
use crate::time::{self, Hour};

/// A set of carbon-intensity traces keyed by region code.
///
/// This is the dataset object every experiment consumes. The built-in set
/// ([`builtin_dataset`]) covers all 123 catalog regions over 2020–2023.
#[derive(Debug, Clone)]
pub struct TraceSet {
    regions: Vec<&'static Region>,
    series: HashMap<&'static str, TimeSeries>,
}

impl TraceSet {
    /// Builds a trace set by synthesizing every region in `regions`.
    pub fn synthesize(regions: &[&'static Region], config: SynthConfig) -> Self {
        let synth = Synthesizer::new(config);
        let mut series = HashMap::with_capacity(regions.len());
        for region in regions {
            series.insert(region.code, synth.generate(region));
        }
        Self {
            regions: regions.to_vec(),
            series,
        }
    }

    /// Builds a trace set from explicit `(region, series)` pairs.
    pub fn from_series(pairs: Vec<(&'static Region, TimeSeries)>) -> Self {
        let mut regions = Vec::with_capacity(pairs.len());
        let mut series = HashMap::with_capacity(pairs.len());
        for (region, s) in pairs {
            regions.push(region);
            series.insert(region.code, s);
        }
        Self { regions, series }
    }

    /// Returns the number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if the set holds no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Returns the regions in catalog order.
    pub fn regions(&self) -> &[&'static Region] {
        &self.regions
    }

    /// Returns the region metadata for `code`.
    pub fn region(&self, code: &str) -> Result<&'static Region, TraceError> {
        self.regions
            .iter()
            .find(|r| r.code == code)
            .copied()
            .ok_or_else(|| TraceError::UnknownRegion(code.to_string()))
    }

    /// Returns the trace for `code`.
    pub fn series(&self, code: &str) -> Result<&TimeSeries, TraceError> {
        self.series
            .get(code)
            .ok_or_else(|| TraceError::UnknownRegion(code.to_string()))
    }

    /// Iterates over `(region, series)` pairs in catalog order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static Region, &TimeSeries)> + '_ {
        self.regions.iter().map(move |r| (*r, &self.series[r.code]))
    }

    /// Returns the regions belonging to `group`.
    pub fn regions_in_group(&self, group: GeoGroup) -> Vec<&'static Region> {
        self.regions
            .iter()
            .filter(|r| r.group == group)
            .copied()
            .collect()
    }

    /// Returns each region's mean CI over the window `[from, from+len)`.
    pub fn window_means(
        &self,
        from: Hour,
        len: usize,
    ) -> Result<Vec<(&'static Region, f64)>, TraceError> {
        self.iter()
            .map(|(region, series)| {
                let w = series.window(from, len)?;
                Ok((region, w.iter().sum::<f64>() / len as f64))
            })
            .collect()
    }

    /// Returns each region's mean CI over calendar `year`.
    pub fn annual_means(&self, year: i32) -> Vec<(&'static Region, f64)> {
        let start = time::year_start(year);
        let len = time::hours_in_year(year);
        self.iter()
            .map(|(region, series)| {
                let w = series
                    .window(start, len)
                    .expect("dataset horizon covers requested year");
                (region, w.iter().sum::<f64>() / len as f64)
            })
            .collect()
    }

    /// Returns each region's mean CI over its *whole stored range* — the
    /// fallback ranking for imported datasets that do not cover a full
    /// calendar year (see [`TraceSet::annual_means`] for the calendar
    /// version the paper's experiments use).
    pub fn stored_means(&self) -> Vec<(&'static Region, f64)> {
        self.iter()
            .map(|(region, series)| (region, series.mean()))
            .collect()
    }

    /// Returns the average of all regions' annual means for `year` — the
    /// paper's "global average carbon-intensity".
    pub fn global_mean(&self, year: i32) -> f64 {
        let means = self.annual_means(year);
        means.iter().map(|(_, m)| m).sum::<f64>() / means.len() as f64
    }

    /// Returns the region with the lowest annual mean in `year` (Sweden in
    /// the built-in dataset) together with that mean.
    pub fn greenest_region(&self, year: i32) -> (&'static Region, f64) {
        self.annual_means(year)
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("dataset is non-empty")
    }
}

/// Returns the shared built-in dataset: all 123 regions, 2020–2023,
/// synthesized once per process and shared behind an `Arc`.
pub fn builtin_dataset() -> Arc<TraceSet> {
    static DATASET: OnceLock<Arc<TraceSet>> = OnceLock::new();
    DATASET
        .get_or_init(|| {
            let regions: Vec<&'static Region> = catalog::builtin_catalog().iter().collect();
            Arc::new(TraceSet::synthesize(&regions, SynthConfig::default()))
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_all_regions() {
        let data = builtin_dataset();
        assert_eq!(data.len(), 123);
        assert!(!data.is_empty());
        for (region, series) in data.iter() {
            assert_eq!(series.len(), time::horizon_hours(), "{}", region.code);
        }
    }

    #[test]
    fn builtin_is_shared() {
        let a = builtin_dataset();
        let b = builtin_dataset();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn global_mean_near_paper_value() {
        let data = builtin_dataset();
        let mean = data.global_mean(2022);
        assert!(
            (mean - 368.39).abs() < 12.0,
            "global 2022 mean {mean:.2} vs paper 368.39"
        );
    }

    #[test]
    fn greenest_region_is_sweden() {
        let data = builtin_dataset();
        let (region, mean) = data.greenest_region(2022);
        assert_eq!(region.code, "SE");
        assert!((mean - 16.0).abs() < 1.0);
    }

    #[test]
    fn lookup_errors_for_unknown_codes() {
        let data = builtin_dataset();
        assert!(matches!(
            data.series("NOPE"),
            Err(TraceError::UnknownRegion(_))
        ));
        assert!(matches!(
            data.region("NOPE"),
            Err(TraceError::UnknownRegion(_))
        ));
    }

    #[test]
    fn window_means_match_annual_means() {
        let data = builtin_dataset();
        let start = time::year_start(2022);
        let len = time::hours_in_year(2022);
        let windows = data.window_means(start, len).unwrap();
        let annual = data.annual_means(2022);
        for (w, a) in windows.iter().zip(annual.iter()) {
            assert_eq!(w.0.code, a.0.code);
            assert!((w.1 - a.1).abs() < 1e-9);
        }
    }

    #[test]
    fn group_queries() {
        let data = builtin_dataset();
        let oceania = data.regions_in_group(GeoGroup::Oceania);
        assert_eq!(oceania.len(), 7);
        assert!(oceania.iter().all(|r| r.group == GeoGroup::Oceania));
    }
}
