//! Fig. 6: latency-constrained migration and smart region-hopping
//! (§5.1.3–§5.1.4).

use decarb_core::capacity::{water_filling, IdleCapacity};
use decarb_core::latency::LatencyMatrix;
use decarb_core::spatial::lower_envelope;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::{GeoGroup, Region, GLOBAL_AVG_CI};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, pct, ExperimentTable};

/// One latency-SLO sweep point (Fig. 6(a)).
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Latency SLO in milliseconds.
    pub slo_ms: f64,
    /// Global average reduction with infinite capacity, in percent.
    pub infinite_pct: f64,
    /// Global average reduction at 50 % utilization, in percent.
    pub constrained_pct: f64,
}

/// Fig. 6(a) results.
#[derive(Debug, Clone)]
pub struct Fig6a {
    /// The latency sweep.
    pub points: Vec<LatencyPoint>,
}

/// Runs the Fig. 6(a) analysis.
pub fn run_a(ctx: &Context) -> Fig6a {
    let means = ctx.data().annual_means(EVAL_YEAR);
    let all: Vec<&Region> = ctx.regions().iter().collect();
    let matrix = LatencyMatrix::build(&all);
    let slos = [10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 250.0, 300.0];
    let points = slos
        .iter()
        .map(|&slo| {
            let feasible = |from: &Region, to: &Region| {
                matrix
                    .get(&from.code, &to.code)
                    .is_some_and(|rtt| rtt <= slo)
            };
            let infinite = water_filling(&means, IdleCapacity::Infinite, &feasible);
            let constrained = water_filling(&means, IdleCapacity::Fraction(0.5), &feasible);
            LatencyPoint {
                slo_ms: slo,
                infinite_pct: infinite.reduction_g() / GLOBAL_AVG_CI * 100.0,
                constrained_pct: constrained.reduction_g() / GLOBAL_AVG_CI * 100.0,
            }
        })
        .collect();
    Fig6a { points }
}

impl Fig6a {
    /// Renders the Fig. 6(a) table.
    pub fn table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "fig6a",
            "Fig 6(a): reduction vs latency SLO (infinite capacity / 50% utilization)",
            vec!["SLO ms".into(), "infinite cap".into(), "50% util".into()],
            self.points
                .iter()
                .map(|p| vec![f1(p.slo_ms), pct(p.infinite_pct), pct(p.constrained_pct)])
                .collect(),
        )
    }
}

/// One grouping's 1-migration vs ∞-migration comparison (Fig. 6(b)).
#[derive(Debug, Clone)]
pub struct HoppingRow {
    /// Grouping label.
    pub group: String,
    /// Average reduction from a single migration to the grouping's
    /// greenest region (g·CO2eq per job hour).
    pub one_migration_g: f64,
    /// Average reduction from clairvoyant hourly hopping within the
    /// grouping.
    pub inf_migration_g: f64,
}

impl HoppingRow {
    /// Extra benefit of ∞- over 1-migration.
    pub fn advantage_g(&self) -> f64 {
        self.inf_migration_g - self.one_migration_g
    }
}

/// Fig. 6(b) results.
#[derive(Debug, Clone)]
pub struct Fig6b {
    /// Per-grouping rows.
    pub rows: Vec<HoppingRow>,
    /// The largest per-grouping advantage of ∞-migration (the paper bounds
    /// this below 10 g).
    pub max_advantage_g: f64,
}

/// Runs the Fig. 6(b) analysis: migrations restricted to each geographical
/// grouping, as in §5.1.4.
pub fn run_b(ctx: &Context) -> Fig6b {
    let start = year_start(EVAL_YEAR);
    let len = hours_in_year(EVAL_YEAR);
    let means = ctx.data().annual_means(EVAL_YEAR);
    let mean_of = |code: &str| {
        means
            .iter()
            .find(|(r, _)| r.code == code)
            .map(|(_, m)| *m)
            .expect("region in means")
    };
    let mut rows = Vec::new();
    for group in GeoGroup::ALL {
        let members = ctx.data().regions_in_group(group);
        if members.is_empty() {
            continue;
        }
        let greenest = members
            .iter()
            .min_by(|a, b| mean_of(&a.code).total_cmp(&mean_of(&b.code)))
            .expect("non-empty group");
        let envelope = lower_envelope(ctx.data(), &members, start, len);
        let envelope_mean = envelope.mean();
        let dest_mean = mean_of(&greenest.code);
        // Average over origins in the grouping: baseline is the origin's
        // annual mean; both policies run year-round jobs.
        let origin_mean: f64 =
            members.iter().map(|r| mean_of(&r.code)).sum::<f64>() / members.len() as f64;
        rows.push(HoppingRow {
            group: group.label().into(),
            one_migration_g: origin_mean - dest_mean,
            inf_migration_g: origin_mean - envelope_mean,
        });
    }
    let max_advantage_g = rows
        .iter()
        .map(HoppingRow::advantage_g)
        .fold(0.0f64, f64::max);
    Fig6b {
        rows,
        max_advantage_g,
    }
}

impl Fig6b {
    /// Renders the Fig. 6(b) table.
    pub fn table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "fig6b",
            format!(
                "Fig 6(b): 1-migration vs inf-migration within groupings (max advantage {} g)",
                f1(self.max_advantage_g)
            ),
            vec![
                "grouping".into(),
                "1-migration g".into(),
                "inf-migration g".into(),
                "advantage g".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.group.clone(),
                        f1(r.one_migration_g),
                        f1(r.inf_migration_g),
                        f1(r.advantage_g()),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_monotone_and_saturating() {
        let ctx = Context::default();
        let fig = run_a(&ctx);
        for pair in fig.points.windows(2) {
            assert!(pair[1].infinite_pct >= pair[0].infinite_pct - 1e-9);
            assert!(pair[1].constrained_pct >= pair[0].constrained_pct - 1e-9);
        }
        let last = fig.points.last().unwrap();
        // §5.1.3: ≥ 250 ms reaches everywhere — ≈ 92.5 % (infinite) and
        // ≈ 45.7 % (50 % util). Our 300 ms point should be close to the
        // unconstrained Fig. 5 values.
        assert!(last.infinite_pct > 80.0, "{}", last.infinite_pct);
        assert!(
            (35.0..65.0).contains(&last.constrained_pct),
            "{}",
            last.constrained_pct
        );
        // Tight SLOs keep most jobs local.
        let first = &fig.points[0];
        assert!(first.infinite_pct < last.infinite_pct / 2.0);
        // The capacity constraint always costs reduction.
        for p in &fig.points {
            assert!(p.constrained_pct <= p.infinite_pct + 1e-9);
        }
    }

    #[test]
    fn hopping_advantage_is_small() {
        let ctx = Context::default();
        let fig = run_b(&ctx);
        assert_eq!(fig.rows.len(), 6);
        // §5.1.4: even clairvoyant hopping adds < 10 g over one migration.
        assert!(
            fig.max_advantage_g < 10.0,
            "max advantage {}",
            fig.max_advantage_g
        );
        for row in &fig.rows {
            assert!(
                row.inf_migration_g >= row.one_migration_g - 1e-9,
                "{} hopping can't lose",
                row.group
            );
            // Within-group 1-migration reductions are non-negative.
            assert!(row.one_migration_g >= -1e-9, "{}", row.group);
        }
    }

    #[test]
    fn tables_render() {
        let ctx = Context::default();
        assert!(format!("{}", run_a(&ctx).table()).contains("SLO"));
        assert!(format!("{}", run_b(&ctx).table()).contains("advantage"));
    }
}
