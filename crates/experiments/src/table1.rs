//! Table 1: workload characteristics, flexibility dimensions, and
//! configurations.

use decarb_workloads::{JobLengthDistribution, Slack, JOB_LENGTHS_HOURS};

use crate::table::ExperimentTable;

/// Renders Table 1.
pub fn run() -> ExperimentTable {
    let lengths = JOB_LENGTHS_HOURS
        .iter()
        .map(|l| format!("{l}"))
        .collect::<Vec<_>>()
        .join(", ");
    let slacks = Slack::FIXED
        .iter()
        .map(|s| s.label().to_string())
        .chain(std::iter::once("10x".to_string()))
        .collect::<Vec<_>>()
        .join(", ");
    let dists = JobLengthDistribution::ALL
        .iter()
        .map(|d| d.label().to_string())
        .collect::<Vec<_>>()
        .join(", ");
    ExperimentTable::new(
        "table1",
        "Table 1: workload characteristics and flexibility dimensions",
        vec!["dimension".into(), "range / description".into()],
        vec![
            vec!["Type".into(), "Batch, interactive".into()],
            vec!["Length (hour)".into(), lengths],
            vec!["Deferrability".into(), slacks],
            vec!["Interruptibility".into(), "Zero overhead".into()],
            vec!["Spatial migration".into(), "Zero overhead".into()],
            vec![
                "Job arrival time".into(),
                "Every hour of the year (8760 starts)".into(),
            ],
            vec!["Job origin".into(), "123 catalog regions".into()],
            vec![
                "Resource usage".into(),
                "Energy-optimized 1 kW at 100% usage".into(),
            ],
            vec!["Length distributions".into(), dists],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_dimensions() {
        let t = run();
        assert_eq!(t.rows.len(), 9);
        let body = format!("{t}");
        for needle in ["Batch", "0.01", "168", "24H", "1Y", "8760", "123"] {
            assert!(body.contains(needle), "missing {needle}");
        }
    }
}
