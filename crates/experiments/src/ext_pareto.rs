//! Extension: the performance price of carbon savings.
//!
//! Two trade-off curves the paper gestures at but does not draw:
//!
//! 1. **Carbon–delay frontier** (§5.2 / ref. [21]) — the mean cost and
//!    the *realized* delay of the optimal deferring schedule as the slack
//!    budget grows, averaged over the five sample regions;
//! 2. **Online latency routing** (§5.1.3 made online) — the simulator's
//!    [`decarb_sim::LatencyAwareRouter`] routing an interactive-job
//!    stream from every deployed origin under a sweep of RTT SLOs, the
//!    discrete-event counterpart of Fig. 6(a).

use decarb_core::pareto::{carbon_delay_frontier, FrontierPoint};
use decarb_sim::{LatencyAwareRouter, SimConfig, Simulator};
use decarb_traces::time::{hours_in_year, year_start};
use decarb_workloads::{Job, Slack};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, f2, pct, ExperimentTable};

const SAMPLE_REGIONS: [&str; 5] = ["US-CA", "DE", "GB", "SE", "IN-WE"];

/// One SLO point of the online routing sweep.
#[derive(Debug, Clone)]
pub struct SloPoint {
    /// RTT budget, ms.
    pub slo_ms: f64,
    /// Mean CI of delivered energy, g/kWh.
    pub avg_ci: f64,
    /// Reduction vs the 0 ms (stay-home) run, percent.
    pub reduction_pct: f64,
    /// Fraction of jobs that left their origin.
    pub moved_frac: f64,
}

/// Extension results.
#[derive(Debug, Clone)]
pub struct ExtPareto {
    /// Slack → (cost, delay) frontier averaged over the sample regions.
    pub frontier: Vec<FrontierPoint>,
    /// SLO → emissions sweep from the online router.
    pub routing: Vec<SloPoint>,
}

/// Runs the trade-off extension.
pub fn run(ctx: &Context) -> ExtPareto {
    // --- Frontier: 6-hour job, slacks from none to one week.
    let slacks = [0usize, 6, 12, 24, 48, 96, 168];
    let start = year_start(EVAL_YEAR);
    let count = hours_in_year(EVAL_YEAR) - 6 - 168;
    let mut acc: Vec<FrontierPoint> = slacks
        .iter()
        .map(|&s| FrontierPoint {
            slack: s,
            mean_cost_g: 0.0,
            mean_delay_h: 0.0,
            mean_slowdown: 0.0,
        })
        .collect();
    for code in SAMPLE_REGIONS {
        let series = ctx.data().series(code).expect("sample region trace");
        let points = carbon_delay_frontier(series, start, count, 6, &slacks, 131);
        for (a, p) in acc.iter_mut().zip(points) {
            a.mean_cost_g += p.mean_cost_g / SAMPLE_REGIONS.len() as f64;
            a.mean_delay_h += p.mean_delay_h / SAMPLE_REGIONS.len() as f64;
            a.mean_slowdown += p.mean_slowdown / SAMPLE_REGIONS.len() as f64;
        }
    }

    // --- Online routing: hourly 1-hour migratable jobs from every
    // deployed hyperscaler origin for a month.
    let deployed: Vec<decarb_traces::RegionId> = ctx
        .data()
        .iter_ids()
        .filter(|(_, r, _)| r.providers.has_hyperscaler())
        .map(|(id, _, _)| id)
        .collect();
    let jobs: Vec<Job> = deployed
        .iter()
        .enumerate()
        .flat_map(|(i, &r)| {
            (0..30usize).map(move |day| {
                Job::batch(
                    (i * 1000 + day) as u64 + 1,
                    r,
                    start.plus(day * 24 + (i % 24)),
                    1.0,
                    Slack::None,
                )
            })
        })
        .collect();
    let mut routing = Vec::new();
    let mut base_ci = 0.0;
    for &slo in &[0.0f64, 30.0, 60.0, 100.0, 250.0] {
        let mut sim = Simulator::new(ctx.data(), &deployed, SimConfig::new(start, 31 * 24, 1024));
        let mut router = LatencyAwareRouter::new(ctx.data(), &deployed, slo);
        let report = sim.run(&mut router, &jobs);
        assert_eq!(report.completed_count(), jobs.len(), "all requests served");
        let avg_ci = report.average_ci();
        if slo == 0.0 {
            base_ci = avg_ci;
        }
        let moved = report
            .completed
            .iter()
            .filter(|c| c.region != c.job.origin)
            .count();
        routing.push(SloPoint {
            slo_ms: slo,
            avg_ci,
            reduction_pct: (base_ci - avg_ci) / base_ci * 100.0,
            moved_frac: moved as f64 / jobs.len() as f64,
        });
    }

    ExtPareto {
        frontier: acc,
        routing,
    }
}

impl ExtPareto {
    /// Renders the frontier and routing tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let frontier = ExperimentTable::new(
            "ext-pareto-frontier",
            "Ext: carbon-delay frontier of a 6h deferrable job (5-region mean)",
            vec![
                "slack h".into(),
                "cost g".into(),
                "delay h".into(),
                "slowdown".into(),
            ],
            self.frontier
                .iter()
                .map(|p| {
                    vec![
                        p.slack.to_string(),
                        f1(p.mean_cost_g),
                        f1(p.mean_delay_h),
                        f2(p.mean_slowdown),
                    ]
                })
                .collect(),
        );
        let routing = ExperimentTable::new(
            "ext-pareto-routing",
            "Ext: online latency-SLO routing (hyperscaler regions, 1h requests)",
            vec![
                "SLO ms".into(),
                "avg CI g/kWh".into(),
                "reduction".into(),
                "moved".into(),
            ],
            self.routing
                .iter()
                .map(|p| {
                    vec![
                        f1(p.slo_ms),
                        f1(p.avg_ci),
                        pct(p.reduction_pct),
                        pct(p.moved_frac * 100.0),
                    ]
                })
                .collect(),
        );
        vec![frontier, routing]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn ext() -> &'static ExtPareto {
        static EXT: OnceLock<ExtPareto> = OnceLock::new();
        EXT.get_or_init(|| run(shared()))
    }

    #[test]
    fn frontier_trades_delay_for_carbon() {
        let f = &ext().frontier;
        assert_eq!(f.len(), 7);
        for pair in f.windows(2) {
            assert!(pair[1].mean_cost_g <= pair[0].mean_cost_g + 1e-9);
            assert!(pair[1].mean_delay_h >= pair[0].mean_delay_h - 2.0);
        }
        assert_eq!(f[0].mean_delay_h, 0.0);
        assert!(f.last().unwrap().mean_cost_g < f[0].mean_cost_g);
    }

    #[test]
    fn schedules_spend_only_part_of_their_budget() {
        // Diurnal valleys repeat: even a week of slack is mostly unused.
        let week = ext().frontier.last().unwrap();
        assert_eq!(week.slack, 168);
        assert!(
            week.mean_delay_h < 100.0,
            "mean delay {} should sit well below the 168h budget",
            week.mean_delay_h
        );
    }

    #[test]
    fn routing_reduction_grows_with_slo() {
        let r = &ext().routing;
        assert_eq!(r[0].reduction_pct, 0.0);
        assert_eq!(r[0].moved_frac, 0.0, "0ms SLO keeps everything home");
        for pair in r.windows(2) {
            assert!(pair[1].reduction_pct >= pair[0].reduction_pct - 1e-9);
            assert!(pair[1].moved_frac >= pair[0].moved_frac - 1e-9);
        }
        let wide = r.last().unwrap();
        assert!(
            wide.reduction_pct > 30.0,
            "250ms unlocks most of spatial shifting"
        );
        assert!(wide.moved_frac > 0.5);
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 2);
        assert!(format!("{}", tables[0]).contains("slowdown"));
        assert!(format!("{}", tables[1]).contains("SLO"));
    }
}
