//! Figs. 7, 8 and 9: deferral and interruptibility bounds by job length
//! (§5.2.1–§5.2.3).
//!
//! All three figures are views of the same sweep: per-region, per-length
//! average costs under baseline / deferred / deferred+interruptible
//! policies, for the ideal one-year slack and the practical 24-hour slack.
//! The context memoizes sweeps, so running all three figures costs one
//! pass.

use decarb_traces::GLOBAL_AVG_CI;

use crate::context::Context;
use crate::table::{f1, pct, ExperimentTable};

/// Job lengths analyzed by the temporal figures (whole-hour grid; the
/// 36-second interactive bucket has no temporal flexibility).
pub const TEMPORAL_LENGTHS: [usize; 7] = [1, 6, 12, 24, 48, 96, 168];

/// Slack settings compared throughout: (label, hours).
pub const SLACKS: [(&str, usize); 2] = [("1Y", 365 * 24), ("24H", 24)];

/// One `(length, slack)` cell of the temporal analysis.
#[derive(Debug, Clone, Copy)]
pub struct LengthRow {
    /// Job length in hours.
    pub length: usize,
    /// Slack in hours.
    pub slack: usize,
    /// Global mean deferral saving per job hour (Fig. 7's y-axis).
    pub deferral_g: f64,
    /// Global mean *extra* interruptibility saving per job hour (Fig. 8).
    pub interrupt_extra_g: f64,
    /// Global mean total saving per job hour (Fig. 9 = 7 + 8).
    pub total_g: f64,
}

/// Results for Figs. 7–9.
#[derive(Debug, Clone)]
pub struct TemporalFigures {
    /// One row per `(length, slack)` combination.
    pub rows: Vec<LengthRow>,
}

impl TemporalFigures {
    /// Returns the rows for one slack setting, ordered by length.
    pub fn for_slack(&self, slack: usize) -> Vec<&LengthRow> {
        self.rows.iter().filter(|r| r.slack == slack).collect()
    }
}

/// Runs the shared sweep behind Figs. 7–9.
pub fn run(ctx: &Context) -> TemporalFigures {
    let mut rows = Vec::new();
    for (_, slack) in SLACKS {
        for length in TEMPORAL_LENGTHS {
            let stats = ctx.temporal_stats(length, slack);
            let deferral = Context::global_mean_of(&stats, |s| s.deferral_saving());
            let extra = Context::global_mean_of(&stats, |s| s.interrupt_extra_saving());
            rows.push(LengthRow {
                length,
                slack,
                deferral_g: deferral,
                interrupt_extra_g: extra,
                total_g: deferral + extra,
            });
        }
    }
    TemporalFigures { rows }
}

fn render(
    id: &str,
    title: &str,
    figures: &TemporalFigures,
    value: impl Fn(&LengthRow) -> f64,
) -> ExperimentTable {
    let by_slack: Vec<Vec<&LengthRow>> = SLACKS
        .iter()
        .map(|&(_, slack)| figures.for_slack(slack))
        .collect();
    let mut rows = Vec::new();
    for length in TEMPORAL_LENGTHS {
        let mut cells = vec![format!("{length}h")];
        for column in &by_slack {
            let row = column
                .iter()
                .find(|r| r.length == length)
                .expect("all combinations computed");
            let v = value(row);
            cells.push(f1(v));
            cells.push(pct(v / GLOBAL_AVG_CI * 100.0));
        }
        rows.push(cells);
    }
    ExperimentTable::new(
        id,
        title,
        vec![
            "job length".into(),
            "1Y slack g/h".into(),
            "1Y rel".into(),
            "24H slack g/h".into(),
            "24H rel".into(),
        ],
        rows,
    )
}

impl TemporalFigures {
    /// Renders Fig. 7 (deferral savings per job hour).
    pub fn fig7_table(&self) -> ExperimentTable {
        render(
            "fig7",
            "Fig 7: carbon reduction from deferrability, per job hour",
            self,
            |r| r.deferral_g,
        )
    }

    /// Renders Fig. 8 (extra interruptibility savings per job hour).
    pub fn fig8_table(&self) -> ExperimentTable {
        render(
            "fig8",
            "Fig 8: additional reduction from interruptibility, per job hour",
            self,
            |r| r.interrupt_extra_g,
        )
    }

    /// Renders Fig. 9 (combined savings per job hour).
    pub fn fig9_table(&self) -> ExperimentTable {
        render(
            "fig9",
            "Fig 9: combined deferral + interruptibility reduction, per job hour",
            self,
            |r| r.total_g,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn figures() -> &'static TemporalFigures {
        static FIGS: OnceLock<TemporalFigures> = OnceLock::new();
        FIGS.get_or_init(|| run(shared()))
    }

    #[test]
    fn fig7_deferral_decreases_with_length_ideal() {
        let fig = figures();
        let ideal = fig.for_slack(365 * 24);
        // §5.2.1: per-unit reductions fall from ≈ 154 g (1 h) to ≈ 70 g
        // (168 h) with one-year slack.
        let one_h = ideal.first().unwrap();
        let week = ideal.last().unwrap();
        assert!(
            (90.0..220.0).contains(&one_h.deferral_g),
            "1h ideal {}",
            one_h.deferral_g
        );
        assert!(week.deferral_g < one_h.deferral_g, "must decrease");
        assert!(
            week.deferral_g / one_h.deferral_g < 0.75,
            "168h/1h ratio {:.2}",
            week.deferral_g / one_h.deferral_g
        );
        for pair in ideal.windows(2) {
            assert!(
                pair[1].deferral_g <= pair[0].deferral_g + 1e-9,
                "monotone decreasing in length"
            );
        }
    }

    #[test]
    fn fig7_practical_slack_much_smaller() {
        let fig = figures();
        let practical = fig.for_slack(24);
        // §5.2.1: 24 h slack yields ≈ 57 g (1 h) falling to ≈ 3 g (168 h).
        let one_h = practical.first().unwrap();
        let week = practical.last().unwrap();
        assert!(
            (20.0..90.0).contains(&one_h.deferral_g),
            "1h practical {}",
            one_h.deferral_g
        );
        assert!(week.deferral_g < 15.0, "168h practical {}", week.deferral_g);
        // The ideal/practical gap is the paper's headline.
        let ideal_one_h = fig.for_slack(365 * 24)[0].deferral_g;
        assert!(ideal_one_h > 1.8 * one_h.deferral_g);
    }

    #[test]
    fn fig8_interruptibility_grows_with_length_ideal() {
        let fig = figures();
        let ideal = fig.for_slack(365 * 24);
        // §5.2.2: 0 g for a 1 h job, growing with length (to ≈ 43 g).
        assert!(ideal[0].interrupt_extra_g < 1e-9, "1h job can't interrupt");
        let week = ideal.last().unwrap();
        assert!(
            week.interrupt_extra_g > 5.0,
            "168h extra {}",
            week.interrupt_extra_g
        );
        assert!(
            week.interrupt_extra_g > ideal[1].interrupt_extra_g,
            "longer jobs gain more"
        );
    }

    #[test]
    fn fig8_practical_peaks_near_24h_jobs() {
        let fig = figures();
        let practical = fig.for_slack(24);
        // §5.2.2: with 24 h slack the extra saving peaks around 24 h jobs
        // (≈ 18 g) and declines for longer jobs.
        let peak = practical
            .iter()
            .max_by(|a, b| a.interrupt_extra_g.total_cmp(&b.interrupt_extra_g))
            .unwrap();
        assert!((6..=48).contains(&peak.length), "peak at {}h", peak.length);
        let week = practical.last().unwrap();
        assert!(week.interrupt_extra_g < peak.interrupt_extra_g);
    }

    #[test]
    fn fig9_total_is_sum_and_long_jobs_gain_little_practically() {
        let fig = figures();
        for row in &fig.rows {
            assert!((row.total_g - (row.deferral_g + row.interrupt_extra_g)).abs() < 1e-9);
        }
        // §5.2.3: a 168 h job with 24 h slack saves only ≈ 3 %.
        let week_practical = fig
            .rows
            .iter()
            .find(|r| r.length == 168 && r.slack == 24)
            .unwrap();
        let rel = week_practical.total_g / GLOBAL_AVG_CI * 100.0;
        assert!(rel < 10.0, "168h practical total {rel:.1}%");
        // §5.2.3: with one-year slack interruptibility lifts a 168 h job's
        // total meaningfully above deferral alone.
        let week_ideal = fig
            .rows
            .iter()
            .find(|r| r.length == 168 && r.slack == 365 * 24)
            .unwrap();
        assert!(week_ideal.total_g > week_ideal.deferral_g * 1.05);
    }

    #[test]
    fn tables_render() {
        let fig = figures();
        for t in [fig.fig7_table(), fig.fig8_table(), fig.fig9_table()] {
            let s = format!("{t}");
            assert!(s.contains("168h"));
            assert!(s.contains("1Y slack"));
        }
    }
}
