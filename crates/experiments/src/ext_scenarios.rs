//! Extension: the scenario matrix condensed into the paper's headline
//! finding — carbon-aware savings are small and workload-dependent.
//!
//! Runs the built-in 54-entry scenario matrix (workload class × policy ×
//! region set) through the discrete-event simulator and reports, per
//! workload × geography cell, how much each carbon-aware policy saves
//! over the carbon-agnostic baseline. The paper's narrative emerges
//! directly: inflexible interactive work saves exactly nothing, temporal
//! policies on batch work save single-digit percents — with the
//! forecast-driven variant trailing the clairvoyant bound — and only
//! spatial routing (greenest, and the SLO-constrained spatiotemporal
//! combination) shows large numbers — which §5 then erodes with
//! capacity and latency limits.

use decarb_sim::scenario::{builtin_scenarios, ScenarioReport};
use decarb_sim::sweep::SweepPlan;

use crate::context::Context;
use crate::table::{f1, pct, ExperimentTable};

/// One workload × region-set cell of the savings table.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// Workload class label.
    pub workload: &'static str,
    /// Region-set label.
    pub regions: String,
    /// Jobs submitted in the cell's scenarios.
    pub jobs: usize,
    /// Carbon-agnostic average CI, g/kWh.
    pub baseline_ci: f64,
    /// Clairvoyant-deferral saving over the baseline, percent.
    pub deferral_saving_pct: f64,
    /// Threshold suspend/resume saving, percent.
    pub threshold_saving_pct: f64,
    /// Greenest-router saving, percent.
    pub greenest_saving_pct: f64,
    /// Forecast-driven deferral saving, percent.
    pub forecast_saving_pct: f64,
    /// SLO-constrained spatiotemporal saving, percent.
    pub spatiotemporal_saving_pct: f64,
}

/// Extension results: the condensed savings table.
#[derive(Debug, Clone)]
pub struct ExtScenarios {
    /// One row per workload × region set, workload-major.
    pub cells: Vec<ScenarioCell>,
}

fn find<'a>(
    reports: &'a [ScenarioReport],
    workload: &str,
    policy: &str,
    regions: &str,
) -> &'a ScenarioReport {
    reports
        .iter()
        .find(|r| r.workload == workload && r.policy == policy && r.regions == regions)
        .expect("built-in matrix covers the full product")
}

/// Runs the matrix through the sweep pipeline (plan → execute as one
/// shard) and condenses it into per-cell savings.
pub fn run(ctx: &Context) -> ExtScenarios {
    let plan = SweepPlan::plan(ctx.data(), builtin_scenarios())
        .expect("the built-in matrix validates against the built-in dataset");
    let reports = plan.execute(ctx.data());
    let mut cells = Vec::new();
    for workload in ["batch", "interactive", "mixed"] {
        for regions in ["europe", "us", "global"] {
            let base = find(&reports, workload, "agnostic", regions);
            let saving = |policy: &str| {
                let ci = find(&reports, workload, policy, regions).average_ci;
                (base.average_ci - ci) / base.average_ci * 100.0
            };
            cells.push(ScenarioCell {
                workload: base.workload,
                regions: base.regions.clone(),
                jobs: base.jobs,
                baseline_ci: base.average_ci,
                deferral_saving_pct: saving("deferral"),
                threshold_saving_pct: saving("threshold"),
                greenest_saving_pct: saving("greenest"),
                forecast_saving_pct: saving("forecast"),
                spatiotemporal_saving_pct: saving("spatiotemporal"),
            });
        }
    }
    ExtScenarios { cells }
}

impl ExtScenarios {
    /// Renders the savings table.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        vec![ExperimentTable::new(
            "ext-scenarios",
            "Ext: scenario matrix — savings over carbon-agnostic are small and workload-dependent",
            vec![
                "workload".into(),
                "regions".into(),
                "jobs".into(),
                "baseline g/kWh".into(),
                "deferral".into(),
                "threshold".into(),
                "greenest".into(),
                "forecast".into(),
                "spatiotemp".into(),
            ],
            self.cells
                .iter()
                .map(|c| {
                    vec![
                        c.workload.to_string(),
                        c.regions.clone(),
                        c.jobs.to_string(),
                        f1(c.baseline_ci),
                        pct(c.deferral_saving_pct),
                        pct(c.threshold_saving_pct),
                        pct(c.greenest_saving_pct),
                        pct(c.forecast_saving_pct),
                        pct(c.spatiotemporal_saving_pct),
                    ]
                })
                .collect(),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn ext() -> &'static ExtScenarios {
        static EXT: OnceLock<ExtScenarios> = OnceLock::new();
        EXT.get_or_init(|| run(shared()))
    }

    fn cell<'a>(workload: &str, regions: &str) -> &'a ScenarioCell {
        ext()
            .cells
            .iter()
            .find(|c| c.workload == workload && c.regions == regions)
            .expect("cell present")
    }

    #[test]
    fn covers_every_workload_geography_cell() {
        assert_eq!(ext().cells.len(), 9);
        for c in &ext().cells {
            assert!(c.jobs > 0);
            assert!(c.baseline_ci > 0.0, "{}/{}", c.workload, c.regions);
        }
    }

    #[test]
    fn interactive_work_saves_exactly_nothing() {
        // No slack, no interruptibility, no migratability: every policy
        // collapses to the baseline — the paper's workload-dependence
        // point at its sharpest.
        for regions in ["europe", "us", "global"] {
            let c = cell("interactive", regions);
            assert!(c.deferral_saving_pct.abs() < 1e-9, "{regions}");
            assert!(c.threshold_saving_pct.abs() < 1e-9, "{regions}");
            assert!(c.greenest_saving_pct.abs() < 1e-9, "{regions}");
            assert!(c.forecast_saving_pct.abs() < 1e-9, "{regions}");
            assert!(c.spatiotemporal_saving_pct.abs() < 1e-9, "{regions}");
        }
    }

    #[test]
    fn temporal_savings_on_batch_work_are_small() {
        for regions in ["europe", "us", "global"] {
            let c = cell("batch", regions);
            assert!(
                c.deferral_saving_pct >= 0.0,
                "{regions}: deferral cannot hurt"
            );
            assert!(
                c.deferral_saving_pct < 40.0,
                "{regions}: deferral saving {:.1}% should be modest",
                c.deferral_saving_pct
            );
            // The forecast-driven variant cannot beat clairvoyance.
            assert!(
                c.forecast_saving_pct <= c.deferral_saving_pct + 1e-9,
                "{regions}: forecast {:.2}% above clairvoyant {:.2}%",
                c.forecast_saving_pct,
                c.deferral_saving_pct
            );
        }
    }

    #[test]
    fn unconstrained_spatial_routing_dominates_temporal() {
        // With free migration the greenest router beats deferral — the
        // large number the paper then erodes with capacity/latency.
        let c = cell("batch", "europe");
        assert!(c.greenest_saving_pct > c.deferral_saving_pct);
        assert!(c.greenest_saving_pct > 50.0);
    }

    #[test]
    fn slo_constrained_spatiotemporal_still_captures_spatial_savings() {
        // Within Europe the 120 ms SLO admits Sweden from everywhere, so
        // the combined policy lands near the unconstrained router; on
        // the global set the SLO excludes far hops, eroding the saving —
        // the §5 latency point.
        let europe = cell("batch", "europe");
        assert!(
            europe.spatiotemporal_saving_pct > 50.0,
            "{:.1}%",
            europe.spatiotemporal_saving_pct
        );
        let global = cell("batch", "global");
        assert!(global.spatiotemporal_saving_pct >= 0.0);
        assert!(
            global.spatiotemporal_saving_pct < europe.spatiotemporal_saving_pct,
            "global {:.1}% vs europe {:.1}%",
            global.spatiotemporal_saving_pct,
            europe.spatiotemporal_saving_pct
        );
    }

    #[test]
    fn mixed_work_still_captures_spatial_savings_from_its_batch_half() {
        // The pinned interactive half draws negligible energy (0.01 kWh
        // per request), so the energy-weighted CI saving tracks the
        // migratable batch half: positive under routing, modest under
        // deferral.
        for regions in ["europe", "us", "global"] {
            let mixed = cell("mixed", regions);
            assert!(
                mixed.greenest_saving_pct > 0.0,
                "{regions}: batch half must migrate"
            );
            assert!(mixed.deferral_saving_pct >= 0.0, "{regions}");
            assert!(mixed.deferral_saving_pct < 40.0, "{regions}");
        }
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 1);
        let text = format!("{}", tables[0]);
        assert!(text.contains("interactive"));
        assert!(text.contains("greenest"));
        assert!(text.contains("spatiotemp"));
    }
}
