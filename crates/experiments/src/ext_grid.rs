//! Extension: the grid's side of the story (the paper's future work).
//!
//! §2.1 notes that the paper analyzes *average* carbon-intensity because
//! the GHG protocol reports it, while the *marginal* intensity is the
//! consequential signal; the conclusion argues clouds may serve the grid
//! best as flexible load that absorbs intermittent renewables. Both claims
//! are quantified here on the merit-order dispatch substrate:
//!
//! 1. **Signal comparison** — one deferrable job scheduled by average vs
//!    marginal CI on two grids: an "aligned" grid (gas always on the
//!    margin) where the signals agree, and a "curtailment" grid (must-run
//!    coal + night wind surplus) where average-CI scheduling pays a heavy
//!    penalty;
//! 2. **Flexible load** — a datacenter's daily energy placed flat,
//!    by-average-CI, and by consequential greedy, reporting true added
//!    system emissions and absorbed curtailment.

use decarb_core::flexload::{allocate_by_average_ci, allocate_flexible, flat_allocation};
use decarb_core::signals::compare_signals;
use decarb_traces::grid::{aligned_grid, curtailment_grid, two_level_demand};
use decarb_traces::Hour;

use crate::table::{f1, ExperimentTable};

/// Diurnal demand for the aligned grid.
fn diurnal_demand(hour: Hour) -> f64 {
    600.0
        + 300.0
            * (std::f64::consts::TAU * (hour.hour_of_day() as f64 - 9.0) / 24.0)
                .sin()
                .max(-0.6)
}

/// One grid's signal-comparison row.
#[derive(Debug, Clone)]
pub struct SignalRow {
    /// Grid label.
    pub grid: &'static str,
    /// True added emissions of the average-CI choice, kg.
    pub average_kg: f64,
    /// True added emissions of the marginal-CI choice, kg.
    pub marginal_kg: f64,
    /// Consequential optimum, kg.
    pub optimal_kg: f64,
}

/// One flexible-load policy row.
#[derive(Debug, Clone)]
pub struct FlexRow {
    /// Placement policy.
    pub policy: &'static str,
    /// True added system emissions, kg.
    pub added_kg: f64,
    /// Curtailed renewable energy absorbed, MWh.
    pub absorbed_mwh: f64,
}

/// Extension results.
#[derive(Debug, Clone)]
pub struct ExtGrid {
    /// Average- vs marginal-signal comparison per grid.
    pub signals: Vec<SignalRow>,
    /// Flexible-load placement comparison on the curtailment grid.
    pub flex: Vec<FlexRow>,
}

/// Runs the grid extension (self-contained; the shared dataset is not
/// needed because this experiment derives everything from fleets).
pub fn run() -> ExtGrid {
    // --- Signal comparison: a 100 MW, 4-hour job with 30 h of slack.
    let mut signals = Vec::new();
    let aligned = compare_signals(&aligned_grid(), diurnal_demand, Hour(0), 48, 4, 30, 100.0);
    signals.push(SignalRow {
        grid: "aligned (gas margin)",
        average_kg: aligned.average_added_kg,
        marginal_kg: aligned.marginal_added_kg,
        optimal_kg: aligned.optimal_added_kg,
    });
    let curtailed = compare_signals(
        &curtailment_grid(),
        two_level_demand,
        Hour(0),
        48,
        4,
        30,
        100.0,
    );
    signals.push(SignalRow {
        grid: "curtailment (wind surplus)",
        average_kg: curtailed.average_added_kg,
        marginal_kg: curtailed.marginal_added_kg,
        optimal_kg: curtailed.optimal_added_kg,
    });

    // --- Flexible load: 1.2 GWh across a day, 100 MW cap.
    let fleet = curtailment_grid();
    let (start, hours, energy, cap) = (Hour(0), 24usize, 1200.0, 100.0);
    let flat = flat_allocation(&fleet, two_level_demand, start, hours, energy);
    let by_avg = allocate_by_average_ci(&fleet, two_level_demand, start, hours, energy, cap);
    let flexible = allocate_flexible(&fleet, two_level_demand, start, hours, energy, cap, 25.0);
    let flex = vec![
        FlexRow {
            policy: "flat (carbon-agnostic)",
            added_kg: flat.added_kg,
            absorbed_mwh: flat.absorbed_curtailment_mwh,
        },
        FlexRow {
            policy: "average-CI greedy",
            added_kg: by_avg.added_kg,
            absorbed_mwh: by_avg.absorbed_curtailment_mwh,
        },
        FlexRow {
            policy: "consequential greedy",
            added_kg: flexible.added_kg,
            absorbed_mwh: flexible.absorbed_curtailment_mwh,
        },
    ];

    ExtGrid { signals, flex }
}

impl ExtGrid {
    /// Renders the two extension tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let signals = ExperimentTable::new(
            "ext-grid-signals",
            "Ext: added system emissions of a 100MW 4h job by scheduling signal (kg)",
            vec![
                "grid".into(),
                "by average CI".into(),
                "by marginal CI".into(),
                "optimal".into(),
            ],
            self.signals
                .iter()
                .map(|r| {
                    vec![
                        r.grid.to_string(),
                        f1(r.average_kg),
                        f1(r.marginal_kg),
                        f1(r.optimal_kg),
                    ]
                })
                .collect(),
        );
        let flex = ExperimentTable::new(
            "ext-grid-flex",
            "Ext: datacenter as flexible load (1.2 GWh/day on the curtailment grid)",
            vec![
                "policy".into(),
                "added kg".into(),
                "absorbed curtailment MWh".into(),
            ],
            self.flex
                .iter()
                .map(|r| vec![r.policy.to_string(), f1(r.added_kg), f1(r.absorbed_mwh)])
                .collect(),
        );
        vec![signals, flex]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn ext() -> &'static ExtGrid {
        static EXT: OnceLock<ExtGrid> = OnceLock::new();
        EXT.get_or_init(run)
    }

    #[test]
    fn signals_agree_on_aligned_and_diverge_under_curtailment() {
        let e = ext();
        let aligned = &e.signals[0];
        let curtailed = &e.signals[1];
        assert!((aligned.average_kg - aligned.marginal_kg).abs() < 1e-6);
        assert!(
            curtailed.average_kg > curtailed.marginal_kg * 5.0,
            "avg {} vs marginal {}",
            curtailed.average_kg,
            curtailed.marginal_kg
        );
    }

    #[test]
    fn marginal_signal_is_near_optimal_everywhere() {
        for row in &ext().signals {
            assert!(row.optimal_kg <= row.marginal_kg + 1e-9);
            assert!(
                row.marginal_kg <= row.optimal_kg * 1.01 + 1e-9,
                "{}: {} vs optimal {}",
                row.grid,
                row.marginal_kg,
                row.optimal_kg
            );
        }
    }

    #[test]
    fn consequential_greedy_dominates_flex_table() {
        let e = ext();
        let added: Vec<f64> = e.flex.iter().map(|r| r.added_kg).collect();
        // flat ≥ consequential and average-CI ≥ consequential.
        assert!(added[2] <= added[0] + 1e-6);
        assert!(added[2] <= added[1] + 1e-6);
        // The average-CI policy is the *worst* here: it piles load onto
        // clean-looking gas-margin noon hours.
        assert!(
            added[1] >= added[0],
            "avg {} vs flat {}",
            added[1],
            added[0]
        );
    }

    #[test]
    fn consequential_policy_absorbs_the_most_curtailment() {
        let e = ext();
        let best = &e.flex[2];
        assert!(best.absorbed_mwh > 0.0);
        for other in &e.flex[..2] {
            assert!(best.absorbed_mwh >= other.absorbed_mwh - 1e-9);
        }
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 2);
        assert!(format!("{}", tables[1]).contains("flexible load"));
    }
}
