//! Extension: online schedulers vs the paper's clairvoyant bounds.
//!
//! Figs. 7–9 are clairvoyant upper bounds. This experiment runs *online*
//! policies through the discrete-event simulator on the same workload —
//! batch jobs arriving through the year in five representative regions —
//! and reports how much of the clairvoyant saving each policy captures,
//! at what performance cost (slowdown), and how realistic suspend/resume
//! overheads erode the interruptible policies.

use decarb_forecast::{DiurnalTemplate, SeasonalNaive};
use decarb_sim::{
    CarbonAgnostic, ForecastDeferral, ForecastSuspend, OverheadModel, PlannedDeferral, Policy,
    SimConfig, SimReport, Simulator, ThresholdSuspend,
};
use decarb_traces::time::year_start;
use decarb_workloads::{Job, Slack};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, f2, pct, ExperimentTable};

const SAMPLE_REGIONS: [&str; 5] = ["US-CA", "DE", "GB", "SE", "IN-WE"];

/// One policy's aggregate outcome on the shared workload.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy label.
    pub policy: &'static str,
    /// Average CI of delivered energy, g/kWh.
    pub avg_ci: f64,
    /// Saving relative to the carbon-agnostic run, percent.
    pub saving_pct: f64,
    /// Mean job slowdown (1.0 = immediate, uninterrupted).
    pub mean_slowdown: f64,
    /// Suspend + resume transitions taken.
    pub transitions: usize,
}

/// One overhead-sensitivity row.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Policy label.
    pub policy: &'static str,
    /// Emissions with zero overheads, g.
    pub ideal_g: f64,
    /// Emissions with the realistic overhead model, g.
    pub realistic_g: f64,
}

/// Extension results.
#[derive(Debug, Clone)]
pub struct ExtSim {
    /// Online-vs-clairvoyant comparison.
    pub policies: Vec<PolicyRow>,
    /// Overhead erosion of the interruptible policies.
    pub overheads: Vec<OverheadRow>,
}

/// The shared workload: 24-hour interruptible batch jobs with one week of
/// slack, arriving every ~11 days in each sample region.
fn workload(ctx: &Context) -> Vec<Job> {
    let start = year_start(EVAL_YEAR);
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for code in SAMPLE_REGIONS {
        let region = ctx.data().id_of(code).expect("sample region");
        for k in 0..30usize {
            id += 1;
            jobs.push(
                Job::batch(id, region, start.plus(11 + k * 263), 24.0, Slack::Week)
                    .with_interruptible(),
            );
        }
    }
    jobs
}

fn run_policy<P: Policy>(
    ctx: &Context,
    policy: &mut P,
    jobs: &[Job],
    overheads: OverheadModel,
) -> SimReport {
    let regions: Vec<decarb_traces::RegionId> = SAMPLE_REGIONS
        .iter()
        .map(|c| ctx.data().id_of(c).expect("sample region"))
        .collect();
    let config = SimConfig::new(year_start(EVAL_YEAR), 8760, 64).with_overheads(overheads);
    let mut sim = Simulator::new(ctx.data(), &regions, config);
    let report = sim.run(policy, jobs);
    assert_eq!(
        report.completed_count(),
        jobs.len(),
        "all jobs must finish within the year"
    );
    report
}

/// Runs the online-policy extension.
pub fn run(ctx: &Context) -> ExtSim {
    let jobs = workload(ctx);

    let agnostic = run_policy(ctx, &mut CarbonAgnostic, &jobs, OverheadModel::ZERO);
    let base_ci = agnostic.average_ci();

    let mut policies = vec![PolicyRow {
        policy: "carbon-agnostic",
        avg_ci: base_ci,
        saving_pct: 0.0,
        mean_slowdown: agnostic.mean_slowdown(),
        transitions: agnostic.suspends + agnostic.resumes,
    }];

    let mut add = |name: &'static str, report: SimReport| {
        policies.push(PolicyRow {
            policy: name,
            avg_ci: report.average_ci(),
            saving_pct: (base_ci - report.average_ci()) / base_ci * 100.0,
            mean_slowdown: report.mean_slowdown(),
            transitions: report.suspends + report.resumes,
        });
    };

    add(
        "threshold suspend (online)",
        run_policy(
            ctx,
            &mut ThresholdSuspend::default(),
            &jobs,
            OverheadModel::ZERO,
        ),
    );
    add(
        "forecast deferral (template)",
        run_policy(
            ctx,
            &mut ForecastDeferral::new(DiurnalTemplate::default()),
            &jobs,
            OverheadModel::ZERO,
        ),
    );
    add(
        "forecast suspend (seasonal)",
        run_policy(
            ctx,
            &mut ForecastSuspend::new(SeasonalNaive::daily()),
            &jobs,
            OverheadModel::ZERO,
        ),
    );
    add(
        "clairvoyant deferral (bound)",
        run_policy(ctx, &mut PlannedDeferral, &jobs, OverheadModel::ZERO),
    );

    // --- Overhead sensitivity for the two suspending policies.
    let mut overheads = Vec::new();
    let realistic = OverheadModel::realistic();
    for (name, ideal, costed) in [
        (
            "threshold suspend",
            run_policy(
                ctx,
                &mut ThresholdSuspend::default(),
                &jobs,
                OverheadModel::ZERO,
            ),
            run_policy(ctx, &mut ThresholdSuspend::default(), &jobs, realistic),
        ),
        (
            "forecast suspend",
            run_policy(
                ctx,
                &mut ForecastSuspend::new(SeasonalNaive::daily()),
                &jobs,
                OverheadModel::ZERO,
            ),
            run_policy(
                ctx,
                &mut ForecastSuspend::new(SeasonalNaive::daily()),
                &jobs,
                realistic,
            ),
        ),
    ] {
        overheads.push(OverheadRow {
            policy: name,
            ideal_g: ideal.total_emissions_g,
            realistic_g: costed.total_emissions_g,
        });
    }

    ExtSim {
        policies,
        overheads,
    }
}

impl ExtSim {
    /// Renders the policy and overhead tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let policies = ExperimentTable::new(
            "ext-sim-policies",
            "Ext: online policies vs clairvoyant bound (150 × 24h jobs, 7D slack)",
            vec![
                "policy".into(),
                "avg CI g/kWh".into(),
                "saving".into(),
                "slowdown".into(),
                "transitions".into(),
            ],
            self.policies
                .iter()
                .map(|r| {
                    vec![
                        r.policy.to_string(),
                        f1(r.avg_ci),
                        pct(r.saving_pct),
                        f2(r.mean_slowdown),
                        r.transitions.to_string(),
                    ]
                })
                .collect(),
        );
        let overheads = ExperimentTable::new(
            "ext-sim-overheads",
            "Ext: suspend/resume overhead erosion (realistic checkpoint model)",
            vec![
                "policy".into(),
                "ideal g".into(),
                "with overheads g".into(),
                "erosion".into(),
            ],
            self.overheads
                .iter()
                .map(|r| {
                    vec![
                        r.policy.to_string(),
                        f1(r.ideal_g),
                        f1(r.realistic_g),
                        pct((r.realistic_g - r.ideal_g) / r.ideal_g * 100.0),
                    ]
                })
                .collect(),
        );
        vec![policies, overheads]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn ext() -> &'static ExtSim {
        static EXT: OnceLock<ExtSim> = OnceLock::new();
        EXT.get_or_init(|| run(shared()))
    }

    fn row<'a>(e: &'a ExtSim, name: &str) -> &'a PolicyRow {
        e.policies
            .iter()
            .find(|r| r.policy.starts_with(name))
            .expect("policy present")
    }

    #[test]
    fn clairvoyant_bound_dominates_deferral_policies() {
        let e = ext();
        let bound = row(e, "clairvoyant");
        // The clairvoyant *deferral* bound beats the online deferral
        // policies; suspending policies may beat it since they exploit a
        // different flexibility dimension.
        assert!(bound.saving_pct >= row(e, "forecast deferral").saving_pct - 1e-9);
        assert!(bound.saving_pct >= 0.0);
    }

    #[test]
    fn online_policies_capture_some_saving() {
        let e = ext();
        for name in ["threshold", "forecast deferral", "forecast suspend"] {
            let r = row(e, name);
            assert!(
                r.saving_pct > 0.0,
                "{name} saved nothing ({}%)",
                r.saving_pct
            );
        }
    }

    #[test]
    fn savings_cost_slowdown() {
        let e = ext();
        let agnostic = row(e, "carbon-agnostic");
        assert!((agnostic.mean_slowdown - 1.0).abs() < 1e-9);
        assert_eq!(agnostic.transitions, 0);
        // Every saving policy delays or interrupts work.
        for name in [
            "threshold",
            "forecast deferral",
            "forecast suspend",
            "clairvoyant",
        ] {
            assert!(row(e, name).mean_slowdown >= 1.0);
        }
        // Suspending policies actually take transitions.
        assert!(row(e, "threshold").transitions > 0);
        assert!(row(e, "forecast suspend").transitions > 0);
    }

    #[test]
    fn overheads_erode_but_do_not_erase_savings() {
        let e = ext();
        for r in &e.overheads {
            assert!(
                r.realistic_g > r.ideal_g,
                "{}: overheads must cost something",
                r.policy
            );
            // A few hundredths of a kWh per transition stays far below
            // the savings on 24 h jobs: erosion under 25 %.
            let erosion = (r.realistic_g - r.ideal_g) / r.ideal_g;
            assert!(
                erosion < 0.25,
                "{}: erosion {:.1}%",
                r.policy,
                erosion * 100.0
            );
        }
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 2);
        assert!(format!("{}", tables[0]).contains("clairvoyant"));
    }
}
