//! Fig. 5: spatial shifting under capacity constraints (§5.1.1–§5.1.2).
//!
//! * (a) infinite capacity: per-grouping reductions when all load migrates
//!   to the global greenest region (Sweden);
//! * (b) the same under 50 % idle capacity (water-filling);
//! * (c) global reduction as a function of idle capacity, plus the §5.3.1
//!   regression (every 1 % of idle capacity ≈ 1 % / ≈ 3.68 g of reduction).

use decarb_core::capacity::{water_filling, IdleCapacity};
use decarb_stats::regression::linear_fit;
use decarb_traces::{GeoGroup, Region, GLOBAL_AVG_CI};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, f2, pct, ExperimentTable};

/// Per-grouping reduction rows for one capacity regime.
#[derive(Debug, Clone)]
pub struct GroupReduction {
    /// Grouping label.
    pub group: String,
    /// Average reduction of the grouping's origins (g·CO2eq).
    pub reduction_g: f64,
    /// The same relative to the global average CI, in percent.
    pub relative_pct: f64,
}

/// One idle-capacity sweep point.
#[derive(Debug, Clone)]
pub struct IdlePoint {
    /// Idle fraction in `[0, 1)`.
    pub idle: f64,
    /// Global reduction (g·CO2eq per unit load).
    pub reduction_g: f64,
    /// Reduction relative to the global average CI, in percent.
    pub relative_pct: f64,
}

/// Fig. 5 results.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// (a): per-grouping reductions with infinite capacity.
    pub infinite: Vec<GroupReduction>,
    /// (b): per-grouping reductions at 50 % idle capacity.
    pub half_idle: Vec<GroupReduction>,
    /// (c): the idle-capacity sweep.
    pub sweep: Vec<IdlePoint>,
    /// Regression slope of reduction (g) per 1 % idle capacity.
    pub g_per_idle_pct: f64,
    /// Global reduction at infinite capacity (the 352 g / 96 % headline).
    pub global_infinite_g: f64,
    /// Global reduction at 50 % idle (the 190 g / 52 % headline).
    pub global_half_g: f64,
}

fn group_rows(regions: &[(&Region, f64)], per_region: &[(Region, f64)]) -> Vec<GroupReduction> {
    let mut rows = Vec::new();
    // Global first, then each grouping.
    let global: f64 = per_region.iter().map(|(_, r)| r).sum::<f64>() / per_region.len() as f64;
    rows.push(GroupReduction {
        group: "Global".into(),
        reduction_g: global,
        relative_pct: global / GLOBAL_AVG_CI * 100.0,
    });
    for group in GeoGroup::ALL {
        let members: Vec<f64> = per_region
            .iter()
            .filter(|(r, _)| r.group == group)
            .map(|(_, v)| *v)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mean = members.iter().sum::<f64>() / members.len() as f64;
        rows.push(GroupReduction {
            group: group.label().into(),
            reduction_g: mean,
            relative_pct: mean / GLOBAL_AVG_CI * 100.0,
        });
    }
    let _ = regions;
    rows
}

/// Runs the Fig. 5 analysis.
pub fn run(ctx: &Context) -> Fig5 {
    let means: Vec<(&Region, f64)> = ctx.data().annual_means(EVAL_YEAR);
    let all = |_: &Region, _: &Region| true;

    let infinite = water_filling(&means, IdleCapacity::Infinite, &all);
    let half = water_filling(&means, IdleCapacity::Fraction(0.5), &all);

    let mut sweep = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for pct_idle in (0..=99).step_by(3) {
        let f = pct_idle as f64 / 100.0;
        let outcome = water_filling(&means, IdleCapacity::Fraction(f), &all);
        let reduction = outcome.reduction_g();
        sweep.push(IdlePoint {
            idle: f,
            reduction_g: reduction,
            relative_pct: reduction / GLOBAL_AVG_CI * 100.0,
        });
        xs.push(pct_idle as f64);
        ys.push(reduction);
    }
    let fit = linear_fit(&xs, &ys).expect("sweep has many points");

    Fig5 {
        infinite: group_rows(&means, &infinite.per_region_reduction),
        half_idle: group_rows(&means, &half.per_region_reduction),
        sweep,
        g_per_idle_pct: fit.slope,
        global_infinite_g: infinite.reduction_g(),
        global_half_g: half.reduction_g(),
    }
}

impl Fig5 {
    /// Renders Fig. 5(a), (b) and (c) tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let render = |id: &str, title: String, rows: &[GroupReduction]| {
            ExperimentTable::new(
                id,
                title,
                vec![
                    "grouping".into(),
                    "reduction g".into(),
                    "vs global avg".into(),
                ],
                rows.iter()
                    .map(|r| vec![r.group.clone(), f1(r.reduction_g), pct(r.relative_pct)])
                    .collect(),
            )
        };
        let a = render(
            "fig5a",
            format!(
                "Fig 5(a): spatial reduction, infinite capacity (global {} g)",
                f1(self.global_infinite_g)
            ),
            &self.infinite,
        );
        let b = render(
            "fig5b",
            format!(
                "Fig 5(b): spatial reduction, 50% idle capacity (global {} g)",
                f1(self.global_half_g)
            ),
            &self.half_idle,
        );
        let c = ExperimentTable::new(
            "fig5c",
            format!(
                "Fig 5(c): reduction vs idle capacity (slope {} g per 1% idle)",
                f2(self.g_per_idle_pct)
            ),
            vec!["idle".into(), "reduction g".into(), "vs global avg".into()],
            self.sweep
                .iter()
                .step_by(4)
                .map(|p| vec![pct(p.idle * 100.0), f1(p.reduction_g), pct(p.relative_pct)])
                .collect(),
        );
        vec![a, b, c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_match_paper_shape() {
        let ctx = Context::default();
        let fig = run(&ctx);
        // §5.1.1: ideal global reduction ≈ 352 g ≈ 96 %.
        assert!(
            (320.0..380.0).contains(&fig.global_infinite_g),
            "infinite {}",
            fig.global_infinite_g
        );
        // §5.1.2: at 50 % idle ≈ 190 g ≈ 52 % (we allow a generous band).
        assert!(
            (150.0..240.0).contains(&fig.global_half_g),
            "half {}",
            fig.global_half_g
        );
        // Capacity constraint costs roughly a 1.9× reduction factor.
        let ratio = fig.global_infinite_g / fig.global_half_g;
        assert!((1.4..2.5).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn asia_gains_most_europe_least() {
        let ctx = Context::default();
        let fig = run(&ctx);
        let get = |rows: &[GroupReduction], label: &str| {
            rows.iter()
                .find(|r| r.group == label)
                .map(|r| r.reduction_g)
                .unwrap()
        };
        let asia = get(&fig.infinite, "Asia");
        let europe = get(&fig.infinite, "Europe");
        // §5.1.1: Asia ≈ 556 g (highest), Europe ≈ 281 g (lowest of the
        // large groupings).
        assert!(asia > 450.0, "asia {asia}");
        assert!(europe < 330.0, "europe {europe}");
        assert!(asia > europe);
        // Asia's reductions largely survive the capacity constraint
        // (§5.1.2: the dirtiest donors migrate first, and Asia hosts most
        // of them).
        let asia_half = get(&fig.half_idle, "Asia");
        let global_half = get(&fig.half_idle, "Global");
        assert!(asia_half > 300.0, "asia at 50% idle {asia_half}");
        assert!(asia_half > 1.5 * global_half, "asia keeps its lead");
    }

    #[test]
    fn sweep_monotone_and_linearish() {
        let ctx = Context::default();
        let fig = run(&ctx);
        for pair in fig.sweep.windows(2) {
            assert!(pair[1].reduction_g >= pair[0].reduction_g - 1e-9);
        }
        // §5.3.1: ≈ 3.68 g per 1 % idle capacity.
        assert!(
            (2.5..4.5).contains(&fig.g_per_idle_pct),
            "slope {}",
            fig.g_per_idle_pct
        );
        // 99 % idle approaches the 95.68 % headline.
        let last = fig.sweep.last().unwrap();
        assert!(last.relative_pct > 85.0, "99% idle {}", last.relative_pct);
    }

    #[test]
    fn tables_render() {
        let ctx = Context::default();
        let tables = run(&ctx).tables();
        assert_eq!(tables.len(), 3);
        assert!(format!("{}", tables[0]).contains("Global"));
    }
}
