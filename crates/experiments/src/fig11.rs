//! Fig. 11: what-if scenarios (§6.1–§6.3).
//!
//! * (a) mixed workloads: reduction vs the migratable fraction;
//! * (b) forecast error: emission increase vs uniform prediction error;
//! * (c,d) increasing renewables: carbon-aware vs carbon-agnostic
//!   emissions as California's grid gets greener.

use decarb_core::forecast::{spatial_increase_pct, temporal_increase_pct, with_uniform_error};
use decarb_core::greener::greener_trace;
use decarb_core::mixed::migratable_sweep;
use decarb_core::spatial::lower_envelope;
use decarb_core::temporal::TemporalPlanner;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::{TimeSeries, GLOBAL_AVG_CI};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, pct, ExperimentTable};

// ---------------------------------------------------------------- Fig 11(a)

/// One mixed-workload sweep point.
#[derive(Debug, Clone)]
pub struct MixedPoint {
    /// Migratable fraction.
    pub migratable: f64,
    /// Global reduction (g·CO2eq per kWh of load).
    pub reduction_g: f64,
}

/// Fig. 11(a) results.
#[derive(Debug, Clone)]
pub struct Fig11a {
    /// The sweep rows.
    pub points: Vec<MixedPoint>,
}

/// Runs the mixed-workload sweep.
pub fn run_a(ctx: &Context) -> Fig11a {
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let points = migratable_sweep(ctx.data(), &fractions, EVAL_YEAR)
        .into_iter()
        .map(|(migratable, reduction_g)| MixedPoint {
            migratable,
            reduction_g,
        })
        .collect();
    Fig11a { points }
}

impl Fig11a {
    /// Renders the Fig. 11(a) table.
    pub fn table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "fig11a",
            "Fig 11(a): reduction vs migratable workload fraction",
            vec![
                "migratable".into(),
                "reduction g".into(),
                "vs global avg".into(),
            ],
            self.points
                .iter()
                .map(|p| {
                    vec![
                        pct(p.migratable * 100.0),
                        f1(p.reduction_g),
                        pct(p.reduction_g / GLOBAL_AVG_CI * 100.0),
                    ]
                })
                .collect(),
        )
    }
}

// ---------------------------------------------------------------- Fig 11(b)

/// One forecast-error sweep point.
#[derive(Debug, Clone)]
pub struct ErrorPoint {
    /// Uniform error magnitude (0.5 = ±50 %).
    pub error: f64,
    /// Temporal-scheduling emission increase, percent.
    pub temporal_pct: f64,
    /// Spatial-scheduling emission increase, percent.
    pub spatial_pct: f64,
}

/// Fig. 11(b) results.
#[derive(Debug, Clone)]
pub struct Fig11b {
    /// The sweep rows.
    pub points: Vec<ErrorPoint>,
}

/// Representative regions for the (more expensive) temporal error sweep.
const ERROR_REGIONS: [&str; 8] = [
    "US-CA", "DE", "GB", "IN-WE", "AU-NSW", "SE", "JP-TK", "BR-CS",
];

/// Runs the forecast-error sweep.
pub fn run_b(ctx: &Context) -> Fig11b {
    let start = year_start(EVAL_YEAR);
    let count = hours_in_year(EVAL_YEAR);
    let truths: Vec<&TimeSeries> = ctx
        .regions()
        .iter()
        .map(|r| ctx.data().series(&r.code).expect("trace"))
        .collect();
    let points = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        .iter()
        .map(|&error| {
            // Temporal: deferral with one-year slack, 6-hour jobs, strided
            // arrivals over representative regions.
            let mut temporal_acc = 0.0;
            for (i, code) in ERROR_REGIONS.iter().enumerate() {
                let truth = ctx.data().series(code).expect("trace");
                let noisy = with_uniform_error(truth, error, 0xE44 + i as u64);
                temporal_acc += temporal_increase_pct(truth, &noisy, start, count, 6, 365 * 24, 97);
            }
            let temporal_pct = temporal_acc / ERROR_REGIONS.len() as f64;
            // Spatial: ∞-migration across all 123 regions.
            let noisy: Vec<TimeSeries> = truths
                .iter()
                .enumerate()
                .map(|(i, t)| with_uniform_error(t, error, 0x5A7 + i as u64))
                .collect();
            let noisy_refs: Vec<&TimeSeries> = noisy.iter().collect();
            let spatial_pct = spatial_increase_pct(&truths, &noisy_refs, start, count);
            ErrorPoint {
                error,
                temporal_pct,
                spatial_pct,
            }
        })
        .collect();
    Fig11b { points }
}

impl Fig11b {
    /// Renders the Fig. 11(b) table.
    pub fn table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "fig11b",
            "Fig 11(b): carbon increase vs prediction error",
            vec![
                "error".into(),
                "temporal increase".into(),
                "spatial increase".into(),
            ],
            self.points
                .iter()
                .map(|p| {
                    vec![
                        pct(p.error * 100.0),
                        pct(p.temporal_pct),
                        pct(p.spatial_pct),
                    ]
                })
                .collect(),
        )
    }
}

// -------------------------------------------------------------- Fig 11(c,d)

/// One renewable-penetration sweep point for California.
#[derive(Debug, Clone)]
pub struct GreenerPoint {
    /// Added renewable fraction.
    pub renewables: f64,
    /// Carbon-agnostic temporal emissions (mean CI, g/kWh).
    pub temporal_agnostic_g: f64,
    /// Carbon-aware temporal emissions (1-year-slack deferral, g/kWh).
    pub temporal_aware_g: f64,
    /// Carbon-agnostic spatial emissions (run locally, g/kWh).
    pub spatial_agnostic_g: f64,
    /// Carbon-aware spatial emissions (∞-migration incl. the greener
    /// local grid, g/kWh).
    pub spatial_aware_g: f64,
}

/// Fig. 11(c,d) results for California.
#[derive(Debug, Clone)]
pub struct Fig11cd {
    /// The sweep rows.
    pub points: Vec<GreenerPoint>,
}

/// Runs the increasing-renewables sweep for California (US-CA).
pub fn run_cd(ctx: &Context) -> Fig11cd {
    let start = year_start(EVAL_YEAR);
    let count = hours_in_year(EVAL_YEAR);
    let region = ctx.data().region("US-CA").expect("California in catalog");
    let base = ctx
        .data()
        .series("US-CA")
        .expect("California trace")
        .slice(start, count + 8 * 24)
        .expect("year + margin in horizon");
    let lon_offset = (region.lon / 15.0).round() as i64;
    // Envelope of all other regions (unchanged by California's greening).
    let others: Vec<&decarb_traces::Region> =
        ctx.regions().iter().filter(|r| r.code != "US-CA").collect();
    let envelope = lower_envelope(ctx.data(), &others, start, count);

    let points = (0..=9)
        .map(|i| {
            let p = i as f64 / 10.0;
            let greener = greener_trace(&base, p, lon_offset);
            let year_mean = greener
                .window(start, count)
                .expect("year in slice")
                .iter()
                .sum::<f64>()
                / count as f64;
            // Temporal: deferral sweep with a 6-hour job; slack bounded by
            // the slice (clairvoyant within the greener year).
            let planner = TemporalPlanner::new(&greener);
            let deferred = planner.deferral_sweep(start, count - 8760.min(count - 1), 6, 8760);
            let aware_temporal = deferred.iter().sum::<f64>() / deferred.len() as f64 / 6.0;
            // Spatial: hourly min of the greener local trace vs the world.
            let mut aware_spatial = 0.0;
            for j in 0..count {
                let hour = start.plus(j);
                aware_spatial += greener.get(hour).min(envelope.get(hour));
            }
            aware_spatial /= count as f64;
            GreenerPoint {
                renewables: p,
                temporal_agnostic_g: year_mean,
                temporal_aware_g: aware_temporal,
                spatial_agnostic_g: year_mean,
                spatial_aware_g: aware_spatial,
            }
        })
        .collect();
    Fig11cd { points }
}

impl Fig11cd {
    /// Renders the Fig. 11(c,d) table.
    pub fn table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "fig11cd",
            "Fig 11(c,d): California emissions vs renewable penetration",
            vec![
                "renewables".into(),
                "temporal agnostic g".into(),
                "temporal aware g".into(),
                "spatial agnostic g".into(),
                "spatial aware g".into(),
            ],
            self.points
                .iter()
                .map(|p| {
                    vec![
                        pct(p.renewables * 100.0),
                        f1(p.temporal_agnostic_g),
                        f1(p.temporal_aware_g),
                        f1(p.spatial_agnostic_g),
                        f1(p.spatial_aware_g),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;

    #[test]
    fn mixed_workload_linear() {
        let fig = run_a(shared());
        assert_eq!(fig.points.len(), 11);
        assert!(fig.points[0].reduction_g.abs() < 1e-9);
        let full = fig.points.last().unwrap().reduction_g;
        assert!(full > 300.0, "full migratability {full}");
        // §6.1: reduction grows linearly with the migratable share.
        let half = fig.points[5].reduction_g;
        assert!(
            (half - full / 2.0).abs() < 1.0,
            "half {half} vs full {full}"
        );
    }

    #[test]
    fn forecast_error_increases_emissions() {
        let fig = run_b(shared());
        assert!(fig.points[0].temporal_pct.abs() < 1e-6);
        assert!(fig.points[0].spatial_pct.abs() < 1e-6);
        // Monotone-ish growth; at 50 % error the paper reports ≈ 10–12 %.
        let last = fig.points.last().unwrap();
        assert!(last.temporal_pct > 1.0, "temporal {}", last.temporal_pct);
        assert!(
            (2.0..35.0).contains(&last.spatial_pct),
            "spatial {}",
            last.spatial_pct
        );
        for pair in fig.points.windows(2) {
            assert!(pair[1].temporal_pct >= pair[0].temporal_pct - 1.5);
            assert!(pair[1].spatial_pct >= pair[0].spatial_pct - 1.5);
        }
    }

    #[test]
    fn greener_grid_shrinks_the_carbon_aware_gap() {
        let fig = run_cd(shared());
        assert_eq!(fig.points.len(), 10);
        for p in &fig.points {
            // Aware never exceeds agnostic.
            assert!(p.temporal_aware_g <= p.temporal_agnostic_g + 1e-9);
            assert!(p.spatial_aware_g <= p.spatial_agnostic_g + 1e-9);
        }
        let first = &fig.points[0];
        let last = fig.points.last().unwrap();
        // §6.3: both lines fall as the grid gets greener…
        assert!(last.temporal_agnostic_g < first.temporal_agnostic_g);
        assert!(last.temporal_aware_g < first.temporal_aware_g + 1e-9);
        // …and the agnostic-vs-aware gap narrows.
        let gap_first = first.temporal_agnostic_g - first.temporal_aware_g;
        let gap_last = last.temporal_agnostic_g - last.temporal_aware_g;
        assert!(gap_last < gap_first, "gap {gap_first} → {gap_last}");
        let sgap_first = first.spatial_agnostic_g - first.spatial_aware_g;
        let sgap_last = last.spatial_agnostic_g - last.spatial_aware_g;
        assert!(sgap_last < sgap_first, "spatial gap must narrow");
    }

    #[test]
    fn tables_render() {
        let ctx = shared();
        assert!(format!("{}", run_a(ctx).table()).contains("migratable"));
        assert!(format!("{}", run_cd(ctx).table()).contains("renewables"));
    }
}
