//! Plain-text table rendering for experiment output.

use decarb_json::Value;

/// A rendered experiment table: the rows/series a paper figure reports.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Experiment identifier, e.g. `"fig5a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Formatted body cells.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates a table from headers and rows.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: Vec<String>,
        rows: Vec<Vec<String>>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns,
            rows,
        }
    }
}

impl ExperimentTable {
    /// Renders the table as a JSON object
    /// (`{id, title, columns, rows}`).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("id", Value::from(self.id.as_str())),
            ("title", Value::from(self.title.as_str())),
            ("columns", Value::from(self.columns.clone())),
            (
                "rows",
                Value::Array(self.rows.iter().map(|r| Value::from(r.clone())).collect()),
            ),
        ])
    }
}

impl std::fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        writeln!(f, "== {} [{}] ==", self.title, self.id)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "| {} |", header.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a float with one decimal place.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with one decimal place.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = ExperimentTable::new(
            "figX",
            "Example",
            vec!["region".into(), "value".into()],
            vec![
                vec!["SE".into(), "16.0".into()],
                vec!["US-CA".into(), "250.0".into()],
            ],
        );
        let s = format!("{t}");
        assert!(s.contains("== Example [figX] =="));
        assert!(s.contains("| region | value"));
        assert!(s.contains("| US-CA  | 250.0"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(3.46159), "3.5");
        assert_eq!(f2(3.46159), "3.46");
        assert_eq!(pct(51.54), "51.5%");
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let t = ExperimentTable::new(
            "figY",
            "Ragged",
            vec!["a".into()],
            vec![vec!["1".into(), "extra".into()]],
        );
        let s = format!("{t}");
        assert!(s.contains("extra"));
    }
}
