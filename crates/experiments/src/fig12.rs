//! Fig. 12: combined spatial + temporal shifting decomposition (§6.4).
//!
//! For a set of destination regions, the net reduction of "migrate there,
//! then defer within the slack" splits into a spatial component (global
//! average CI minus the destination's mean — possibly negative) and a
//! temporal component (the destination's deferral saving). The paper's
//! takeaway: the spatial term dominates the sign of the net gain.

use decarb_core::combined::{combined_shift, CombinedBreakdown};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, ExperimentTable};

/// Destination zones shown in the figure (the paper's flag row).
pub const DESTINATIONS: [&str; 14] = [
    "SE", "CA-ON", "BE", "CH", "FR", "GB", "US-CA", "US-VA", "DE", "NL", "JP-TK", "KR", "US-UT",
    "IN-WE",
];

/// One destination's decomposition under both slack settings.
#[derive(Debug, Clone)]
pub struct DestinationRow {
    /// Destination zone code.
    pub destination: String,
    /// Spatial component (g, slack-independent).
    pub spatial_g: f64,
    /// Temporal component with one-year slack.
    pub temporal_1y_g: f64,
    /// Temporal component with 24-hour slack.
    pub temporal_24h_g: f64,
}

impl DestinationRow {
    /// Net reduction with one-year slack.
    pub fn net_1y(&self) -> f64 {
        self.spatial_g + self.temporal_1y_g
    }

    /// Net reduction with 24-hour slack.
    pub fn net_24h(&self) -> f64 {
        self.spatial_g + self.temporal_24h_g
    }
}

/// Fig. 12 results.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// One row per destination.
    pub rows: Vec<DestinationRow>,
}

/// Runs the Fig. 12 analysis with 24-hour jobs.
pub fn run(ctx: &Context) -> Fig12 {
    let rows = DESTINATIONS
        .iter()
        .map(|code| {
            let region = ctx.data().region(code).expect("destination in catalog");
            let ideal: CombinedBreakdown =
                combined_shift(ctx.data(), region, EVAL_YEAR, 24, 365 * 24);
            let practical = combined_shift(ctx.data(), region, EVAL_YEAR, 24, 24);
            DestinationRow {
                destination: region.code.clone(),
                spatial_g: ideal.spatial_g,
                temporal_1y_g: ideal.temporal_g,
                temporal_24h_g: practical.temporal_g,
            }
        })
        .collect();
    Fig12 { rows }
}

impl Fig12 {
    /// Renders the Fig. 12 table.
    pub fn table(&self) -> ExperimentTable {
        ExperimentTable::new(
            "fig12",
            "Fig 12: spatial + temporal decomposition by destination (24h jobs)",
            vec![
                "destination".into(),
                "spatial g".into(),
                "temporal 1Y g".into(),
                "net 1Y g".into(),
                "temporal 24H g".into(),
                "net 24H g".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.destination.to_string(),
                        f1(r.spatial_g),
                        f1(r.temporal_1y_g),
                        f1(r.net_1y()),
                        f1(r.temporal_24h_g),
                        f1(r.net_24h()),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig12 {
        static FIG: OnceLock<Fig12> = OnceLock::new();
        FIG.get_or_init(|| run(shared()))
    }

    fn row(code: &str) -> &'static DestinationRow {
        fig().rows.iter().find(|r| r.destination == code).unwrap()
    }

    #[test]
    fn green_destinations_have_high_positive_net() {
        // §6.4: Sweden, Ontario and Belgium yield high net reductions even
        // though their temporal component is small.
        for code in ["SE", "CA-ON", "BE"] {
            let r = row(code);
            assert!(r.net_1y() > 150.0, "{code} net {}", r.net_1y());
            assert!(r.spatial_g > r.temporal_1y_g, "{code} spatial dominates");
        }
    }

    #[test]
    fn dirty_destinations_net_negative_despite_temporal_gains() {
        // §6.4: NL, KR and US-UT have low-to-negative net gains.
        for code in ["KR", "US-UT", "IN-WE"] {
            let r = row(code);
            assert!(r.net_1y() < 60.0, "{code} net {}", r.net_1y());
        }
        let utah = row("US-UT");
        assert!(utah.net_1y() < 0.0, "Utah must be net-negative");
        // Netherlands sits above the global mean in our catalog → negative
        // spatial term.
        assert!(row("NL").spatial_g < 0.0);
    }

    #[test]
    fn california_is_the_temporal_exception() {
        // §6.4: California (and Virginia) combine modest spatial terms
        // with high temporal reductions for a positive net.
        let ca = row("US-CA");
        assert!(ca.temporal_1y_g > 30.0, "CA temporal {}", ca.temporal_1y_g);
        assert!(ca.net_1y() > 100.0, "CA net {}", ca.net_1y());
    }

    #[test]
    fn slack_only_affects_temporal_term() {
        for r in &fig().rows {
            assert!(
                r.temporal_24h_g <= r.temporal_1y_g + 1e-9,
                "{}",
                r.destination
            );
            assert!(r.temporal_24h_g >= -1e-9);
        }
    }

    #[test]
    fn spatial_dominates_net_sign_for_most_destinations() {
        // The paper's key takeaway: the spatial term determines whether
        // migration pays off.
        let agree = fig()
            .rows
            .iter()
            .filter(|r| (r.spatial_g >= 0.0) == (r.net_1y() >= 0.0))
            .count();
        assert!(
            agree >= fig().rows.len() - 3,
            "spatial sign should predict net sign for most destinations"
        );
    }

    #[test]
    fn table_renders() {
        assert!(format!("{}", fig().table()).contains("US-UT"));
    }
}
