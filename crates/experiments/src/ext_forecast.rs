//! Extension: realistic carbon-intensity forecasting (§6.2 upgraded).
//!
//! The paper injects *uniform random* forecast error and cites CarbonCast
//! (MAPE 4.8–13.9 %) for what real forecasters achieve. This experiment
//! closes the loop with the `decarb-forecast` substrate:
//!
//! 1. rolling-origin backtests of four models on a diverse region sample
//!    (the CarbonCast-style accuracy table, overall and per lead day);
//! 2. the *carbon cost* of scheduling with each model — placements chosen
//!    on the model's stitched rolling forecast, paid on the true trace —
//!    compared against the clairvoyant bound, for both temporal deferral
//!    and spatial ∞-migration.

use decarb_core::forecast::{spatial_increase_pct, temporal_increase_pct};
use decarb_forecast::{
    backtest, rolling_forecast_trace, BacktestConfig, DiurnalTemplate, Forecaster, LinearAr,
    Persistence, SeasonalNaive,
};
use decarb_traces::time::year_start;
use decarb_traces::TimeSeries;

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, f2, ExperimentTable};

/// Regions spanning the paper's quadrants: solar-heavy (US-CA), wind-heavy
/// (DE, GB), hydro/nuclear-stable (SE), fossil-stable (IN-WE).
const SAMPLE_REGIONS: [&str; 5] = ["US-CA", "DE", "GB", "SE", "IN-WE"];

/// Candidate set for the *spatial* impact: north-European zones whose CI
/// profiles overlap and cross. With a clear global winner (Sweden) in the
/// set, forecast errors never flip the rank order and the spatial impact
/// is identically zero — the paper's rank-stability observation (§5.1.4).
/// The interesting sensitivity lives where ranks are close.
const SPATIAL_REGIONS: [&str; 5] = ["DE", "GB", "NL", "DK", "IE"];

/// Evaluation window: the first 90 days of the evaluation year.
const EVAL_HOURS: usize = 90 * 24;

/// One model's pooled accuracy across the region sample.
#[derive(Debug, Clone)]
pub struct ModelQuality {
    /// Model name.
    pub model: &'static str,
    /// Pooled MAPE across regions and leads, percent.
    pub mape_pct: f64,
    /// Pooled MAPE per lead day (96-hour horizon → 4 days).
    pub mape_by_day: Vec<f64>,
    /// Pooled RMSE, g·CO2eq/kWh.
    pub rmse: f64,
}

/// One model's scheduling impact.
#[derive(Debug, Clone)]
pub struct ModelImpact {
    /// Model name (or "uniform-50%" for the paper's abstraction).
    pub model: &'static str,
    /// Mean temporal emission increase over clairvoyant, percent.
    pub temporal_increase_pct: f64,
    /// Spatial (∞-migration over the sample) increase, percent.
    pub spatial_increase_pct: f64,
}

/// Extension results.
#[derive(Debug, Clone)]
pub struct ExtForecast {
    /// Accuracy table.
    pub quality: Vec<ModelQuality>,
    /// Scheduling-impact table.
    pub impact: Vec<ModelImpact>,
}

fn models(train: &TimeSeries) -> Vec<(&'static str, Box<dyn Forecaster>)> {
    let mut out: Vec<(&'static str, Box<dyn Forecaster>)> = vec![
        ("persistence", Box::new(Persistence)),
        ("seasonal-naive", Box::new(SeasonalNaive::daily())),
        ("diurnal-template", Box::new(DiurnalTemplate::default())),
    ];
    if let Some(ar) = LinearAr::fit(train) {
        out.push(("linear-ar", Box::new(ar)));
    }
    out
}

/// Runs the forecasting extension.
pub fn run(ctx: &Context) -> ExtForecast {
    let eval_start = year_start(EVAL_YEAR);
    let config = BacktestConfig {
        horizon: 96,
        stride: 48,
        history: 28 * 24,
    };

    // --- Accuracy: backtest each model on each region, pool by model.
    // (The LinearAr is fit per region on the preceding year, as a real
    // deployment would.)
    let model_names = [
        "persistence",
        "seasonal-naive",
        "diurnal-template",
        "linear-ar",
    ];
    let mut pooled: Vec<(f64, Vec<f64>, f64, usize)> = model_names
        .iter()
        .map(|_| (0.0, vec![0.0; 4], 0.0, 0))
        .collect();
    for code in SAMPLE_REGIONS {
        let series = ctx.data().series(code).expect("sample region trace");
        let train = series
            .slice(year_start(EVAL_YEAR - 1), 8760)
            .expect("training year");
        for (name, model) in models(&train) {
            let slot = model_names
                .iter()
                .position(|n| *n == name)
                .expect("known model");
            let report = backtest(model.as_ref(), series, eval_start, EVAL_HOURS, &config);
            pooled[slot].0 += report.mape_pct;
            for (d, v) in report.mape_by_lead_day.iter().enumerate().take(4) {
                pooled[slot].1[d] += v;
            }
            pooled[slot].2 += report.errors.rmse;
            pooled[slot].3 += 1;
        }
    }
    let quality: Vec<ModelQuality> = model_names
        .iter()
        .zip(&pooled)
        .filter(|(_, (_, _, _, n))| *n > 0)
        .map(|(name, (mape, by_day, rmse, n))| ModelQuality {
            model: name,
            mape_pct: mape / *n as f64,
            mape_by_day: by_day.iter().map(|v| v / *n as f64).collect(),
            rmse: rmse / *n as f64,
        })
        .collect();

    // --- Scheduling impact: schedule on the stitched day-ahead forecast,
    // pay on the truth (6-hour jobs, 48-hour slack, strided arrivals).
    let (slots, slack, stride) = (6usize, 48usize, 97usize);
    let sweep = EVAL_HOURS - slots - slack;
    let mut impact = Vec::new();
    for name in model_names {
        let believed_for = |code: &str| {
            let series = ctx.data().series(code).expect("sample region trace");
            let train = series
                .slice(year_start(EVAL_YEAR - 1), 8760)
                .expect("training year");
            let (_, model) = models(&train)
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("model fits on a full training year");
            rolling_forecast_trace(
                model.as_ref(),
                series,
                eval_start,
                EVAL_HOURS,
                24,
                config.history,
            )
        };
        let mut temporal_sum = 0.0;
        for code in SAMPLE_REGIONS {
            let series = ctx.data().series(code).expect("sample region trace");
            let believed = believed_for(code);
            temporal_sum +=
                temporal_increase_pct(series, &believed, eval_start, sweep, slots, slack, stride);
        }
        let mut believed_all: Vec<TimeSeries> = Vec::new();
        let mut truths_all: Vec<TimeSeries> = Vec::new();
        for code in SPATIAL_REGIONS {
            let series = ctx.data().series(code).expect("sample region trace");
            truths_all.push(series.slice(eval_start, EVAL_HOURS).expect("eval slice"));
            believed_all.push(believed_for(code));
        }
        let truth_refs: Vec<&TimeSeries> = truths_all.iter().collect();
        let believed_refs: Vec<&TimeSeries> = believed_all.iter().collect();
        let spatial = spatial_increase_pct(&truth_refs, &believed_refs, eval_start, EVAL_HOURS);
        impact.push(ModelImpact {
            model: name,
            temporal_increase_pct: temporal_sum / SAMPLE_REGIONS.len() as f64,
            spatial_increase_pct: spatial,
        });
    }

    ExtForecast { quality, impact }
}

impl ExtForecast {
    /// Renders the accuracy and impact tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let quality = ExperimentTable::new(
            "ext-forecast-quality",
            "Ext: forecast accuracy (pooled over 5 regions, 96h horizon)",
            vec![
                "model".into(),
                "MAPE %".into(),
                "day1 %".into(),
                "day2 %".into(),
                "day3 %".into(),
                "day4 %".into(),
                "RMSE g".into(),
            ],
            self.quality
                .iter()
                .map(|q| {
                    let mut row = vec![q.model.to_string(), f2(q.mape_pct)];
                    row.extend(q.mape_by_day.iter().map(|v| f2(*v)));
                    row.push(f1(q.rmse));
                    row
                })
                .collect(),
        );
        let impact = ExperimentTable::new(
            "ext-forecast-impact",
            "Ext: emission increase when scheduling on real forecasts (vs clairvoyant)",
            vec!["model".into(), "temporal +%".into(), "spatial +%".into()],
            self.impact
                .iter()
                .map(|i| {
                    vec![
                        i.model.to_string(),
                        f2(i.temporal_increase_pct),
                        f2(i.spatial_increase_pct),
                    ]
                })
                .collect(),
        );
        vec![quality, impact]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn ext() -> &'static ExtForecast {
        static EXT: OnceLock<ExtForecast> = OnceLock::new();
        EXT.get_or_init(|| run(shared()))
    }

    #[test]
    fn all_four_models_evaluated() {
        let e = ext();
        assert_eq!(e.quality.len(), 4);
        assert_eq!(e.impact.len(), 4);
    }

    #[test]
    fn learned_models_beat_persistence() {
        let e = ext();
        let mape_of = |name: &str| {
            e.quality
                .iter()
                .find(|q| q.model == name)
                .map(|q| q.mape_pct)
                .expect("model present")
        };
        let persistence = mape_of("persistence");
        assert!(mape_of("diurnal-template") < persistence);
        assert!(mape_of("seasonal-naive") < persistence);
        assert!(mape_of("linear-ar") < persistence);
    }

    #[test]
    fn mapes_land_in_carboncast_territory() {
        // CarbonCast reports 4.8–13.9 % day-ahead; our best model on the
        // synthetic traces should sit in the same order of magnitude.
        let e = ext();
        let best = e
            .quality
            .iter()
            .map(|q| q.mape_pct)
            .fold(f64::INFINITY, f64::min);
        assert!(best > 0.5, "synthetic traces are not trivially predictable");
        assert!(best < 20.0, "best model MAPE {best:.1}% is implausibly bad");
    }

    #[test]
    fn scheduling_impact_is_small_and_nonnegative() {
        // The paper's §6.2 anchor: a CarbonCast-grade forecast costs only
        // a few percent of the clairvoyant savings.
        let e = ext();
        for i in &e.impact {
            assert!(
                i.temporal_increase_pct >= -1e-9,
                "{}: {}",
                i.model,
                i.temporal_increase_pct
            );
            assert!(i.spatial_increase_pct >= -1e-9);
            assert!(
                i.temporal_increase_pct < 25.0,
                "{}: temporal +{}%",
                i.model,
                i.temporal_increase_pct
            );
        }
        let best_temporal = e
            .impact
            .iter()
            .map(|i| i.temporal_increase_pct)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_temporal < 10.0,
            "a decent forecaster should cost < 10% (got {best_temporal:.1}%)"
        );
    }

    #[test]
    fn error_grows_with_lead_day_for_persistence() {
        let e = ext();
        let p = e.quality.iter().find(|q| q.model == "persistence").unwrap();
        // Persistence decays with lead; day 2+ should not beat day 1.
        assert!(p.mape_by_day[1] >= p.mape_by_day[0] * 0.8);
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 2);
        let s = format!("{}", tables[0]);
        assert!(s.contains("MAPE"));
        assert!(s.contains("linear-ar"));
    }
}
