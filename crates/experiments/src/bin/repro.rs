//! `repro` — regenerate every table and figure of the paper through the
//! experiment registry.
//!
//! Usage:
//!
//! ```text
//! repro all                 # run every experiment (parallel)
//! repro fig5 fig6a          # run selected experiments
//! repro --list              # list experiment ids and descriptions
//! repro --json fig3a        # emit JSON instead of text tables
//! ```

use std::io::Write as _;

use decarb_experiments::{registry, Context};

/// Prints one line, tolerating a closed pipe (`repro --list | head`).
fn say(line: std::fmt::Arguments<'_>) {
    let _ = writeln!(std::io::stdout(), "{line}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--json] [--list] <experiment-id>... | all");
        eprintln!("experiments: {}", registry::ids().join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for experiment in registry::all() {
            say(format_args!(
                "{:<14} {}",
                experiment.id(),
                experiment.description()
            ));
        }
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let ctx = Context::default();

    // `all` routes through the parallel registry runner; explicit ids run
    // in the order given.
    if ids.iter().any(|a| a == "all") {
        for run in registry::run_all(&ctx) {
            emit(&run.tables, json);
        }
        return;
    }
    let mut failed = false;
    for id in &ids {
        match registry::find(id) {
            Some(experiment) => emit(&experiment.run(&ctx), json),
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn emit(tables: &[decarb_experiments::ExperimentTable], json: bool) {
    for table in tables {
        if json {
            say(format_args!("{}", table.to_json().pretty()));
        } else {
            say(format_args!("{table}"));
        }
    }
}
