//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro all                 # run every experiment
//! repro fig5 fig6a          # run selected experiments
//! repro --list              # list experiment ids
//! repro --json fig3a        # emit JSON instead of text tables
//! ```

use decarb_experiments::{run_experiment, Context, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--json] [--list] <experiment-id>... | all");
        eprintln!("experiments: {}", EXPERIMENT_IDS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    let mut ids: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if ids.iter().any(|a| a == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }
    let ctx = Context::default();
    let mut failed = false;
    for id in &ids {
        match run_experiment(&ctx, id) {
            Some(tables) => {
                for table in tables {
                    if json {
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&table).expect("tables serialize cleanly")
                        );
                    } else {
                        println!("{table}");
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
