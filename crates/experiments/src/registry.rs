//! The experiment registry: every figure, table, and extension study
//! behind one [`Experiment`] trait.
//!
//! The experiment modules themselves are private to this crate; the only
//! way to reach them is through the registry — [`find`] an experiment by
//! id (or iterate [`all`]) and call [`Experiment::run`]. This gives every
//! consumer (the `repro` binary, `decarb-cli run`, the bench harness,
//! tests) the same uniform pipeline, and lets [`run_all`] fan the whole
//! suite out across threads with `decarb_par`.

use std::time::Instant;

use decarb_json::Value;
use decarb_par::par_map;

use crate::context::Context;
use crate::table::ExperimentTable;
use crate::{
    ext, ext_elastic, ext_embodied, ext_forecast, ext_grid, ext_pareto, ext_rank, ext_scenarios,
    ext_sim, fig1, fig10, fig11, fig12, fig3, fig4, fig5, fig6, fig7to9, table1,
};

/// One registered experiment: a stable id, a human-readable description,
/// and a uniform `run` entry point producing the figure's tables.
pub trait Experiment: Sync {
    /// Stable identifier accepted by `repro` and `decarb-cli run`.
    fn id(&self) -> &'static str;

    /// One-line description shown by `list`.
    fn description(&self) -> &'static str;

    /// Recomputes the experiment and renders its tables.
    fn run(&self, ctx: &Context) -> Vec<ExperimentTable>;

    /// Runs the experiment and packages the result as a JSON value
    /// (`{id, description, tables: [...]}`).
    fn run_json(&self, ctx: &Context) -> Value {
        let tables = self.run(ctx);
        Value::object([
            ("id", Value::from(self.id())),
            ("description", Value::from(self.description())),
            (
                "tables",
                Value::Array(tables.iter().map(ExperimentTable::to_json).collect()),
            ),
        ])
    }
}

/// A registry row: the concrete [`Experiment`] every module registers as.
struct Entry {
    id: &'static str,
    description: &'static str,
    runner: fn(&Context) -> Vec<ExperimentTable>,
}

impl Experiment for Entry {
    fn id(&self) -> &'static str {
        self.id
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn run(&self, ctx: &Context) -> Vec<ExperimentTable> {
        (self.runner)(ctx)
    }
}

/// The static registry, in the paper's presentation order.
static ENTRIES: &[Entry] = &[
    Entry {
        id: "table1",
        description: "Table 1: cloud workload dimensions, lengths, and slack classes",
        runner: |_| vec![table1::run()],
    },
    Entry {
        id: "fig1",
        description: "Fig 1: example carbon traces and generation mix of three zones",
        runner: |ctx| fig1::run(ctx).tables(),
    },
    Entry {
        id: "fig3a",
        description: "Fig 3(a): annual mean CI vs average daily CV, 123 regions, 2022",
        runner: |ctx| vec![fig3::run_a(ctx).table()],
    },
    Entry {
        id: "fig3b",
        description: "Fig 3(b): 2020-2022 drift in mean/CV with K-Means++ clustering",
        runner: |ctx| vec![fig3::run_b(ctx).table()],
    },
    Entry {
        id: "fig4",
        description: "Fig 4: periodicity scores of 40 hyperscale regions",
        runner: |ctx| vec![fig4::run(ctx).table()],
    },
    Entry {
        id: "fig5",
        description: "Fig 5(a-c): capacity-constrained spatial shifting",
        runner: |ctx| fig5::run(ctx).tables(),
    },
    Entry {
        id: "fig6a",
        description: "Fig 6(a): spatial shifting under capacity plus latency SLOs",
        runner: |ctx| vec![fig6::run_a(ctx).table()],
    },
    Entry {
        id: "fig6b",
        description: "Fig 6(b): single-migration vs unlimited-migration bounds",
        runner: |ctx| vec![fig6::run_b(ctx).table()],
    },
    Entry {
        id: "fig7",
        description: "Fig 7: ideal deferral savings by job length",
        runner: |ctx| vec![fig7to9::run(ctx).fig7_table()],
    },
    Entry {
        id: "fig8",
        description: "Fig 8: interruptibility savings on top of deferral",
        runner: |ctx| vec![fig7to9::run(ctx).fig8_table()],
    },
    Entry {
        id: "fig9",
        description: "Fig 9: temporal savings vs slack budget",
        runner: |ctx| vec![fig7to9::run(ctx).fig9_table()],
    },
    Entry {
        id: "fig10",
        description: "Fig 10(a-d): workload-weighted temporal reductions",
        runner: |ctx| fig10::run(ctx).tables(),
    },
    Entry {
        id: "fig11a",
        description: "Fig 11(a): reduction vs migratable workload fraction",
        runner: |ctx| vec![fig11::run_a(ctx).table()],
    },
    Entry {
        id: "fig11b",
        description: "Fig 11(b): carbon increase vs forecast error",
        runner: |ctx| vec![fig11::run_b(ctx).table()],
    },
    Entry {
        id: "fig11cd",
        description: "Fig 11(c,d): California emissions vs renewable penetration",
        runner: |ctx| vec![fig11::run_cd(ctx).table()],
    },
    Entry {
        id: "fig12",
        description: "Fig 12: combined spatial + temporal decomposition",
        runner: |ctx| vec![fig12::run(ctx).table()],
    },
    Entry {
        id: "ext",
        description: "Ext: suspend overhead, migration budget, and workflow splitting",
        runner: |ctx| ext::run(ctx).tables(),
    },
    Entry {
        id: "ext-forecast",
        description: "Ext: real forecasters replacing the paper's uniform error model",
        runner: |ctx| ext_forecast::run(ctx).tables(),
    },
    Entry {
        id: "ext-grid",
        description: "Ext: average vs marginal CI; datacenter as flexible grid load",
        runner: |_| ext_grid::run().tables(),
    },
    Entry {
        id: "ext-embodied",
        description: "Ext: embodied cost of idle capacity and the net-footprint optimum",
        runner: |ctx| ext_embodied::run(ctx).tables(),
    },
    Entry {
        id: "ext-sim",
        description: "Ext: online policies vs clairvoyant bounds; overhead erosion",
        runner: |ctx| ext_sim::run(ctx).tables(),
    },
    Entry {
        id: "ext-elastic",
        description: "Ext: CarbonScaler-style elastic scaling",
        runner: |ctx| ext_elastic::run(ctx).tables(),
    },
    Entry {
        id: "ext-rank",
        description: "Ext: rank-order stability of regional carbon intensity",
        runner: |ctx| ext_rank::run(ctx).tables(),
    },
    Entry {
        id: "ext-pareto",
        description: "Ext: carbon-delay frontier and online latency-SLO routing",
        runner: |ctx| ext_pareto::run(ctx).tables(),
    },
    Entry {
        id: "ext-scenarios",
        description: "Ext: scenario matrix — savings vs the agnostic baseline across workload x policy x geography",
        runner: |ctx| ext_scenarios::run(ctx).tables(),
    },
];

/// Iterates every registered experiment, in presentation order.
pub fn all() -> impl Iterator<Item = &'static dyn Experiment> {
    ENTRIES.iter().map(|e| e as &dyn Experiment)
}

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    ENTRIES.iter().find(|e| e.id == id).map(|e| e as _)
}

/// All registered experiment ids, in presentation order.
pub fn ids() -> Vec<&'static str> {
    ENTRIES.iter().map(|e| e.id).collect()
}

/// Number of registered experiments.
pub fn count() -> usize {
    ENTRIES.len()
}

/// One completed experiment run: what `run_all` hands back per entry.
pub struct CompletedRun {
    /// The experiment's id.
    pub id: &'static str,
    /// The experiment's description.
    pub description: &'static str,
    /// The rendered tables.
    pub tables: Vec<ExperimentTable>,
    /// Wall-clock runtime of this experiment.
    pub elapsed: std::time::Duration,
}

impl CompletedRun {
    /// Packages the run as JSON (`{id, description, elapsed_s, tables}`).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("id", Value::from(self.id)),
            ("description", Value::from(self.description)),
            ("elapsed_s", Value::from(self.elapsed.as_secs_f64())),
            (
                "tables",
                Value::Array(self.tables.iter().map(ExperimentTable::to_json).collect()),
            ),
        ])
    }
}

/// Runs every registered experiment against `ctx`, fanning out across
/// threads; results come back in registry order.
pub fn run_all(ctx: &Context) -> Vec<CompletedRun> {
    let entries: Vec<&Entry> = ENTRIES.iter().collect();
    par_map(&entries, |entry| {
        let started = Instant::now();
        let tables = entry.run(ctx);
        CompletedRun {
            id: entry.id,
            description: entry.description,
            tables,
            elapsed: started.elapsed(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonempty() {
        let ids = ids();
        assert_eq!(ids.len(), count());
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate experiment id");
        for experiment in all() {
            assert!(!experiment.id().is_empty());
            assert!(!experiment.description().is_empty());
        }
    }

    #[test]
    fn find_roundtrips_every_id() {
        for experiment in all() {
            let found = find(experiment.id()).expect("registered id resolves");
            assert_eq!(found.id(), experiment.id());
        }
        assert!(find("fig99").is_none());
    }

    #[test]
    fn every_experiment_is_runnable() {
        // Run the full registry through the shared context (sweeps are
        // memoized across experiments, as in a real `run all`).
        let ctx = crate::context::shared();
        for run in run_all(ctx) {
            assert!(!run.tables.is_empty(), "{} produced no tables", run.id);
            for table in &run.tables {
                assert!(!table.columns.is_empty(), "{}: headerless table", run.id);
                assert!(!table.rows.is_empty(), "{}: empty table", run.id);
                let json = run.to_json();
                assert_eq!(json.get("id"), Some(&Value::from(run.id)));
            }
        }
    }
}
