//! Fig. 4: periodicity scores for the 40 hyperscale datacenter regions.
//!
//! The paper finds 87 % of those regions show a 24-hour period with score
//! ≥ 0.5, most also show a 168-hour (weekly) period, and Hong Kong and
//! Indonesia show no periodicity at all.

use decarb_stats::periodicity::periodicity_score;
use decarb_traces::catalog::hyperscale_regions;
use decarb_traces::time::{hours_in_year, year_start};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, f2, ExperimentTable};

/// One region's periodicity row.
#[derive(Debug, Clone)]
pub struct PeriodicityRow {
    /// Zone code.
    pub code: String,
    /// 2022 annual mean CI (the figure's x-ordering).
    pub mean: f64,
    /// Score of the 24-hour period.
    pub daily_score: f64,
    /// Score of the 168-hour period.
    pub weekly_score: f64,
}

/// Fig. 4 results.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Rows ordered by ascending mean CI, as in the figure.
    pub rows: Vec<PeriodicityRow>,
    /// Number of regions with a daily score of at least 0.5.
    pub daily_above_half: usize,
    /// Zone codes with (near) zero periodicity.
    pub aperiodic: Vec<String>,
}

/// Runs the Fig. 4 analysis.
pub fn run(ctx: &Context) -> Fig4 {
    let start = year_start(EVAL_YEAR);
    let len = hours_in_year(EVAL_YEAR);
    let rows: Vec<PeriodicityRow> = hyperscale_regions()
        .iter()
        .map(|region| {
            let series = ctx.data().series(&region.code).expect("hyperscale trace");
            let window = series.window(start, len).expect("year in horizon");
            PeriodicityRow {
                code: region.code.clone(),
                mean: window.iter().sum::<f64>() / len as f64,
                daily_score: periodicity_score(window, 24),
                weekly_score: periodicity_score(window, 168),
            }
        })
        .collect();
    let daily_above_half = rows.iter().filter(|r| r.daily_score >= 0.5).count();
    let aperiodic = rows
        .iter()
        .filter(|r| r.daily_score < 0.1 && r.weekly_score < 0.1)
        .map(|r| r.code.clone())
        .collect();
    Fig4 {
        rows,
        daily_above_half,
        aperiodic,
    }
}

impl Fig4 {
    /// Renders the Fig. 4 table.
    pub fn table(&self) -> ExperimentTable {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.code.to_string(),
                    f1(r.mean),
                    f2(r.daily_score),
                    f2(r.weekly_score),
                ]
            })
            .collect();
        rows.push(vec![
            "-- daily score >= 0.5".into(),
            format!("{}/40", self.daily_above_half),
            String::new(),
            String::new(),
        ]);
        rows.push(vec![
            "-- aperiodic zones".into(),
            self.aperiodic.join(", "),
            String::new(),
            String::new(),
        ]);
        ExperimentTable::new(
            "fig4",
            "Fig 4: periodicity scores, 40 hyperscale regions (ordered by mean CI)",
            vec![
                "zone".into(),
                "mean".into(),
                "24h score".into(),
                "168h score".into(),
            ],
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let ctx = Context::default();
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), 40);
        // §4.3: 35 of 40 (87 %) show a 24 h period with score ≥ 0.5. We
        // require at least 30 to hold the shape.
        assert!(
            fig.daily_above_half >= 30,
            "only {}/40 regions above 0.5",
            fig.daily_above_half
        );
        // Hong Kong and Indonesia are the aperiodic pair.
        assert!(
            fig.aperiodic.iter().any(|c| c == "HK"),
            "{:?}",
            fig.aperiodic
        );
        assert!(
            fig.aperiodic.iter().any(|c| c == "ID"),
            "{:?}",
            fig.aperiodic
        );
        assert!(fig.aperiodic.len() <= 5, "{:?}", fig.aperiodic);
        // Rows are ordered by mean CI with Sweden first.
        assert_eq!(fig.rows[0].code, "SE");
        for pair in fig.rows.windows(2) {
            assert!(pair[0].mean <= pair[1].mean + 1e-9);
        }
        // US-WA is the paper's perfectly periodic example.
        let wa = fig.rows.iter().find(|r| r.code == "US-WA").unwrap();
        assert!(wa.daily_score > 0.6, "US-WA {:.2}", wa.daily_score);
    }

    #[test]
    fn table_renders_counts() {
        let ctx = Context::default();
        let t = format!("{}", run(&ctx).table());
        assert!(t.contains("daily score >= 0.5"));
        assert!(t.contains("HK"));
    }
}
