//! Fig. 3: the global carbon analysis (§4.1, §4.2).
//!
//! * Fig. 3(a): each region's 2022 annual mean CI against its average
//!   daily CV, the quadrant structure, and the headline shares (46 % of
//!   regions above 400 g, > 70 % below 0.1 daily CV, ≈ 40× max/min).
//! * Fig. 3(b): the 2020→2022 change in mean and daily CV, clustered with
//!   K-Means++ (k = 3), and the ±25 g insignificance band.

use decarb_stats::daily::average_daily_cv;
use decarb_stats::kmeans;
use decarb_traces::time::{hours_in_year, year_start};

use crate::context::Context;
use crate::table::{f1, f2, pct, ExperimentTable};

/// One region's point in Fig. 3(a).
#[derive(Debug, Clone)]
pub struct MeanCvPoint {
    /// Zone code.
    pub code: String,
    /// 2022 annual mean CI.
    pub mean: f64,
    /// 2022 average daily CV.
    pub daily_cv: f64,
}

/// Fig. 3(a) results.
#[derive(Debug, Clone)]
pub struct Fig3a {
    /// All 123 region points.
    pub points: Vec<MeanCvPoint>,
    /// Fraction of regions with mean above 400 g.
    pub above_400_frac: f64,
    /// Fraction of regions with daily CV below 0.1.
    pub low_cv_frac: f64,
    /// Max/min spread of annual means.
    pub spread: f64,
    /// Quadrant counts (low/low, low/high, high/low, high/high) relative
    /// to the cross-region averages.
    pub quadrants: [usize; 4],
}

/// Computes per-region `(mean, daily CV)` for a year.
fn mean_cv_points(ctx: &Context, year: i32) -> Vec<MeanCvPoint> {
    let start = year_start(year);
    let len = hours_in_year(year);
    ctx.data()
        .iter()
        .map(|(region, series)| {
            let window = series.window(start, len).expect("year in horizon");
            MeanCvPoint {
                code: region.code.clone(),
                mean: window.iter().sum::<f64>() / len as f64,
                daily_cv: average_daily_cv(window),
            }
        })
        .collect()
}

/// Runs the Fig. 3(a) analysis for 2022.
pub fn run_a(ctx: &Context) -> Fig3a {
    let points = mean_cv_points(ctx, 2022);
    let n = points.len() as f64;
    let above_400_frac = points.iter().filter(|p| p.mean > 400.0).count() as f64 / n;
    let low_cv_frac = points.iter().filter(|p| p.daily_cv < 0.1).count() as f64 / n;
    let max = points.iter().map(|p| p.mean).fold(f64::MIN, f64::max);
    let min = points.iter().map(|p| p.mean).fold(f64::MAX, f64::min);
    let mean_of_means = points.iter().map(|p| p.mean).sum::<f64>() / n;
    let mean_of_cvs = points.iter().map(|p| p.daily_cv).sum::<f64>() / n;
    let mut quadrants = [0usize; 4];
    for p in &points {
        let hi_ci = p.mean >= mean_of_means;
        let hi_cv = p.daily_cv >= mean_of_cvs;
        quadrants[usize::from(hi_ci) * 2 + usize::from(hi_cv)] += 1;
    }
    Fig3a {
        points,
        above_400_frac,
        low_cv_frac,
        spread: max / min,
        quadrants,
    }
}

impl Fig3a {
    /// Renders the Fig. 3(a) summary table.
    pub fn table(&self) -> ExperimentTable {
        let mut rows = vec![
            vec!["regions".into(), self.points.len().to_string()],
            vec!["above 400 g".into(), pct(self.above_400_frac * 100.0)],
            vec!["daily CV < 0.1".into(), pct(self.low_cv_frac * 100.0)],
            vec!["max/min spread".into(), format!("{:.0}x", self.spread)],
            vec![
                "quadrants (CI/CV: ll,lh,hl,hh)".into(),
                format!(
                    "{}, {}, {}, {}",
                    self.quadrants[0], self.quadrants[1], self.quadrants[2], self.quadrants[3]
                ),
            ],
        ];
        // Representative extremes, as the paper highlights.
        for code in ["SE", "US-CA", "IN-WE"] {
            if let Some(p) = self.points.iter().find(|p| p.code == code) {
                rows.push(vec![
                    format!("{} (mean, dailyCV)", p.code),
                    format!("{}, {}", f1(p.mean), f2(p.daily_cv)),
                ]);
            }
        }
        ExperimentTable::new(
            "fig3a",
            "Fig 3(a): mean CI vs average daily CV, 2022",
            vec!["metric".into(), "value".into()],
            rows,
        )
    }
}

/// One region's point in Fig. 3(b) with its cluster assignment.
#[derive(Debug, Clone)]
pub struct DriftPoint {
    /// Zone code.
    pub code: String,
    /// Change in annual mean CI, 2020 → 2022 (g).
    pub delta_ci: f64,
    /// Change in average daily CV, 2020 → 2022.
    pub delta_cv: f64,
    /// K-Means cluster index (0..3).
    pub cluster: usize,
}

/// Fig. 3(b) results.
#[derive(Debug, Clone)]
pub struct Fig3b {
    /// All 123 drift points.
    pub points: Vec<DriftPoint>,
    /// Fraction of regions whose CI fell by more than 25 g.
    pub decarbonizing_frac: f64,
    /// Fraction whose CI rose by more than 25 g.
    pub increasing_frac: f64,
    /// Fraction within the ±25 g insignificance band.
    pub stable_frac: f64,
    /// K-Means centroids in `(ΔCI, ΔCV)` space.
    pub centroids: Vec<Vec<f64>>,
}

/// Runs the Fig. 3(b) analysis (2020 → 2022 drift, K-Means++ k = 3).
pub fn run_b(ctx: &Context) -> Fig3b {
    let base = mean_cv_points(ctx, 2020);
    let now = mean_cv_points(ctx, 2022);
    let deltas: Vec<(&str, f64, f64)> = base
        .iter()
        .zip(&now)
        .map(|(b, n)| (n.code.as_str(), n.mean - b.mean, n.daily_cv - b.daily_cv))
        .collect();
    // Cluster on (ΔCI, scaled ΔCV) as the artifact does; CV deltas are two
    // orders of magnitude smaller, so scale them up for K-Means.
    let points_2d: Vec<Vec<f64>> = deltas
        .iter()
        .map(|(_, dci, dcv)| vec![*dci, dcv * 500.0])
        .collect();
    let clustering = kmeans::kmeans(&points_2d, 3, 0xF1B3, 200).expect("non-empty input");
    let n = deltas.len() as f64;
    let decarbonizing = deltas.iter().filter(|(_, d, _)| *d < -25.0).count() as f64 / n;
    let increasing = deltas.iter().filter(|(_, d, _)| *d > 25.0).count() as f64 / n;
    Fig3b {
        points: deltas
            .iter()
            .zip(&clustering.assignments)
            .map(|((code, dci, dcv), &cluster)| DriftPoint {
                code: code.to_string(),
                delta_ci: *dci,
                delta_cv: *dcv,
                cluster,
            })
            .collect(),
        decarbonizing_frac: decarbonizing,
        increasing_frac: increasing,
        stable_frac: 1.0 - decarbonizing - increasing,
        centroids: clustering.centroids,
    }
}

impl Fig3b {
    /// Renders the Fig. 3(b) summary table.
    pub fn table(&self) -> ExperimentTable {
        let mut rows = vec![
            vec![
                "CI fell > 25 g (decarbonizing)".into(),
                pct(self.decarbonizing_frac * 100.0),
            ],
            vec![
                "CI rose > 25 g (increasing)".into(),
                pct(self.increasing_frac * 100.0),
            ],
            vec![
                "within +/-25 g (stable)".into(),
                pct(self.stable_frac * 100.0),
            ],
        ];
        for (i, c) in self.centroids.iter().enumerate() {
            let members = self.points.iter().filter(|p| p.cluster == i).count();
            rows.push(vec![
                format!("cluster {i} centroid (dCI, dCV)"),
                format!("{}, {} ({} regions)", f1(c[0]), f2(c[1] / 500.0), members),
            ]);
        }
        for (label, point) in [
            (
                "largest CI fall",
                self.points
                    .iter()
                    .min_by(|a, b| a.delta_ci.total_cmp(&b.delta_ci)),
            ),
            (
                "largest CI rise",
                self.points
                    .iter()
                    .max_by(|a, b| a.delta_ci.total_cmp(&b.delta_ci)),
            ),
        ] {
            if let Some(p) = point {
                rows.push(vec![
                    label.into(),
                    format!("{} ({:+.1} g, dCV {:+.3})", p.code, p.delta_ci, p.delta_cv),
                ]);
            }
        }
        ExperimentTable::new(
            "fig3b",
            "Fig 3(b): change in mean CI and daily CV, 2020-2022 (K-Means++ k=3)",
            vec!["metric".into(), "value".into()],
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_headline_claims_hold() {
        let ctx = Context::default();
        let fig = run_a(&ctx);
        assert_eq!(fig.points.len(), 123);
        // §4.1: 46 % above 400 g (we tolerate ±10 points).
        assert!(
            (0.36..0.56).contains(&fig.above_400_frac),
            "above-400 {:.2}",
            fig.above_400_frac
        );
        // §1: > 70 % of regions below 0.1 daily CV.
        assert!(fig.low_cv_frac > 0.70, "low-CV {:.2}", fig.low_cv_frac);
        // §4.1: ≈ 40× spread.
        assert!(
            (25.0..60.0).contains(&fig.spread),
            "spread {:.0}",
            fig.spread
        );
        assert_eq!(fig.quadrants.iter().sum::<usize>(), 123);
    }

    #[test]
    fn fig3b_cluster_shares_match_paper() {
        let ctx = Context::default();
        let fig = run_b(&ctx);
        // §4.2: ≈ 23 % decarbonizing, ≈ 20 % increasing, ≈ 57 % stable.
        assert!(
            (0.10..0.32).contains(&fig.decarbonizing_frac),
            "decarb {:.2}",
            fig.decarbonizing_frac
        );
        assert!(
            (0.10..0.30).contains(&fig.increasing_frac),
            "incr {:.2}",
            fig.increasing_frac
        );
        assert!(
            (0.45..0.75).contains(&fig.stable_frac),
            "stable {:.2}",
            fig.stable_frac
        );
        assert_eq!(fig.centroids.len(), 3);
        // Every region got a cluster.
        assert!(fig.points.iter().all(|p| p.cluster < 3));
    }

    #[test]
    fn tables_render() {
        let ctx = Context::default();
        let a = format!("{}", run_a(&ctx).table());
        assert!(a.contains("max/min spread"));
        let b = format!("{}", run_b(&ctx).table());
        assert!(b.contains("cluster 2 centroid"));
    }
}
