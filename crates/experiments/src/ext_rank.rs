//! Extension: verifying §5.1.4's rank-stability premise directly.
//!
//! Fig. 6(b) shows the *consequence* of stable rankings (∞-migration
//! barely beats 1-migration); this experiment measures the premise
//! itself. For the whole 123-region set and for the latency-realistic
//! case of regions within one geographic grouping, it reports Kendall's τ
//! between hourly and annual rankings, how often the instantaneous
//! greenest region is the annual greenest, and the top-5 set overlap.

use decarb_core::rankings::{rank_stability, RankStability};
use decarb_traces::{GeoGroup, TraceSet};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f2, pct, ExperimentTable};

/// One region-set's stability row.
#[derive(Debug, Clone)]
pub struct RankRow {
    /// Region-set label.
    pub set: String,
    /// Number of regions ranked.
    pub regions: usize,
    /// The stability statistics.
    pub stability: RankStability,
}

/// Extension results.
#[derive(Debug, Clone)]
pub struct ExtRank {
    /// Global set plus per-grouping rows.
    pub rows: Vec<RankRow>,
}

const STRIDE: usize = 73; // ≈ 120 samples per year.

fn subset(ctx: &Context, group: GeoGroup) -> TraceSet {
    let pairs = ctx
        .data()
        .iter()
        .filter(|(r, _)| r.group == group)
        .map(|(r, s)| (r.clone(), s.clone()))
        .collect();
    TraceSet::from_series(pairs)
}

/// Runs the rank-stability extension.
pub fn run(ctx: &Context) -> ExtRank {
    let mut rows = vec![RankRow {
        set: "global (123 regions)".into(),
        regions: ctx.data().len(),
        stability: rank_stability(ctx.data(), EVAL_YEAR, STRIDE, 5),
    }];
    for group in GeoGroup::ALL {
        let set = subset(ctx, group);
        if set.len() < 5 {
            continue;
        }
        let k = 3.min(set.len());
        rows.push(RankRow {
            set: group.label().to_string(),
            regions: set.len(),
            stability: rank_stability(&set, EVAL_YEAR, STRIDE, k),
        });
    }
    ExtRank { rows }
}

impl ExtRank {
    /// Renders the stability table.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        vec![ExperimentTable::new(
            "ext-rank",
            "Ext: rank-order stability of regional CI (hourly vs annual ranking)",
            vec![
                "region set".into(),
                "n".into(),
                "mean tau".into(),
                "min tau".into(),
                "greenest match".into(),
                "top-k overlap".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.set.clone(),
                        r.regions.to_string(),
                        f2(r.stability.mean_tau),
                        f2(r.stability.min_tau),
                        pct(r.stability.greenest_match * 100.0),
                        pct(r.stability.topk_overlap * 100.0),
                    ]
                })
                .collect(),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn ext() -> &'static ExtRank {
        static EXT: OnceLock<ExtRank> = OnceLock::new();
        EXT.get_or_init(|| run(shared()))
    }

    #[test]
    fn global_ranking_is_highly_stable() {
        let global = &ext().rows[0];
        assert_eq!(global.regions, 123);
        assert!(
            global.stability.mean_tau > 0.85,
            "{}",
            global.stability.mean_tau
        );
        assert!(global.stability.greenest_match > 0.9);
        assert!(global.stability.topk_overlap > 0.8);
    }

    #[test]
    fn groupings_are_less_stable_than_the_global_set() {
        // Within a grouping, regions are closer in CI, so rankings cross
        // more — exactly where the paper's conclusion expects future
        // sophisticated policies to matter.
        let rows = &ext().rows;
        let global_tau = rows[0].stability.mean_tau;
        let min_group_tau = rows[1..]
            .iter()
            .map(|r| r.stability.mean_tau)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_group_tau < global_tau,
            "some grouping must churn more than the global set ({min_group_tau} vs {global_tau})"
        );
    }

    #[test]
    fn every_row_is_internally_consistent() {
        for r in &ext().rows {
            assert!(r.stability.mean_tau >= r.stability.min_tau);
            assert!((0.0..=1.0).contains(&r.stability.greenest_match));
            assert!((0.0..=1.0).contains(&r.stability.topk_overlap));
            assert!(r.stability.samples > 100);
        }
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 1);
        assert!(format!("{}", tables[0]).contains("mean tau"));
    }
}
