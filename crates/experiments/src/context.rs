//! Shared experiment context: the dataset plus memoized temporal sweeps.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use decarb_core::temporal::TemporalPlanner;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::{builtin_dataset, Region, TraceSet};

/// The evaluation year used throughout the experiments (matches the
/// paper's headline 2022 analysis).
pub const EVAL_YEAR: i32 = 2022;

/// Per-region, per-configuration temporal statistics, normalized per job
/// hour (g·CO2eq/kWh-equivalent).
#[derive(Debug, Clone)]
pub struct RegionTemporal {
    /// Zone code.
    pub code: String,
    /// Mean baseline cost per job hour across all arrivals.
    pub baseline_per_h: f64,
    /// Mean deferred cost per job hour.
    pub deferred_per_h: f64,
    /// Mean deferrable+interruptible cost per job hour.
    pub interruptible_per_h: f64,
}

impl RegionTemporal {
    /// Deferral saving per job hour.
    pub fn deferral_saving(&self) -> f64 {
        self.baseline_per_h - self.deferred_per_h
    }

    /// Extra saving unlocked by interruptibility, per job hour.
    pub fn interrupt_extra_saving(&self) -> f64 {
        self.deferred_per_h - self.interruptible_per_h
    }

    /// Total deferral+interruptibility saving per job hour.
    pub fn total_saving(&self) -> f64 {
        self.baseline_per_h - self.interruptible_per_h
    }
}

/// Memoized per-`(slots, slack)` sweep results. Each key holds a
/// compute-once cell so concurrent first callers (e.g. figs 7–10
/// scheduled on different `run_all` workers) block on one computation
/// instead of all recomputing the sweep.
type SweepCell = Arc<std::sync::OnceLock<Arc<Vec<RegionTemporal>>>>;
type SweepMemo = Mutex<HashMap<(usize, usize), SweepCell>>;

/// Shared state for all experiments: the dataset and a sweep memo so
/// figures 7–10 reuse each other's computations.
pub struct Context {
    data: Arc<TraceSet>,
    memo: SweepMemo,
}

impl Default for Context {
    fn default() -> Self {
        Self::new(builtin_dataset())
    }
}

/// Returns a process-wide shared context so experiments (and their tests)
/// reuse memoized sweeps.
pub fn shared() -> &'static Context {
    static SHARED: std::sync::OnceLock<Context> = std::sync::OnceLock::new();
    SHARED.get_or_init(Context::default)
}

impl Context {
    /// Creates a context over an explicit dataset.
    pub fn new(data: Arc<TraceSet>) -> Self {
        Self {
            data,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the dataset.
    pub fn data(&self) -> &TraceSet {
        &self.data
    }

    /// Returns the dataset's regions.
    pub fn regions(&self) -> &[Region] {
        self.data.regions()
    }

    /// Computes (or returns memoized) per-region temporal statistics for a
    /// `slots`-hour job with `slack` hours of slack, averaged over every
    /// arrival of [`EVAL_YEAR`].
    ///
    /// The 123 per-region sweeps are independent, so they fan out across
    /// threads with `decarb_par`; the memo keeps figures 7–10 reusing
    /// each other's results.
    pub fn temporal_stats(&self, slots: usize, slack: usize) -> Arc<Vec<RegionTemporal>> {
        // Grab (or install) the key's compute-once cell under the map
        // lock, then compute outside it so other keys stay unblocked.
        let cell: SweepCell = self
            .memo
            .lock()
            .expect("memo lock")
            .entry((slots, slack))
            .or_default()
            .clone();
        cell.get_or_init(|| {
            let start = year_start(EVAL_YEAR);
            let count = hours_in_year(EVAL_YEAR);
            let pairs: Vec<_> = self.data.iter().collect();
            let result: Vec<RegionTemporal> = decarb_par::par_map(&pairs, |(region, series)| {
                let planner = TemporalPlanner::new(series);
                let baseline = planner.baseline_sweep(start, count, slots);
                let deferred = planner.deferral_sweep(start, count, slots, slack);
                let interruptible = planner.interruptible_sweep(start, count, slots, slack);
                let n = count as f64;
                let per_h = |total: f64| total / n / slots as f64;
                RegionTemporal {
                    code: region.code.clone(),
                    baseline_per_h: per_h(baseline.iter().sum()),
                    deferred_per_h: per_h(deferred.iter().sum()),
                    interruptible_per_h: per_h(interruptible.iter().sum()),
                }
            });
            Arc::new(result)
        })
        .clone()
    }

    /// Averages a per-region statistic over all regions.
    pub fn global_mean_of(stats: &[RegionTemporal], f: impl Fn(&RegionTemporal) -> f64) -> f64 {
        stats.iter().map(f).sum::<f64>() / stats.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_same_arc() {
        let ctx = Context::default();
        let a = ctx.temporal_stats(1, 24);
        let b = ctx.temporal_stats(1, 24);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 123);
    }

    #[test]
    fn orderings_hold_per_region() {
        let ctx = Context::default();
        let stats = ctx.temporal_stats(6, 24);
        for s in stats.iter() {
            assert!(s.deferred_per_h <= s.baseline_per_h + 1e-9, "{}", s.code);
            assert!(
                s.interruptible_per_h <= s.deferred_per_h + 1e-9,
                "{}",
                s.code
            );
            assert!(s.deferral_saving() >= -1e-9);
            assert!(s.interrupt_extra_saving() >= -1e-9);
            assert!(
                (s.total_saving() - (s.deferral_saving() + s.interrupt_extra_saving())).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn baseline_matches_annual_mean() {
        let ctx = Context::default();
        let stats = ctx.temporal_stats(1, 24);
        let means = ctx.data().annual_means(EVAL_YEAR);
        for (s, (region, mean)) in stats.iter().zip(means) {
            assert_eq!(s.code, region.code);
            // The average 1-hour baseline over all arrivals is the annual
            // mean CI (up to boundary clamping of the final arrivals).
            assert!(
                (s.baseline_per_h - mean).abs() < 1.0,
                "{}: {} vs {}",
                s.code,
                s.baseline_per_h,
                mean
            );
        }
    }
}
