//! Reproduction harness: one module per figure/table of the paper.
//!
//! Every module exposes a `run(&Context) -> <FigureResult>` function whose
//! result is `serde::Serialize` (for `repro --json`) and convertible to a
//! text [`table::ExperimentTable`] printing the same rows/series the paper
//! reports. `EXPERIMENTS.md` records the paper-value vs measured-value
//! comparison for each.
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`table1`]  | Table 1 (workload dimensions) |
//! | [`fig1`]    | Fig. 1 (example traces + generation mix) |
//! | [`fig3`]    | Fig. 3(a) mean/CV map, Fig. 3(b) 2020→2022 drift + K-Means |
//! | [`fig4`]    | Fig. 4 (periodicity scores, 40 hyperscale regions) |
//! | [`fig5`]    | Fig. 5(a–c) capacity-constrained spatial shifting |
//! | [`fig6`]    | Fig. 6(a) capacity+latency, 6(b) 1- vs ∞-migration |
//! | [`fig7to9`] | Figs. 7, 8, 9 (deferral / interruptibility bounds) |
//! | [`fig10`]   | Fig. 10(a–d) workload-weighted temporal reductions |
//! | [`fig11`]   | Fig. 11(a) mixed, (b) forecast error, (c,d) greener grids |
//! | [`fig12`]   | Fig. 12 (combined spatial + temporal decomposition) |
//!
//! The `ext*` modules go beyond the paper's figures (see DESIGN.md §2.0):
//!
//! | Module | Extends |
//! |--------|---------|
//! | [`ext`]          | suspend overhead, migration budget, workflow splitting |
//! | [`ext_forecast`] | real forecasters replacing §6.2's uniform error |
//! | [`ext_grid`]     | average vs marginal CI; datacenter as flexible grid load |
//! | [`ext_embodied`] | §5.3.1's embodied cost of idle capacity |
//! | [`ext_sim`]      | online policies vs clairvoyant bounds; overhead erosion |
//! | [`ext_elastic`]  | CarbonScaler-style elastic scaling |
//! | [`ext_rank`]     | §5.1.4's rank-stability premise, measured directly |
//! | [`ext_pareto`]   | carbon–delay frontier; online latency-SLO routing |

pub mod context;
pub mod ext;
pub mod ext_elastic;
pub mod ext_embodied;
pub mod ext_forecast;
pub mod ext_grid;
pub mod ext_pareto;
pub mod ext_rank;
pub mod ext_sim;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7to9;
pub mod table;
pub mod table1;

pub use context::Context;
pub use table::ExperimentTable;

/// All experiment identifiers accepted by the `repro` binary. `ext` runs
/// the original extension ablations (suspend overhead, migration budget,
/// workflow splitting); the `ext-*` ids cover the further extensions:
/// realistic forecasting, grid-side signals and flexible load, embodied
/// carbon, online simulation, and elastic scaling.
pub const EXPERIMENT_IDS: [&str; 24] = [
    "table1",
    "fig1",
    "fig3a",
    "fig3b",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11a",
    "fig11b",
    "fig11cd",
    "fig12",
    "ext",
    "ext-forecast",
    "ext-grid",
    "ext-embodied",
    "ext-sim",
    "ext-elastic",
    "ext-rank",
    "ext-pareto",
];

/// Runs one experiment by id and returns its rendered tables.
///
/// Returns `None` for an unknown id.
pub fn run_experiment(ctx: &Context, id: &str) -> Option<Vec<ExperimentTable>> {
    let tables = match id {
        "table1" => vec![table1::run()],
        "fig1" => fig1::run(ctx).tables(),
        "fig3a" => vec![fig3::run_a(ctx).table()],
        "fig3b" => vec![fig3::run_b(ctx).table()],
        "fig4" => vec![fig4::run(ctx).table()],
        "fig5" => fig5::run(ctx).tables(),
        "fig6a" => vec![fig6::run_a(ctx).table()],
        "fig6b" => vec![fig6::run_b(ctx).table()],
        "fig7" => vec![fig7to9::run(ctx).fig7_table()],
        "fig8" => vec![fig7to9::run(ctx).fig8_table()],
        "fig9" => vec![fig7to9::run(ctx).fig9_table()],
        "fig10" => fig10::run(ctx).tables(),
        "fig11a" => vec![fig11::run_a(ctx).table()],
        "fig11b" => vec![fig11::run_b(ctx).table()],
        "fig11cd" => vec![fig11::run_cd(ctx).table()],
        "fig12" => vec![fig12::run(ctx).table()],
        "ext" => ext::run(ctx).tables(),
        "ext-forecast" => ext_forecast::run(ctx).tables(),
        "ext-grid" => ext_grid::run().tables(),
        "ext-embodied" => ext_embodied::run(ctx).tables(),
        "ext-sim" => ext_sim::run(ctx).tables(),
        "ext-elastic" => ext_elastic::run(ctx).tables(),
        "ext-rank" => ext_rank::run(ctx).tables(),
        "ext-pareto" => ext_pareto::run(ctx).tables(),
        _ => return None,
    };
    Some(tables)
}
