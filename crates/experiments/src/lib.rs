//! Reproduction harness: one module per figure/table of the paper, all
//! registered behind the [`registry::Experiment`] trait.
//!
//! Every experiment module exposes a `run(&Context)` function whose
//! result renders to text [`table::ExperimentTable`]s printing the same
//! rows/series the paper reports; the modules are private and reachable
//! only through the [`registry`] — look an experiment up with
//! [`registry::find`] (or iterate [`registry::all`]) and call
//! [`registry::Experiment::run`]. [`registry::run_all`] fans the whole
//! suite out across threads. `EXPERIMENTS.md` records the paper-value vs
//! measured-value comparison for each.
//!
//! | Id | Reproduces |
//! |----|------------|
//! | `table1`  | Table 1 (workload dimensions) |
//! | `fig1`    | Fig. 1 (example traces + generation mix) |
//! | `fig3a`, `fig3b` | Fig. 3(a) mean/CV map, Fig. 3(b) 2020→2022 drift + K-Means |
//! | `fig4`    | Fig. 4 (periodicity scores, 40 hyperscale regions) |
//! | `fig5`    | Fig. 5(a–c) capacity-constrained spatial shifting |
//! | `fig6a`, `fig6b` | Fig. 6(a) capacity+latency, 6(b) 1- vs ∞-migration |
//! | `fig7`–`fig9` | Figs. 7, 8, 9 (deferral / interruptibility bounds) |
//! | `fig10`   | Fig. 10(a–d) workload-weighted temporal reductions |
//! | `fig11a`, `fig11b`, `fig11cd` | Fig. 11 mixed / forecast error / greener grids |
//! | `fig12`   | Fig. 12 (combined spatial + temporal decomposition) |
//!
//! The `ext*` ids go beyond the paper's figures (see DESIGN.md §2.0):
//!
//! | Id | Extends |
//! |----|---------|
//! | `ext`          | suspend overhead, migration budget, workflow splitting |
//! | `ext-forecast` | real forecasters replacing §6.2's uniform error |
//! | `ext-grid`     | average vs marginal CI; datacenter as flexible grid load |
//! | `ext-embodied` | §5.3.1's embodied cost of idle capacity |
//! | `ext-sim`      | online policies vs clairvoyant bounds; overhead erosion |
//! | `ext-elastic`  | CarbonScaler-style elastic scaling |
//! | `ext-rank`     | §5.1.4's rank-stability premise, measured directly |
//! | `ext-pareto`   | carbon–delay frontier; online latency-SLO routing |
//! | `ext-scenarios`| the scenario matrix condensed into the headline savings table |

pub mod context;
pub mod registry;
pub mod table;

mod ext;
mod ext_elastic;
mod ext_embodied;
mod ext_forecast;
mod ext_grid;
mod ext_pareto;
mod ext_rank;
mod ext_scenarios;
mod ext_sim;
mod fig1;
mod fig10;
mod fig11;
mod fig12;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig7to9;
mod table1;

pub use context::Context;
pub use registry::{CompletedRun, Experiment};
pub use table::ExperimentTable;

/// Runs one experiment by id and returns its rendered tables.
///
/// Returns `None` for an unknown id. Thin compatibility wrapper over
/// [`registry::find`] + [`Experiment::run`].
pub fn run_experiment(ctx: &Context, id: &str) -> Option<Vec<ExperimentTable>> {
    registry::find(id).map(|experiment| experiment.run(ctx))
}
