//! Fig. 1: example carbon traces and generation mixes.
//!
//! Reproduces the paper's motivating observation: carbon-intensity varies
//! ≈ 2× within a day in California and > 40× across regions (Ontario vs
//! Mumbai), and those properties follow from each grid's generation mix.

use decarb_traces::time::year_start;

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, f2, ExperimentTable};

/// The three example zones of Fig. 1.
pub const EXAMPLE_ZONES: [&str; 3] = ["US-CA", "CA-ON", "IN-WE"];

/// One zone's Fig. 1 summary.
#[derive(Debug, Clone)]
pub struct ZoneSummary {
    /// Zone code.
    pub code: String,
    /// Annual mean CI (g/kWh).
    pub mean: f64,
    /// Median within-day max/min swing.
    pub daily_swing: f64,
    /// Fossil share of the generation mix.
    pub fossil_share: f64,
    /// Renewable share of the generation mix.
    pub renewable_share: f64,
}

/// Fig. 1 results.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Per-zone summaries.
    pub zones: Vec<ZoneSummary>,
    /// Max cross-region instantaneous ratio observed between the cleanest
    /// and dirtiest example zones over the year.
    pub max_spatial_ratio: f64,
}

/// Runs the Fig. 1 analysis.
pub fn run(ctx: &Context) -> Fig1 {
    let start = year_start(EVAL_YEAR);
    let len = decarb_traces::time::hours_in_year(EVAL_YEAR);
    let mut zones = Vec::new();
    let mut cleanest: Vec<f64> = Vec::new();
    let mut dirtiest: Vec<f64> = Vec::new();
    for code in EXAMPLE_ZONES {
        let region = ctx.data().region(code).expect("example zone in catalog");
        let series = ctx.data().series(code).expect("example zone trace");
        let window = series.window(start, len).expect("year in horizon");
        let mean = window.iter().sum::<f64>() / len as f64;
        let mut swings: Vec<f64> = window
            .chunks_exact(24)
            .map(|day| {
                let max = day.iter().cloned().fold(f64::MIN, f64::max);
                let min = day.iter().cloned().fold(f64::MAX, f64::min);
                max / min
            })
            .collect();
        swings.sort_by(f64::total_cmp);
        let daily_swing = swings[swings.len() / 2];
        if code == "CA-ON" {
            cleanest = window.to_vec();
        }
        if code == "IN-WE" {
            dirtiest = window.to_vec();
        }
        zones.push(ZoneSummary {
            code: region.code.clone(),
            mean,
            daily_swing,
            fossil_share: region.mix.fossil_share(),
            renewable_share: region.mix.renewable_share(),
        });
    }
    let max_spatial_ratio = cleanest
        .iter()
        .zip(&dirtiest)
        .map(|(c, d)| d / c)
        .fold(0.0f64, f64::max);
    Fig1 {
        zones,
        max_spatial_ratio,
    }
}

impl Fig1 {
    /// Renders the Fig. 1(a) and 1(b) tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let rows_a = self
            .zones
            .iter()
            .map(|z| {
                vec![
                    z.code.to_string(),
                    f1(z.mean),
                    format!("{:.2}x", z.daily_swing),
                ]
            })
            .collect();
        let a = ExperimentTable::new(
            "fig1a",
            format!(
                "Fig 1(a): example traces (max Ontario-vs-Mumbai spatial ratio {:.0}x)",
                self.max_spatial_ratio
            ),
            vec![
                "zone".into(),
                "mean gCO2/kWh".into(),
                "median daily swing".into(),
            ],
            rows_a,
        );
        let rows_b = self
            .zones
            .iter()
            .map(|z| {
                vec![
                    z.code.to_string(),
                    f2(z.fossil_share),
                    f2(z.renewable_share),
                ]
            })
            .collect();
        let b = ExperimentTable::new(
            "fig1b",
            "Fig 1(b): generation mix of the example zones",
            vec![
                "zone".into(),
                "fossil share".into(),
                "renewable share".into(),
            ],
            rows_b,
        );
        vec![a, b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig1_shape() {
        let ctx = Context::default();
        let fig = run(&ctx);
        let ca = fig.zones.iter().find(|z| z.code == "US-CA").unwrap();
        let on = fig.zones.iter().find(|z| z.code == "CA-ON").unwrap();
        let mumbai = fig.zones.iter().find(|z| z.code == "IN-WE").unwrap();
        // California: ≈ 2× daily swing; half-renewable mix.
        assert!(ca.daily_swing > 1.4, "CA swing {:.2}", ca.daily_swing);
        assert!(ca.renewable_share > 0.4);
        // Mumbai: dirty, fossil-dominated, flat.
        assert!(mumbai.mean > 600.0);
        assert!(mumbai.fossil_share > 0.7);
        assert!(mumbai.daily_swing < ca.daily_swing);
        // Ontario is far cleaner than Mumbai; the instantaneous ratio
        // reaches tens of times (paper: 43×).
        assert!(on.mean < 40.0);
        assert!(
            fig.max_spatial_ratio > 20.0,
            "spatial ratio {:.0}",
            fig.max_spatial_ratio
        );
        assert_eq!(fig.tables().len(), 2);
    }
}
