//! Fig. 10: workload-weighted temporal reductions (§5.2.4–§5.2.6).
//!
//! * (a)–(c): per-grouping average savings (deferral + interruptibility,
//!   one-year slack) weighted across job lengths by the Equal, Azure-like
//!   and Google-like distributions;
//! * (d): the global savings as a function of slack, exhibiting the
//!   paper's sub-linear growth (31 → 127 g while slack grows 365×).

use decarb_traces::{GeoGroup, GLOBAL_AVG_CI};
use decarb_workloads::JobLengthDistribution;

use crate::context::Context;
use crate::fig7to9::TEMPORAL_LENGTHS;
use crate::table::{f1, pct, ExperimentTable};

/// A per-grouping weighted-savings row.
#[derive(Debug, Clone)]
pub struct GroupSavings {
    /// Grouping label ("Global" first).
    pub group: String,
    /// Weighted savings per job hour under each distribution, in
    /// [`JobLengthDistribution::ALL`] order.
    pub savings_g: [f64; 3],
}

/// One slack-sweep point (Fig. 10(d)).
#[derive(Debug, Clone)]
pub struct SlackPoint {
    /// Slack label.
    pub label: String,
    /// Slack in hours.
    pub slack: usize,
    /// Global equal-weighted savings per job hour.
    pub savings_g: f64,
}

/// Fig. 10 results.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Rows for (a)–(c).
    pub groups: Vec<GroupSavings>,
    /// The slack sweep for (d).
    pub slack_sweep: Vec<SlackPoint>,
}

/// Per-region total saving (deferral + interrupt) per job hour for each
/// length, weighted by a distribution.
///
/// The temporal analysis covers the batch buckets (1 h – 168 h); the
/// 36-second interactive bucket has no temporal flexibility, so — as in
/// the paper's Fig. 10 — the distribution weights are renormalized over
/// the batch buckets.
fn weighted_savings(
    ctx: &Context,
    dist: JobLengthDistribution,
    slack: usize,
    group: Option<GeoGroup>,
) -> f64 {
    let weights = dist.resource_weights();
    let batch_mass: f64 = weights[1..].iter().sum();
    let mut total = 0.0;
    for (i, &length) in TEMPORAL_LENGTHS.iter().enumerate() {
        let stats = ctx.temporal_stats(length, slack);
        let filtered: Vec<f64> = stats
            .iter()
            .filter(|s| match group {
                None => true,
                Some(g) => ctx
                    .data()
                    .region(&s.code)
                    .map(|r| r.group == g)
                    .unwrap_or(false),
            })
            .map(|s| s.total_saving())
            .collect();
        let mean = filtered.iter().sum::<f64>() / filtered.len().max(1) as f64;
        total += weights[i + 1] / batch_mass * mean;
    }
    total
}

/// Runs the Fig. 10 analysis.
pub fn run(ctx: &Context) -> Fig10 {
    let year_slack = 365 * 24;
    let mut groups = Vec::new();
    let mut global = [0.0; 3];
    for (d, dist) in JobLengthDistribution::ALL.iter().enumerate() {
        global[d] = weighted_savings(ctx, *dist, year_slack, None);
    }
    groups.push(GroupSavings {
        group: "Global".into(),
        savings_g: global,
    });
    for g in GeoGroup::ALL {
        let mut savings = [0.0; 3];
        for (d, dist) in JobLengthDistribution::ALL.iter().enumerate() {
            savings[d] = weighted_savings(ctx, *dist, year_slack, Some(g));
        }
        groups.push(GroupSavings {
            group: g.label().into(),
            savings_g: savings,
        });
    }

    let slacks = [
        ("24H", 24usize),
        ("7D", 7 * 24),
        ("24D", 24 * 24),
        ("30D", 30 * 24),
        ("1Y", 365 * 24),
    ];
    let slack_sweep = slacks
        .iter()
        .map(|&(label, slack)| SlackPoint {
            label: label.into(),
            slack,
            savings_g: weighted_savings(ctx, JobLengthDistribution::Equal, slack, None),
        })
        .collect();

    Fig10 {
        groups,
        slack_sweep,
    }
}

impl Fig10 {
    /// Renders the Fig. 10(a–c) and (d) tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let abc = ExperimentTable::new(
            "fig10abc",
            "Fig 10(a-c): temporal savings per job hour by grouping and distribution (1Y slack)",
            vec![
                "grouping".into(),
                "Equal g".into(),
                "Azure g".into(),
                "Google g".into(),
            ],
            self.groups
                .iter()
                .map(|g| {
                    vec![
                        g.group.clone(),
                        f1(g.savings_g[0]),
                        f1(g.savings_g[1]),
                        f1(g.savings_g[2]),
                    ]
                })
                .collect(),
        );
        let d = ExperimentTable::new(
            "fig10d",
            "Fig 10(d): global temporal savings vs slack (equal distribution)",
            vec![
                "slack".into(),
                "hours".into(),
                "savings g/h".into(),
                "vs global avg".into(),
            ],
            self.slack_sweep
                .iter()
                .map(|p| {
                    vec![
                        p.label.clone(),
                        p.slack.to_string(),
                        f1(p.savings_g),
                        pct(p.savings_g / GLOBAL_AVG_CI * 100.0),
                    ]
                })
                .collect(),
        );
        vec![abc, d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig10 {
        static FIG: OnceLock<Fig10> = OnceLock::new();
        FIG.get_or_init(|| run(shared()))
    }

    #[test]
    fn cloud_distributions_save_less_than_equal() {
        let global = &fig().groups[0];
        let [equal, azure, google] = global.savings_g;
        // §5.2.5: equal ≈ 135 g; Azure ≈ 100 g; Google ≈ 112 g. Order and
        // rough magnitude must hold.
        assert!((80.0..190.0).contains(&equal), "equal {equal}");
        assert!(azure < equal, "azure {azure} < equal {equal}");
        assert!(google < equal, "google {google} < equal {equal}");
        assert!(azure < google + 5.0, "azure below (or near) google");
    }

    #[test]
    fn oceania_highest_asia_lowest() {
        let groups = &fig().groups;
        let get = |label: &str| {
            groups
                .iter()
                .find(|g| g.group == label)
                .map(|g| g.savings_g[0])
                .unwrap()
        };
        let oceania = get("Oceania");
        let asia = get("Asia");
        // §5.2.4: Oceania ≈ 189 g is the highest grouping, Asia ≈ 60 g the
        // lowest.
        assert!(oceania > 100.0, "oceania {oceania}");
        assert!(asia < 110.0, "asia {asia}");
        assert!(oceania > asia * 1.5, "oceania {oceania} vs asia {asia}");
    }

    #[test]
    fn slack_growth_is_sublinear() {
        let sweep = &fig().slack_sweep;
        // Monotone non-decreasing.
        for pair in sweep.windows(2) {
            assert!(pair[1].savings_g >= pair[0].savings_g - 1e-9);
        }
        let day = sweep.first().unwrap();
        let year = sweep.last().unwrap();
        // §5.2.6: slack grows 365×, savings only ≈ 3.1× (31 → 127 g). We
        // require the ratio to stay well under 8×.
        let ratio = year.savings_g / day.savings_g.max(1e-9);
        assert!((1.5..8.0).contains(&ratio), "ratio {ratio:.2}");
        // Beyond 7 days, gains flatten: the 24D → 1Y step is smaller than
        // the 24H → 7D step.
        let step_small = sweep[1].savings_g - sweep[0].savings_g;
        let step_large = sweep[4].savings_g - sweep[2].savings_g;
        assert!(step_large < step_small * 2.0, "flattening expected");
    }

    #[test]
    fn tables_render() {
        let tables = fig().tables();
        assert_eq!(tables.len(), 2);
        assert!(format!("{}", tables[0]).contains("Google"));
        assert!(format!("{}", tables[1]).contains("1Y"));
    }
}
