//! Extension: the value of elasticity (CarbonScaler's dimension).
//!
//! §5.3.2 recommends splitting long jobs; the paper's reference [22]
//! (CarbonScaler) goes further and *scales* elastic jobs with the carbon
//! signal. This experiment sweeps the parallelism ceiling for a fixed
//! amount of work and reports the clairvoyant cost: interruptibility is
//! the `m = 1` point, and each doubling of the ceiling digs deeper into
//! the carbon valleys at diminishing returns.

use decarb_core::elastic::elastic_plan;
use decarb_traces::time::{hours_in_year, year_start};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, pct, ExperimentTable};

const SAMPLE_REGIONS: [&str; 5] = ["US-CA", "DE", "GB", "SE", "IN-WE"];

/// Work: 48 replica-hours (a 48-hour single-replica job) in a 7-day
/// window.
const WORK: usize = 48;
const WINDOW: usize = 7 * 24;

/// One ceiling's outcome, averaged over regions and arrivals.
#[derive(Debug, Clone)]
pub struct ElasticRow {
    /// Parallelism ceiling.
    pub max_replicas: usize,
    /// Mean cost per replica-hour, g/kWh.
    pub cost_per_h: f64,
    /// Mean makespan, hours.
    pub makespan_h: f64,
    /// Saving vs the inelastic (m = 1) interruptible bound, percent.
    pub saving_vs_serial_pct: f64,
}

/// Extension results.
#[derive(Debug, Clone)]
pub struct ExtElastic {
    /// One row per ceiling.
    pub rows: Vec<ElasticRow>,
}

/// Runs the elasticity extension.
pub fn run(ctx: &Context) -> ExtElastic {
    let start = year_start(EVAL_YEAR);
    let count = hours_in_year(EVAL_YEAR) - WINDOW;
    let ceilings = [1usize, 2, 4, 8, 16, 48];
    let stride = 997usize;

    let mut sums = vec![(0.0f64, 0.0f64); ceilings.len()];
    let mut n = 0usize;
    for code in SAMPLE_REGIONS {
        let series = ctx.data().series(code).expect("sample region trace");
        let mut a = 0usize;
        while a < count {
            let arrival = start.plus(a);
            for (i, &m) in ceilings.iter().enumerate() {
                let plan = elastic_plan(series, arrival, WORK, m, WINDOW);
                sums[i].0 += plan.cost_g / WORK as f64;
                sums[i].1 += plan.makespan_hours() as f64;
            }
            n += 1;
            a += stride;
        }
    }

    let serial = sums[0].0 / n as f64;
    let rows = ceilings
        .iter()
        .zip(&sums)
        .map(|(&m, &(cost, makespan))| {
            let cost_per_h = cost / n as f64;
            ElasticRow {
                max_replicas: m,
                cost_per_h,
                makespan_h: makespan / n as f64,
                saving_vs_serial_pct: (serial - cost_per_h) / serial * 100.0,
            }
        })
        .collect();

    ExtElastic { rows }
}

impl ExtElastic {
    /// Renders the elasticity table.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        vec![ExperimentTable::new(
            "ext-elastic",
            "Ext: elastic scaling of 48 replica-hours in a 7D window (clairvoyant)",
            vec![
                "max replicas".into(),
                "cost g/h".into(),
                "makespan h".into(),
                "saving vs serial".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.max_replicas.to_string(),
                        f1(r.cost_per_h),
                        f1(r.makespan_h),
                        pct(r.saving_vs_serial_pct),
                    ]
                })
                .collect(),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn ext() -> &'static ExtElastic {
        static EXT: OnceLock<ExtElastic> = OnceLock::new();
        EXT.get_or_init(|| run(shared()))
    }

    #[test]
    fn cost_non_increasing_and_makespan_shrinking_in_ceiling() {
        let rows = &ext().rows;
        assert_eq!(rows.len(), 6);
        for pair in rows.windows(2) {
            assert!(pair[1].cost_per_h <= pair[0].cost_per_h + 1e-9);
            assert!(pair[1].makespan_h <= pair[0].makespan_h + 1e-9);
        }
    }

    #[test]
    fn serial_row_is_the_reference() {
        let rows = &ext().rows;
        assert_eq!(rows[0].max_replicas, 1);
        assert!(rows[0].saving_vs_serial_pct.abs() < 1e-9);
        assert!(rows.last().unwrap().saving_vs_serial_pct > 0.0);
    }

    #[test]
    fn elasticity_shows_diminishing_returns() {
        let rows = &ext().rows;
        // The 1→4 doubling pair gains more than the 16→48 step.
        let early_gain = rows[0].cost_per_h - rows[2].cost_per_h;
        let late_gain = rows[4].cost_per_h - rows[5].cost_per_h;
        assert!(
            early_gain > late_gain,
            "early {early_gain} vs late {late_gain}"
        );
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 1);
        assert!(format!("{}", tables[0]).contains("max replicas"));
    }
}
