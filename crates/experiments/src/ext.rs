//! Extension ablations beyond the paper's figures.
//!
//! Three knobs the paper identifies but does not sweep:
//!
//! * **suspend/resume overhead** (§3.1.2 assumes zero): how fast does the
//!   interruptibility benefit of Fig. 8 erode as each resume costs carbon?
//! * **migration budget** (§5.1.4 compares only 1 and ∞): the full curve
//!   of savings vs allowed migrations;
//! * **workflow splitting** (§5.3.2's design implication): how much of
//!   the interruptibility benefit can a long job recover by being split
//!   into an ordered chain of smaller stages?

use decarb_core::budget::budgeted_migration;
use decarb_core::chain::best_chain;
use decarb_core::overhead::interruptible_with_overhead;
use decarb_core::temporal::TemporalPlanner;
use decarb_traces::time::{hours_in_year, year_start};

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, ExperimentTable};

/// One suspend-overhead sweep point.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Per-resume overhead in g·CO2eq.
    pub overhead_g: f64,
    /// Mean saving vs baseline per job hour (48 h job, 7-day slack).
    pub saving_g_per_h: f64,
    /// Fraction of sampled arrivals that fell back to contiguous runs.
    pub fallback_frac: f64,
}

/// One migration-budget sweep point.
#[derive(Debug, Clone)]
pub struct BudgetPoint {
    /// Allowed migrations.
    pub budget: usize,
    /// Mean job cost per hour across sampled arrivals (g/kWh).
    pub cost_g_per_h: f64,
}

/// One workflow-splitting sweep point.
#[derive(Debug, Clone)]
pub struct SplitPoint {
    /// Number of equal stages the 48-hour job is split into.
    pub stages: usize,
    /// Mean saving vs the monolithic baseline per job hour.
    pub saving_g_per_h: f64,
}

/// Extension results.
#[derive(Debug, Clone)]
pub struct Ext {
    /// Overhead sweep (averaged over sample regions).
    pub overhead: Vec<OverheadPoint>,
    /// Budget sweep.
    pub budget: Vec<BudgetPoint>,
    /// Splitting sweep.
    pub split: Vec<SplitPoint>,
}

const SAMPLE_REGIONS: [&str; 5] = ["US-CA", "DE", "IN-WE", "AU-NSW", "GB"];
const ARRIVAL_STRIDE: usize = 241;

/// Runs the extension ablations.
pub fn run(ctx: &Context) -> Ext {
    let start = year_start(EVAL_YEAR);
    let count = hours_in_year(EVAL_YEAR) - 48 - 7 * 24;

    // --- Suspend/resume overhead (48 h job, 7-day slack).
    let overhead = [0.0, 10.0, 50.0, 100.0, 250.0, 500.0, 1000.0]
        .iter()
        .map(|&ov| {
            let mut saving = 0.0;
            let mut fallbacks = 0usize;
            let mut n = 0usize;
            for code in SAMPLE_REGIONS {
                let planner = TemporalPlanner::new(ctx.data().series(code).expect("trace"));
                let mut a = 0usize;
                while a < count {
                    let arrival = start.plus(a);
                    let baseline = planner.baseline_cost(arrival, 48);
                    let placed = interruptible_with_overhead(&planner, arrival, 48, 7 * 24, ov);
                    saving += (baseline - placed.cost_g) / 48.0;
                    fallbacks += usize::from(placed.fell_back_to_contiguous);
                    n += 1;
                    a += ARRIVAL_STRIDE;
                }
            }
            OverheadPoint {
                overhead_g: ov,
                saving_g_per_h: saving / n as f64,
                fallback_frac: fallbacks as f64 / n as f64,
            }
        })
        .collect();

    // --- Migration budget (24 h job, global candidates, dirty origin).
    let origin = ctx.data().region("IN-WE").expect("origin");
    let candidates: Vec<&decarb_traces::Region> = ctx.regions().iter().collect();
    let budget = [0usize, 1, 2, 4, 8, 23]
        .iter()
        .map(|&m| {
            let mut cost = 0.0;
            let mut n = 0usize;
            let mut a = 0usize;
            while a < count {
                let arrival = start.plus(a);
                let outcome = budgeted_migration(ctx.data(), origin, &candidates, arrival, 24, m);
                cost += outcome.cost_g / 24.0;
                n += 1;
                a += ARRIVAL_STRIDE * 4;
            }
            BudgetPoint {
                budget: m,
                cost_g_per_h: cost / n as f64,
            }
        })
        .collect();

    // --- Workflow splitting (48 h job, 7-day slack).
    let split = [1usize, 2, 4, 8, 16, 48]
        .iter()
        .map(|&stages| {
            let stage_len = 48 / stages;
            let lens = vec![stage_len; stages];
            let mut saving = 0.0;
            let mut n = 0usize;
            for code in SAMPLE_REGIONS {
                let planner = TemporalPlanner::new(ctx.data().series(code).expect("trace"));
                let mut a = 0usize;
                while a < count {
                    let arrival = start.plus(a);
                    let baseline = planner.baseline_cost(arrival, 48);
                    let chain = best_chain(&planner, arrival, &lens, 7 * 24);
                    saving += (baseline - chain.cost_g) / 48.0;
                    n += 1;
                    a += ARRIVAL_STRIDE * 4;
                }
            }
            SplitPoint {
                stages,
                saving_g_per_h: saving / n as f64,
            }
        })
        .collect();

    Ext {
        overhead,
        budget,
        split,
    }
}

impl Ext {
    /// Renders the three extension tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let overhead = ExperimentTable::new(
            "ext-overhead",
            "Ext: interruptibility saving vs suspend/resume overhead (48h job, 7D slack)",
            vec![
                "overhead g/resume".into(),
                "saving g/h".into(),
                "fallback".into(),
            ],
            self.overhead
                .iter()
                .map(|p| {
                    vec![
                        f1(p.overhead_g),
                        f1(p.saving_g_per_h),
                        format!("{:.0}%", p.fallback_frac * 100.0),
                    ]
                })
                .collect(),
        );
        let budget = ExperimentTable::new(
            "ext-budget",
            "Ext: job cost vs migration budget (24h job from IN-WE, global candidates)",
            vec!["budget".into(), "cost g/h".into()],
            self.budget
                .iter()
                .map(|p| vec![p.budget.to_string(), f1(p.cost_g_per_h)])
                .collect(),
        );
        let split = ExperimentTable::new(
            "ext-split",
            "Ext: workflow splitting of a 48h job (7D slack)",
            vec!["stages".into(), "saving g/h".into()],
            self.split
                .iter()
                .map(|p| vec![p.stages.to_string(), f1(p.saving_g_per_h)])
                .collect(),
        );
        vec![overhead, budget, split]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn ext() -> &'static Ext {
        static EXT: OnceLock<Ext> = OnceLock::new();
        EXT.get_or_init(|| run(shared()))
    }

    #[test]
    fn overhead_erodes_interruptibility_monotonically() {
        let sweep = &ext().overhead;
        for pair in sweep.windows(2) {
            assert!(pair[1].saving_g_per_h <= pair[0].saving_g_per_h + 1e-9);
            assert!(pair[1].fallback_frac >= pair[0].fallback_frac - 1e-9);
        }
        // Zero overhead reproduces a healthy interruptibility saving…
        assert!(sweep[0].saving_g_per_h > 10.0);
        // …and a 1 kg/resume overhead forces (almost) everyone contiguous.
        let last = sweep.last().unwrap();
        assert!(last.fallback_frac > 0.8, "fallback {}", last.fallback_frac);
        assert!(last.saving_g_per_h >= 0.0, "never worse than deferral");
    }

    #[test]
    fn first_migration_dominates_budget_curve() {
        let sweep = &ext().budget;
        let stay = sweep[0].cost_g_per_h;
        let one = sweep[1].cost_g_per_h;
        let unbounded = sweep.last().unwrap().cost_g_per_h;
        // Monotone decreasing in budget.
        for pair in sweep.windows(2) {
            assert!(pair[1].cost_g_per_h <= pair[0].cost_g_per_h + 1e-9);
        }
        // The first migration captures ≥ 95 % of the total benefit.
        let captured = (stay - one) / (stay - unbounded);
        assert!(captured > 0.95, "first migration captured {captured:.3}");
    }

    #[test]
    fn splitting_recovers_interruptibility_gradually() {
        let sweep = &ext().split;
        for pair in sweep.windows(2) {
            assert!(
                pair[1].saving_g_per_h >= pair[0].saving_g_per_h - 1e-9,
                "finer splits can't hurt"
            );
        }
        let mono = sweep[0].saving_g_per_h;
        let hourly = sweep.last().unwrap().saving_g_per_h;
        assert!(hourly > mono, "splitting must help a 48h job");
        // A handful of stages already recovers most of the hourly bound.
        let quarters = sweep.iter().find(|p| p.stages == 4).unwrap();
        let recovered = (quarters.saving_g_per_h - mono) / (hourly - mono);
        assert!(recovered > 0.5, "4 stages recovered {recovered:.2}");
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 3);
        assert!(format!("{}", tables[1]).contains("budget"));
    }
}
