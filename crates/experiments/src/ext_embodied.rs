//! Extension: pricing the embodied carbon of idle capacity (§5.3.1).
//!
//! Fig. 5(c) shows operational emissions falling almost linearly as global
//! idle capacity grows — but the paper notes (without quantifying) that
//! the idle fleet itself carries embodied carbon. Combining the Fig. 5(c)
//! machinery with amortized embodied emissions yields a *net* footprint
//! curve with an interior optimum: beyond it, provisioning more headroom
//! for migration emits more in manufacturing than it saves in operations.

use decarb_core::capacity::{idle_sweep, IdleCapacity};
use decarb_core::embodied::{net_footprint_sweep, optimal_idle, EmbodiedParams, NetPoint};
use decarb_core::water_filling;
use decarb_traces::Region;

use crate::context::{Context, EVAL_YEAR};
use crate::table::{f1, pct, ExperimentTable};

/// Extension results.
#[derive(Debug, Clone)]
pub struct ExtEmbodied {
    /// The net-footprint sweep under default server parameters.
    pub sweep: Vec<NetPoint>,
    /// Optimal idle fraction per embodied weight (kg per server).
    pub optima: Vec<(f64, f64)>,
}

fn all_feasible(_: &Region, _: &Region) -> bool {
    true
}

/// Runs the embodied-carbon extension.
pub fn run(ctx: &Context) -> ExtEmbodied {
    let means = ctx.data().annual_means(EVAL_YEAR);
    let fractions: Vec<f64> = (0..20).map(|i| i as f64 * 0.05).chain([0.99]).collect();
    let operational: Vec<(f64, f64)> = idle_sweep(&means, &fractions, &all_feasible)
        .into_iter()
        .map(|(f, outcome)| (f, outcome.after_g))
        .collect();

    let sweep = net_footprint_sweep(&operational, &EmbodiedParams::default());

    // How the optimum moves with the server's embodied weight.
    let optima = [375.0, 750.0, 1500.0, 3000.0, 6000.0]
        .iter()
        .map(|&kg| {
            let params = EmbodiedParams {
                embodied_kg: kg,
                ..EmbodiedParams::default()
            };
            let points = net_footprint_sweep(&operational, &params);
            (kg, optimal_idle(&points).idle)
        })
        .collect();

    // Sanity link: the 0-idle sweep point equals the no-migration world.
    let zero = water_filling(&means, IdleCapacity::Fraction(0.0), &all_feasible);
    debug_assert!((zero.reduction_g()).abs() < 1e-9);

    ExtEmbodied { sweep, optima }
}

impl ExtEmbodied {
    /// Renders the net-footprint and optima tables.
    pub fn tables(&self) -> Vec<ExperimentTable> {
        let sweep = ExperimentTable::new(
            "ext-embodied-sweep",
            "Ext: net footprint per useful kWh vs global idle capacity (default server)",
            vec![
                "idle".into(),
                "operational g".into(),
                "embodied g".into(),
                "net g".into(),
            ],
            self.sweep
                .iter()
                .filter(|p| ((p.idle * 100.0).round() as usize).is_multiple_of(10) || p.idle > 0.95)
                .map(|p| {
                    vec![
                        pct(p.idle * 100.0),
                        f1(p.operational_g),
                        f1(p.embodied_g),
                        f1(p.net_g()),
                    ]
                })
                .collect(),
        );
        let optima = ExperimentTable::new(
            "ext-embodied-optima",
            "Ext: net-optimal idle fraction vs server embodied weight",
            vec!["embodied kg/server".into(), "optimal idle".into()],
            self.optima
                .iter()
                .map(|&(kg, idle)| vec![f1(kg), pct(idle * 100.0)])
                .collect(),
        );
        vec![sweep, optima]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::shared;
    use std::sync::OnceLock;

    fn ext() -> &'static ExtEmbodied {
        static EXT: OnceLock<ExtEmbodied> = OnceLock::new();
        EXT.get_or_init(|| run(shared()))
    }

    #[test]
    fn operational_falls_and_embodied_rises_along_the_sweep() {
        let sweep = &ext().sweep;
        assert!(sweep.len() > 10);
        for pair in sweep.windows(2) {
            assert!(pair[1].operational_g <= pair[0].operational_g + 1e-6);
            assert!(pair[1].embodied_g >= pair[0].embodied_g - 1e-9);
        }
    }

    #[test]
    fn net_optimum_is_interior_for_default_server() {
        let sweep = &ext().sweep;
        let best = optimal_idle(sweep);
        assert!(best.idle > 0.0, "optimum at {}", best.idle);
        assert!(best.idle < 0.99, "optimum at {}", best.idle);
        // The endpoints are strictly worse.
        assert!(best.net_g() < sweep.first().unwrap().net_g());
        assert!(best.net_g() < sweep.last().unwrap().net_g());
    }

    #[test]
    fn heavier_servers_justify_less_idle_capacity() {
        let optima = &ext().optima;
        for pair in optima.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "{} kg → {}, {} kg → {}",
                pair[0].0,
                pair[0].1,
                pair[1].0,
                pair[1].1
            );
        }
    }

    #[test]
    fn zero_idle_has_no_operational_reduction() {
        let sweep = &ext().sweep;
        let zero = &sweep[0];
        assert_eq!(zero.idle, 0.0);
        // Equals the global average CI (nothing can move).
        assert!(
            (zero.operational_g - shared().data().global_mean(EVAL_YEAR)).abs() < 1.0,
            "{} vs global mean",
            zero.operational_g
        );
    }

    #[test]
    fn tables_render() {
        let tables = ext().tables();
        assert_eq!(tables.len(), 2);
        assert!(format!("{}", tables[0]).contains("net g"));
    }
}
