//! Integration tests driving the `decarb-cli` binary end-to-end:
//! usage text, exit codes, registry listing, and error surfaces.
//!
//! The container has no route to a crates registry, so instead of
//! `assert_cmd` these tests spawn the binary Cargo builds for us via
//! `CARGO_BIN_EXE_decarb-cli` and assert on `std::process::Output`
//! directly — same shape, no dependency.

use std::process::{Command, Output};

/// Runs the compiled binary with `args` and returns its output.
fn decarb_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_decarb-cli"))
        .args(args)
        .output()
        .expect("binary spawns")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_succeeds() {
    let out = decarb_cli(&[]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("usage: decarb-cli"));
    assert!(text.contains("run      <ID|all> [--json]"));
}

#[test]
fn help_flag_prints_usage() {
    for flag in ["--help", "-h", "help"] {
        let out = decarb_cli(&[flag]);
        assert!(out.status.success(), "{flag}");
        assert!(stdout(&out).contains("usage: decarb-cli"), "{flag}");
    }
}

#[test]
fn unknown_command_exits_2_with_usage_on_stderr() {
    let out = decarb_cli(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown command `frobnicate`"));
    assert!(err.contains("usage: decarb-cli"));
    assert!(stdout(&out).is_empty());
}

#[test]
fn list_enumerates_the_whole_registry() {
    let out = decarb_cli(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    // Every registered id appears at the start of its own line.
    for id in [
        "table1",
        "fig1",
        "fig3a",
        "fig3b",
        "fig4",
        "fig5",
        "fig6a",
        "fig6b",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11a",
        "fig11b",
        "fig11cd",
        "fig12",
        "ext",
        "ext-forecast",
        "ext-grid",
        "ext-embodied",
        "ext-sim",
        "ext-elastic",
        "ext-rank",
        "ext-pareto",
        "ext-scenarios",
    ] {
        assert!(
            text.lines()
                .any(|l| l.split_whitespace().next() == Some(id)),
            "missing {id} in list output"
        );
    }
    assert!(text.contains("25 experiments"));
}

#[test]
fn run_unknown_id_exits_2_and_points_at_list() {
    let out = decarb_cli(&["run", "fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown experiment id `fig99`"));
    assert!(err.contains("see `list`"));
}

#[test]
fn run_without_id_exits_2() {
    let out = decarb_cli(&["run"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("needs an experiment id"));
}

#[test]
fn run_rejects_unknown_flags() {
    let out = decarb_cli(&["run", "table1", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option `--bogus`"));
}

#[test]
fn run_table1_renders_the_text_table() {
    let out = decarb_cli(&["run", "table1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("[table1]"), "{text}");
    assert!(text.contains('|'), "table body rendered");
}

#[test]
fn run_table1_json_is_structured() {
    let out = decarb_cli(&["run", "table1", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with('{'), "{text}");
    assert!(text.contains("\"id\": \"table1\""));
    assert!(text.contains("\"tables\""));
    assert!(text.contains("\"columns\""));
}

#[test]
fn run_and_list_reject_imported_datasets() {
    let out = decarb_cli(&["--data", "/dev/null", "list"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("built-in dataset"));
}

#[test]
fn scenario_list_enumerates_the_matrix() {
    let out = decarb_cli(&["scenario", "list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("batch-agnostic-europe"), "{text}");
    assert!(text.contains("mixed-greenest-global"), "{text}");
    assert!(text.contains("batch-forecast-us"), "{text}");
    assert!(text.contains("batch-spatiotemporal-europe"), "{text}");
    assert!(text.contains("54 scenarios"), "{text}");
}

#[test]
fn scenario_run_one_emits_json_object() {
    let out = decarb_cli(&["scenario", "run", "batch-deferral-europe", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with('{'), "{text}");
    assert!(text.contains("\"name\": \"batch-deferral-europe\""));
    assert!(text.contains("\"emissions_g\""));
}

#[test]
fn scenario_run_all_json_is_one_array_document() {
    let out = decarb_cli(&["scenario", "run", "all", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let trimmed = text.trim();
    assert!(trimmed.starts_with('['), "{text}");
    assert!(trimmed.ends_with(']'), "{text}");
    assert_eq!(text.matches("\"name\":").count(), 54, "{text}");
}

#[test]
fn scenario_run_unknown_name_exits_2_listing_valid_names() {
    let out = decarb_cli(&["scenario", "run", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).is_empty());
    let err = stderr(&out);
    assert!(err.contains("unknown scenario `bogus`"), "{err}");
    // The error enumerates the valid names rather than being opaque.
    assert!(err.contains("valid names:"), "{err}");
    assert!(err.contains("batch-agnostic-europe"), "{err}");
    assert!(err.contains("interactive-threshold-us"), "{err}");
    assert!(err.contains("mixed-spatiotemporal-global"), "{err}");
}

#[test]
fn scenario_run_file_round_trips_through_the_binary() {
    // parse → run → JSON, end to end over a real file.
    let path = std::env::temp_dir().join("decarb_cli_e2e.scenario");
    std::fs::write(
        &path,
        "\
[workload tiny]
class = batch
per_origin = 2
spacing = 24
length = 3
slack = day

[matrix m]
workloads = tiny
policies = agnostic, forecast, spatiotemporal
regions = europe
",
    )
    .unwrap();
    let out = decarb_cli(&[
        "scenario",
        "run",
        "--file",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.matches("\"name\":").count(), 3, "{text}");
    assert!(text.contains("\"tiny-forecast-europe\""), "{text}");
    assert!(text.contains("\"tiny-spatiotemporal-europe\""), "{text}");
    std::fs::remove_file(&path).ok();
    // A missing file is a clean exit-2 error, not a panic.
    let out = decarb_cli(&["scenario", "run", "--file", "/nonexistent.scenario"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("/nonexistent.scenario"));
}

#[test]
fn scenario_diff_gates_emissions_drift_end_to_end() {
    let dir = std::env::temp_dir();
    let report = dir.join("decarb_cli_e2e_report.json");
    let golden = dir.join("decarb_cli_e2e_golden.json");
    let run = decarb_cli(&["scenario", "run", "batch-agnostic-europe", "--json"]);
    assert!(run.status.success());
    std::fs::write(&report, run.stdout.clone()).unwrap();
    std::fs::write(&golden, run.stdout.clone()).unwrap();
    let out = decarb_cli(&[
        "scenario",
        "diff",
        "--report",
        report.to_str().unwrap(),
        "--golden",
        golden.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("1 scenarios within"),
        "{}",
        stdout(&out)
    );
    // Tamper with the golden: the gate must fail with exit code 2.
    let tampered = String::from_utf8(run.stdout)
        .unwrap()
        .replace("\"emissions_g\": ", "\"emissions_g\": 9");
    std::fs::write(&golden, tampered).unwrap();
    let out = decarb_cli(&[
        "scenario",
        "diff",
        "--report",
        report.to_str().unwrap(),
        "--golden",
        golden.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("drifted beyond"), "{}", stderr(&out));
    std::fs::remove_file(&report).ok();
    std::fs::remove_file(&golden).ok();
}

/// The sharded-sweep acceptance pin: `scenario run all --shards 4
/// --shard-index {0..3} --json`, merged via `scenario merge --expect
/// all`, must reproduce the single-process `scenario run all --json`
/// per-scenario within the CI golden tolerance (0.1%).
#[test]
fn four_shard_sweep_merges_to_the_single_process_report() {
    let dir = std::env::temp_dir();
    let full_path = dir.join("decarb_cli_e2e_sweep_full.json");
    let full = decarb_cli(&["scenario", "run", "all", "--json"]);
    assert!(full.status.success(), "{}", stderr(&full));
    std::fs::write(&full_path, &full.stdout).unwrap();

    let mut shard_paths = Vec::new();
    let mut shard_scenario_total = 0;
    for index in 0..4 {
        let shard = decarb_cli(&[
            "scenario",
            "run",
            "all",
            "--shards",
            "4",
            "--shard-index",
            &index.to_string(),
            "--json",
        ]);
        assert!(shard.status.success(), "shard {index}: {}", stderr(&shard));
        let text = stdout(&shard);
        assert!(
            text.trim_start().starts_with('['),
            "shard output is an array"
        );
        shard_scenario_total += text.matches("\"name\":").count();
        let path = dir.join(format!("decarb_cli_e2e_sweep_shard{index}.json"));
        std::fs::write(&path, shard.stdout).unwrap();
        shard_paths.push(path);
    }
    assert_eq!(shard_scenario_total, 54, "shards cover the matrix exactly");

    let merged_path = dir.join("decarb_cli_e2e_sweep_merged.json");
    let mut merge_args = vec!["scenario".to_string(), "merge".to_string()];
    merge_args.extend(shard_paths.iter().map(|p| p.to_str().unwrap().to_string()));
    merge_args.extend(["--expect".to_string(), "all".to_string()]);
    let merge_argv: Vec<&str> = merge_args.iter().map(String::as_str).collect();
    let merged = decarb_cli(&merge_argv);
    assert!(merged.status.success(), "{}", stderr(&merged));
    let merged_text = stdout(&merged);
    assert_eq!(merged_text.matches("\"name\":").count(), 54);
    std::fs::write(&merged_path, merged.stdout).unwrap();

    // The merged sharded sweep passes the same golden-diff gate the CI
    // applies, against the single-process run, at the CI tolerance.
    let diff = decarb_cli(&[
        "scenario",
        "diff",
        "--report",
        merged_path.to_str().unwrap(),
        "--golden",
        full_path.to_str().unwrap(),
        "--tolerance-pct",
        "0.1",
    ]);
    assert!(diff.status.success(), "{}", stderr(&diff));
    assert!(
        stdout(&diff).contains("54 scenarios within"),
        "{}",
        stdout(&diff)
    );

    // Overlapping shards and incomplete merges are rejected with exit 2.
    let overlap = decarb_cli(&[
        "scenario",
        "merge",
        shard_paths[0].to_str().unwrap(),
        shard_paths[0].to_str().unwrap(),
    ]);
    assert_eq!(overlap.status.code(), Some(2));
    assert!(
        stderr(&overlap).contains("more than one shard report"),
        "{}",
        stderr(&overlap)
    );
    let incomplete = decarb_cli(&[
        "scenario",
        "merge",
        shard_paths[0].to_str().unwrap(),
        "--expect",
        "all",
    ]);
    assert_eq!(incomplete.status.code(), Some(2));
    assert!(
        stderr(&incomplete).contains("missing"),
        "{}",
        stderr(&incomplete)
    );

    for path in shard_paths.iter().chain([&full_path, &merged_path]) {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn worker_fanout_spawns_shard_processes_and_merges_their_streams() {
    // A small scenario file keeps the multi-process test cheap.
    let dir = std::env::temp_dir();
    let file = dir.join("decarb_cli_e2e_workers.scenario");
    std::fs::write(
        &file,
        "\
[workload tiny]
class = batch
per_origin = 2
spacing = 24
length = 3
slack = day

[matrix m]
workloads = tiny
policies = agnostic, deferral, greenest
regions = europe, us
",
    )
    .unwrap();
    let single = decarb_cli(&[
        "scenario",
        "run",
        "--file",
        file.to_str().unwrap(),
        "--json",
    ]);
    assert!(single.status.success(), "{}", stderr(&single));
    let fanned = decarb_cli(&[
        "scenario",
        "run",
        "--file",
        file.to_str().unwrap(),
        "--workers",
        "2",
        "--json",
    ]);
    assert!(fanned.status.success(), "{}", stderr(&fanned));
    // Deterministic simulation + plan-ordered merge: identical bytes up
    // to the wall-clock elapsed field.
    let strip = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.contains("\"elapsed_s\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&stdout(&fanned)), strip(&stdout(&single)));
    // Text mode renders the same table through the merge path.
    let table = decarb_cli(&[
        "scenario",
        "run",
        "--file",
        file.to_str().unwrap(),
        "--workers",
        "2",
    ]);
    assert!(table.status.success(), "{}", stderr(&table));
    let text = stdout(&table);
    assert!(text.contains("tiny-deferral-us"), "{text}");
    assert!(text.lines().count() >= 7, "header + 6 rows: {text}");
    std::fs::remove_file(&file).ok();
}

#[test]
fn scenario_history_appends_and_shows_the_emissions_trend() {
    let dir = std::env::temp_dir();
    let report = dir.join("decarb_cli_e2e_history_report.json");
    let history = dir.join("decarb_cli_e2e_history.jsonl");
    std::fs::remove_file(&history).ok();
    let run = decarb_cli(&["scenario", "run", "batch-agnostic-europe", "--json"]);
    assert!(run.status.success());
    std::fs::write(&report, &run.stdout).unwrap();
    let append = decarb_cli(&[
        "scenario",
        "history",
        "append",
        "--report",
        report.to_str().unwrap(),
        "--file",
        history.to_str().unwrap(),
        "--rev",
        "rev-one",
    ]);
    assert!(append.status.success(), "{}", stderr(&append));
    assert!(
        stdout(&append).contains("recorded rev-one"),
        "{}",
        stdout(&append)
    );
    // A second recorded run with far lower emissions must surface as a
    // delta in the trend table.
    std::fs::write(
        &report,
        r#"{"name": "batch-agnostic-europe", "emissions_g": 100.0}"#,
    )
    .unwrap();
    let append = decarb_cli(&[
        "scenario",
        "history",
        "append",
        "--report",
        report.to_str().unwrap(),
        "--file",
        history.to_str().unwrap(),
        "--rev",
        "rev-two",
    ]);
    assert!(append.status.success(), "{}", stderr(&append));
    // The JSONL file holds one object per line, keyed by rev.
    let raw = std::fs::read_to_string(&history).unwrap();
    assert_eq!(raw.lines().count(), 2, "{raw}");
    assert!(
        raw.lines().next().unwrap().contains("\"rev\":\"rev-one\""),
        "{raw}"
    );
    let show = decarb_cli(&[
        "scenario",
        "history",
        "show",
        "--file",
        history.to_str().unwrap(),
    ]);
    assert!(show.status.success(), "{}", stderr(&show));
    let text = stdout(&show);
    assert!(text.contains("rev-one"), "{text}");
    assert!(text.contains("rev-two"), "{text}");
    assert!(text.contains("2 runs recorded"), "{text}");
    // The second row's delta against the first is a large negative drop.
    let row = text.lines().find(|l| l.starts_with("rev-two")).unwrap();
    assert!(row.contains("-99.9"), "{row}");
    // --limit trims to the newest entries but keeps their deltas.
    let limited = decarb_cli(&[
        "scenario",
        "history",
        "show",
        "--file",
        history.to_str().unwrap(),
        "--limit",
        "1",
    ]);
    let text = stdout(&limited);
    assert!(!text.contains("rev-one "), "{text}");
    assert!(text.contains("rev-two"), "{text}");
    std::fs::remove_file(&report).ok();
    std::fs::remove_file(&history).ok();
}

#[test]
fn scenario_without_subcommand_exits_2() {
    let out = decarb_cli(&["scenario"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("`scenario` needs a subcommand"));
}

#[test]
fn export_pipes_csv_to_stdout() {
    let out = decarb_cli(&["export", "SE", "--year", "2021"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let header = text.lines().next().expect("csv header");
    assert!(header.contains("hour"), "{header}");
}

/// Writes a two-zone CSV covering calendar 2022 (hours 17544..26304),
/// optionally truncated/offset, and returns its path.
fn write_fixture_csv(name: &str, start_offset: usize, hours: usize) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut text = String::from("zone,hour,ci_g_per_kwh\n");
    for zone in ["SE", "DE"] {
        let base = if zone == "SE" { 16.0 } else { 380.0 };
        for i in 0..hours {
            let hour = 17544 + start_offset + i;
            let value = base + ((start_offset + i) % 50) as f64 * 0.5;
            text.push_str(&format!("{zone},{hour},{value}\n"));
        }
    }
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn data_pack_probe_append_flow_with_auto_detection() {
    let dir = std::env::temp_dir();
    let csv = write_fixture_csv("decarb_cli_e2e_container.csv", 0, 8760);
    let packed = dir.join("decarb_cli_e2e_container.dct");

    // Pack the CSV and verify the summary names the shape.
    let out = decarb_cli(&[
        "data",
        "pack",
        csv.to_str().unwrap(),
        "-o",
        packed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 regions"), "{text}");
    assert!(text.contains("8760 hours"), "{text}");

    // Probe: text summary and machine-readable JSON agree.
    let out = decarb_cli(&["data", "probe", packed.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("regions       2"), "{text}");
    assert!(text.contains("start hour 17544"), "{text}");
    assert!(text.contains("content hash  fnv1a64:"), "{text}");
    assert!(text.contains("ok:"), "{text}");
    let out = decarb_cli(&["data", "probe", packed.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = decarb_json::parse(&stdout(&out)).expect("probe --json parses");
    let get_num = |key: &str| -> f64 {
        match doc.get(key) {
            Some(decarb_json::Value::Number(n)) => *n,
            other => panic!("{key}: {other:?}"),
        }
    };
    assert_eq!(get_num("regions") as usize, 2);
    assert_eq!(get_num("hours") as usize, 8760);
    assert_eq!(get_num("start_hour") as usize, 17544);
    assert_eq!(get_num("segments") as usize, 1);
    assert_eq!(get_num("resolution_minutes") as usize, 60);
    let Some(decarb_json::Value::String(hash)) = doc.get("content_hash") else {
        panic!("content_hash missing");
    };
    assert!(hash.starts_with("fnv1a64:"), "{hash}");

    // Auto-detection: the container behind --data renders exactly what
    // the CSV it was packed from renders.
    let from_csv = decarb_cli(&[
        "--data",
        csv.to_str().unwrap(),
        "analyze",
        "SE",
        "--year",
        "2022",
    ]);
    let from_packed = decarb_cli(&[
        "--data",
        packed.to_str().unwrap(),
        "analyze",
        "SE",
        "--year",
        "2022",
    ]);
    assert!(from_csv.status.success(), "{}", stderr(&from_csv));
    assert!(from_packed.status.success(), "{}", stderr(&from_packed));
    assert_eq!(stdout(&from_csv), stdout(&from_packed));

    // Append flow: pack the first half, append the second, and the
    // result loads identically to the one-shot pack.
    let first = write_fixture_csv("decarb_cli_e2e_container_h1.csv", 0, 4380);
    let second = write_fixture_csv("decarb_cli_e2e_container_h2.csv", 4380, 4380);
    let grown = dir.join("decarb_cli_e2e_container_grown.dct");
    let out = decarb_cli(&[
        "data",
        "pack",
        first.to_str().unwrap(),
        "-o",
        grown.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = decarb_cli(&[
        "data",
        "append",
        grown.to_str().unwrap(),
        "--from",
        second.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("appended 4380 hours"), "{text}");
    assert!(text.contains("now 8760 hours"), "{text}");
    assert!(text.contains("2 segments"), "{text}");
    let from_grown = decarb_cli(&[
        "--data",
        grown.to_str().unwrap(),
        "analyze",
        "SE",
        "--year",
        "2022",
    ]);
    assert!(from_grown.status.success(), "{}", stderr(&from_grown));
    assert_eq!(stdout(&from_grown), stdout(&from_packed));

    // Appending rows that add nothing new is a clean error.
    let out = decarb_cli(&[
        "data",
        "append",
        grown.to_str().unwrap(),
        "--from",
        second.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no hours"), "{}", stderr(&out));

    for path in [&csv, &packed, &first, &second, &grown] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn data_pack_resolution_produces_a_subhourly_container() {
    let dir = std::env::temp_dir();
    let csv = write_fixture_csv("decarb_cli_e2e_subhourly.csv", 0, 48);
    let packed = dir.join("decarb_cli_e2e_subhourly.dct");

    // Hourly rows re-expressed on a 5-minute axis: 48 h → 576 samples.
    let out = decarb_cli(&[
        "data",
        "pack",
        csv.to_str().unwrap(),
        "--resolution",
        "5",
        "-o",
        packed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("576 samples at 5 min/sample"), "{text}");

    let out = decarb_cli(&["data", "probe", packed.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = decarb_json::parse(&stdout(&out)).expect("probe --json parses");
    match doc.get("resolution_minutes") {
        Some(decarb_json::Value::Number(n)) => assert_eq!(*n as u32, 5),
        other => panic!("resolution_minutes: {other:?}"),
    }
    match doc.get("hours") {
        Some(decarb_json::Value::Number(n)) => assert_eq!(*n as usize, 576),
        other => panic!("hours: {other:?}"),
    }

    // Non-divisors of 60 (and values over 60) are rejected at parse time,
    // before any file is touched.
    for bad in ["7", "90", "0"] {
        let out = decarb_cli(&[
            "data",
            "pack",
            csv.to_str().unwrap(),
            "--resolution",
            bad,
            "-o",
            packed.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(2), "--resolution {bad}");
        assert!(
            stderr(&out).contains("invalid resolution"),
            "--resolution {bad}: {}",
            stderr(&out)
        );
    }

    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&packed).ok();
}

#[test]
fn sidecar_dataset_resolution_stamps_imported_csv() {
    let dir = std::env::temp_dir();
    // 96 rows per zone, declared as 30-minute samples by the sidecar:
    // the dataset spans 48 wall-clock hours, not 96.
    let csv = write_fixture_csv("decarb_cli_e2e_sidecar_res.csv", 0, 96);
    let sidecar = dir.join("decarb_cli_e2e_sidecar_res.toml");
    std::fs::write(&sidecar, "[dataset]\nresolution = 30\n").unwrap();
    let packed = dir.join("decarb_cli_e2e_sidecar_res.dct");

    let out = decarb_cli(&[
        "data",
        "pack",
        csv.to_str().unwrap(),
        "--regions",
        sidecar.to_str().unwrap(),
        "-o",
        packed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("96 samples at 30 min/sample"),
        "{}",
        stdout(&out)
    );

    // The declared cadence round-trips through the container.
    let out = decarb_cli(&["data", "probe", packed.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = decarb_json::parse(&stdout(&out)).expect("probe --json parses");
    match doc.get("resolution_minutes") {
        Some(decarb_json::Value::Number(n)) => assert_eq!(*n as u32, 30),
        other => panic!("resolution_minutes: {other:?}"),
    }

    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&sidecar).ok();
    std::fs::remove_file(&packed).ok();
}

#[test]
fn corrupted_container_behind_data_exits_2() {
    let dir = std::env::temp_dir();
    let csv = write_fixture_csv("decarb_cli_e2e_corrupt.csv", 0, 48);
    let packed = dir.join("decarb_cli_e2e_corrupt.dct");
    let out = decarb_cli(&[
        "data",
        "pack",
        csv.to_str().unwrap(),
        "-o",
        packed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Flip one bit in a value block: every consumer must refuse the file.
    let mut bytes = std::fs::read(&packed).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&packed, &bytes).unwrap();

    let out = decarb_cli(&["--data", packed.to_str().unwrap(), "regions"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("hash mismatch"), "{err}");
    assert!(err.contains("decarb_cli_e2e_corrupt.dct"), "{err}");
    let out = decarb_cli(&["data", "probe", packed.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("hash mismatch"), "{}", stderr(&out));

    // A container under --data carries its own metadata: --regions is a
    // contradiction, not a silent no-op.
    std::fs::write(&packed, {
        let out = decarb_cli(&[
            "data",
            "pack",
            csv.to_str().unwrap(),
            "-o",
            packed.to_str().unwrap(),
        ]);
        assert!(out.status.success());
        std::fs::read(&packed).unwrap()
    })
    .unwrap();
    let sidecar = dir.join("decarb_cli_e2e_corrupt_sidecar.toml");
    std::fs::write(&sidecar, "[region SE]\nname = Shadowed\n").unwrap();
    let out = decarb_cli(&[
        "--data",
        packed.to_str().unwrap(),
        "--regions",
        sidecar.to_str().unwrap(),
        "regions",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("drop --regions"), "{}", stderr(&out));

    // Probing a CSV reports bad magic instead of garbage.
    let out = decarb_cli(&["data", "probe", csv.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("bad magic"), "{}", stderr(&out));

    for path in [&csv, &packed, &sidecar] {
        std::fs::remove_file(path).ok();
    }
}

/// The acceptance pin for the container path: `data pack builtin`
/// followed by `scenario run` from the packed file must reproduce the
/// in-process built-in run byte-for-byte (modulo wall-clock elapsed).
#[test]
fn packed_builtin_dataset_reproduces_scenario_reports_exactly() {
    let dir = std::env::temp_dir();
    let packed = dir.join("decarb_cli_e2e_builtin.dct");
    let out = decarb_cli(&["data", "pack", "builtin", "-o", packed.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("123 regions"), "{}", stdout(&out));

    let builtin = decarb_cli(&["scenario", "run", "batch-agnostic-europe", "--json"]);
    let from_packed = decarb_cli(&[
        "--data",
        packed.to_str().unwrap(),
        "scenario",
        "run",
        "batch-agnostic-europe",
        "--json",
    ]);
    assert!(builtin.status.success(), "{}", stderr(&builtin));
    assert!(from_packed.status.success(), "{}", stderr(&from_packed));
    let strip = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.contains("\"elapsed_s\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&stdout(&from_packed)), strip(&stdout(&builtin)));
    std::fs::remove_file(&packed).ok();
}

/// Boots `decarb-cli serve` on an ephemeral port, parses the bound
/// address from its first stdout line, and returns the child (killed
/// by the caller) plus the address.
fn spawn_serve(args: &[&str]) -> (std::process::Child, String) {
    use std::io::{BufRead, BufReader};
    let mut child = Command::new(env!("CARGO_BIN_EXE_decarb-cli"))
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut first_line = String::new();
    BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("serve announces its address");
    let addr = first_line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in `{first_line}`"))
        .to_string();
    (child, addr)
}

/// One HTTP request against a spawned server; returns (status, body).
fn http_request(addr: &str, method: &str, target: &str, body: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to serve");
    // `Connection: close` lets the reader below drain to EOF instead of
    // waiting out the server's keep-alive idle timeout.
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .expect("header/body separator");
    (status, body)
}

#[test]
fn serve_answers_every_endpoint_and_place_is_stable_across_reload() {
    let (mut child, addr) = spawn_serve(&["serve", "--addr", "127.0.0.1:0", "--threads", "2"]);
    let result = std::panic::catch_unwind(|| {
        let (status, health) = http_request(&addr, "GET", "/v1/healthz", "");
        assert_eq!(status, 200);
        assert!(health.contains("\"status\": \"ok\""), "{health}");
        assert!(health.contains("\"regions\": 123"), "{health}");

        let (status, regions) = http_request(&addr, "GET", "/v1/regions", "");
        assert_eq!(status, 200);
        assert!(regions.contains("\"zone\": \"SE\""));

        let (status, rankings) = http_request(&addr, "GET", "/v1/rankings?limit=1", "");
        assert_eq!(status, 200);
        assert!(rankings.contains("\"zone\": \"SE\""), "{rankings}");

        let (status, forecast) = http_request(&addr, "GET", "/v1/forecast/DE?hours=12", "");
        assert_eq!(status, 200);
        assert!(forecast.contains("\"hours\": 12"), "{forecast}");

        // Place against the in-process planner ground truth: hour
        // 17544 is the start of 2022 (8784 + 8760).
        let body = r#"{"origin":"PL","duration_hours":6,"slack_hours":24,"slo_ms":1000,"arrival_hour":19704}"#;
        let (status, before) = http_request(&addr, "POST", "/v1/place", body);
        assert_eq!(status, 200, "{before}");
        assert!(before.contains("\"saved_g\""), "{before}");

        let (status, reload) = http_request(&addr, "POST", "/v1/reload", "");
        assert_eq!(status, 200, "{reload}");
        assert!(reload.contains("\"generation\": 2"), "{reload}");

        let (status, after) = http_request(&addr, "POST", "/v1/place", body);
        assert_eq!(status, 200);
        let strip = |text: &str| {
            text.lines()
                .filter(|l| !l.contains("\"generation\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&before),
            strip(&after),
            "place answers must be bit-identical across a reload"
        );

        let (status, metrics) = http_request(&addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200);
        assert!(metrics.contains("\"place\": 2"), "{metrics}");
        assert!(metrics.contains("\"generation\": 2"), "{metrics}");

        let (status, err) = http_request(&addr, "POST", "/v1/place", "{not json");
        assert_eq!(status, 400);
        assert!(err.contains("bad-json"), "{err}");
        let (status, _) = http_request(&addr, "GET", "/v1/nope", "");
        assert_eq!(status, 404);
    });
    let _ = child.kill();
    let _ = child.wait();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn serve_agrees_with_the_plan_command_ground_truth() {
    // `serve` must answer the same deferral the TemporalPlanner
    // computes: pinned home (slo 0), the chosen start/cost come from
    // best_deferred on the origin's builtin trace.
    let (mut child, addr) = spawn_serve(&["serve", "--addr", "127.0.0.1:0"]);
    let result = std::panic::catch_unwind(|| {
        let data = decarb_traces::builtin_dataset();
        let de = data.id_of("DE").expect("DE exists");
        let arrival = decarb_traces::time::year_start(2022).plus(90 * 24);
        let truth =
            decarb_core::TemporalPlanner::new(data.series_by_id(de)).best_deferred(arrival, 6, 24);
        let body = format!(
            r#"{{"origin":"DE","duration_hours":6,"slack_hours":24,"arrival_hour":{}}}"#,
            arrival.0
        );
        let (status, answer) = http_request(&addr, "POST", "/v1/place", &body);
        assert_eq!(status, 200, "{answer}");
        assert!(answer.contains("\"region\": \"DE\""), "{answer}");
        assert!(
            answer.contains(&format!("\"start_hour\": {}", truth.start.0)),
            "{answer} vs planner start {}",
            truth.start.0
        );
    });
    let _ = child.kill();
    let _ = child.wait();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn serve_rejects_a_bad_bind_address_with_exit_2() {
    let out = decarb_cli(&["serve", "--addr", "999.999.999.999:0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot bind"));
}

#[test]
fn serve_capacity_per_hour_saturates_the_winning_region() {
    // With one admission slot per region-hour, two identical queries
    // cannot both land on the same region: the second must be pushed
    // to a different region (or start hour) by the admission ledger.
    let (mut child, addr) =
        spawn_serve(&["serve", "--addr", "127.0.0.1:0", "--capacity-per-hour", "1"]);
    let result = std::panic::catch_unwind(|| {
        let body = r#"{"origin":"PL","duration_hours":6,"slack_hours":24,"slo_ms":1000,"arrival_hour":19704}"#;
        let (status, first) = http_request(&addr, "POST", "/v1/place", body);
        assert_eq!(status, 200, "{first}");
        let (status, second) = http_request(&addr, "POST", "/v1/place", body);
        assert_eq!(status, 200, "{second}");
        let pick = |answer: &str, key: &str| {
            answer
                .lines()
                .find(|l| l.contains(&format!("\"{key}\"")))
                .unwrap_or_else(|| panic!("no {key} in {answer}"))
                .to_string()
        };
        assert_ne!(
            (pick(&first, "region"), pick(&first, "start_hour")),
            (pick(&second, "region"), pick(&second, "start_hour")),
            "a saturated region-hour must not win twice\nfirst: {first}\nsecond: {second}"
        );
    });
    let _ = child.kill();
    let _ = child.wait();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn serve_bench_drives_a_spawned_server_and_reports_throughput() {
    let (mut child, addr) = spawn_serve(&["serve", "--addr", "127.0.0.1:0", "--threads", "2"]);
    let result = std::panic::catch_unwind(|| {
        let out = decarb_cli(&[
            "serve",
            "bench",
            "--addr",
            &addr,
            "--connections",
            "2",
            "--requests",
            "40",
            "--batch",
            "4",
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("keep-alive mode"), "{text}");
        assert!(text.contains("80 requests"), "{text}");
        assert!(text.contains("req/s"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("0 failures"), "{text}");
    });
    let _ = child.kill();
    let _ = child.wait();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn serve_bench_boots_its_own_server_when_no_addr_is_given() {
    let out = decarb_cli(&[
        "serve",
        "bench",
        "--connections",
        "2",
        "--requests",
        "20",
        "--mode",
        "close",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("close-per-request mode"), "{text}");
    assert!(text.contains("0 failures"), "{text}");
}

#[test]
fn serve_bench_rejects_bad_options_with_exit_2() {
    let zero = decarb_cli(&["serve", "bench", "--connections", "0"]);
    assert_eq!(zero.status.code(), Some(2));
    let mode = decarb_cli(&["serve", "bench", "--mode", "pipelined"]);
    assert_eq!(mode.status.code(), Some(2));
    let capacity = decarb_cli(&["serve", "--capacity-per-hour", "0"]);
    assert_eq!(capacity.status.code(), Some(2));
}
