//! Integration tests driving the `decarb-cli` binary end-to-end:
//! usage text, exit codes, registry listing, and error surfaces.
//!
//! The container has no route to a crates registry, so instead of
//! `assert_cmd` these tests spawn the binary Cargo builds for us via
//! `CARGO_BIN_EXE_decarb-cli` and assert on `std::process::Output`
//! directly — same shape, no dependency.

use std::process::{Command, Output};

/// Runs the compiled binary with `args` and returns its output.
fn decarb_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_decarb-cli"))
        .args(args)
        .output()
        .expect("binary spawns")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_succeeds() {
    let out = decarb_cli(&[]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("usage: decarb-cli"));
    assert!(text.contains("run      <ID|all> [--json]"));
}

#[test]
fn help_flag_prints_usage() {
    for flag in ["--help", "-h", "help"] {
        let out = decarb_cli(&[flag]);
        assert!(out.status.success(), "{flag}");
        assert!(stdout(&out).contains("usage: decarb-cli"), "{flag}");
    }
}

#[test]
fn unknown_command_exits_2_with_usage_on_stderr() {
    let out = decarb_cli(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown command `frobnicate`"));
    assert!(err.contains("usage: decarb-cli"));
    assert!(stdout(&out).is_empty());
}

#[test]
fn list_enumerates_the_whole_registry() {
    let out = decarb_cli(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    // Every registered id appears at the start of its own line.
    for id in [
        "table1",
        "fig1",
        "fig3a",
        "fig3b",
        "fig4",
        "fig5",
        "fig6a",
        "fig6b",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11a",
        "fig11b",
        "fig11cd",
        "fig12",
        "ext",
        "ext-forecast",
        "ext-grid",
        "ext-embodied",
        "ext-sim",
        "ext-elastic",
        "ext-rank",
        "ext-pareto",
        "ext-scenarios",
    ] {
        assert!(
            text.lines()
                .any(|l| l.split_whitespace().next() == Some(id)),
            "missing {id} in list output"
        );
    }
    assert!(text.contains("25 experiments"));
}

#[test]
fn run_unknown_id_exits_2_and_points_at_list() {
    let out = decarb_cli(&["run", "fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown experiment id `fig99`"));
    assert!(err.contains("see `list`"));
}

#[test]
fn run_without_id_exits_2() {
    let out = decarb_cli(&["run"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("needs an experiment id"));
}

#[test]
fn run_rejects_unknown_flags() {
    let out = decarb_cli(&["run", "table1", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option `--bogus`"));
}

#[test]
fn run_table1_renders_the_text_table() {
    let out = decarb_cli(&["run", "table1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("[table1]"), "{text}");
    assert!(text.contains('|'), "table body rendered");
}

#[test]
fn run_table1_json_is_structured() {
    let out = decarb_cli(&["run", "table1", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with('{'), "{text}");
    assert!(text.contains("\"id\": \"table1\""));
    assert!(text.contains("\"tables\""));
    assert!(text.contains("\"columns\""));
}

#[test]
fn run_and_list_reject_imported_datasets() {
    let out = decarb_cli(&["--data", "/dev/null", "list"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("built-in dataset"));
}

#[test]
fn scenario_list_enumerates_the_matrix() {
    let out = decarb_cli(&["scenario", "list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("batch-agnostic-europe"), "{text}");
    assert!(text.contains("mixed-greenest-global"), "{text}");
    assert!(text.contains("batch-forecast-us"), "{text}");
    assert!(text.contains("batch-spatiotemporal-europe"), "{text}");
    assert!(text.contains("54 scenarios"), "{text}");
}

#[test]
fn scenario_run_one_emits_json_object() {
    let out = decarb_cli(&["scenario", "run", "batch-deferral-europe", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with('{'), "{text}");
    assert!(text.contains("\"name\": \"batch-deferral-europe\""));
    assert!(text.contains("\"emissions_g\""));
}

#[test]
fn scenario_run_all_json_is_one_array_document() {
    let out = decarb_cli(&["scenario", "run", "all", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let trimmed = text.trim();
    assert!(trimmed.starts_with('['), "{text}");
    assert!(trimmed.ends_with(']'), "{text}");
    assert_eq!(text.matches("\"name\":").count(), 54, "{text}");
}

#[test]
fn scenario_run_unknown_name_exits_2_listing_valid_names() {
    let out = decarb_cli(&["scenario", "run", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).is_empty());
    let err = stderr(&out);
    assert!(err.contains("unknown scenario `bogus`"), "{err}");
    // The error enumerates the valid names rather than being opaque.
    assert!(err.contains("valid names:"), "{err}");
    assert!(err.contains("batch-agnostic-europe"), "{err}");
    assert!(err.contains("interactive-threshold-us"), "{err}");
    assert!(err.contains("mixed-spatiotemporal-global"), "{err}");
}

#[test]
fn scenario_run_file_round_trips_through_the_binary() {
    // parse → run → JSON, end to end over a real file.
    let path = std::env::temp_dir().join("decarb_cli_e2e.scenario");
    std::fs::write(
        &path,
        "\
[workload tiny]
class = batch
per_origin = 2
spacing = 24
length = 3
slack = day

[matrix m]
workloads = tiny
policies = agnostic, forecast, spatiotemporal
regions = europe
",
    )
    .unwrap();
    let out = decarb_cli(&[
        "scenario",
        "run",
        "--file",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.matches("\"name\":").count(), 3, "{text}");
    assert!(text.contains("\"tiny-forecast-europe\""), "{text}");
    assert!(text.contains("\"tiny-spatiotemporal-europe\""), "{text}");
    std::fs::remove_file(&path).ok();
    // A missing file is a clean exit-2 error, not a panic.
    let out = decarb_cli(&["scenario", "run", "--file", "/nonexistent.scenario"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("/nonexistent.scenario"));
}

#[test]
fn scenario_diff_gates_emissions_drift_end_to_end() {
    let dir = std::env::temp_dir();
    let report = dir.join("decarb_cli_e2e_report.json");
    let golden = dir.join("decarb_cli_e2e_golden.json");
    let run = decarb_cli(&["scenario", "run", "batch-agnostic-europe", "--json"]);
    assert!(run.status.success());
    std::fs::write(&report, run.stdout.clone()).unwrap();
    std::fs::write(&golden, run.stdout.clone()).unwrap();
    let out = decarb_cli(&[
        "scenario",
        "diff",
        "--report",
        report.to_str().unwrap(),
        "--golden",
        golden.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("1 scenarios within"),
        "{}",
        stdout(&out)
    );
    // Tamper with the golden: the gate must fail with exit code 2.
    let tampered = String::from_utf8(run.stdout)
        .unwrap()
        .replace("\"emissions_g\": ", "\"emissions_g\": 9");
    std::fs::write(&golden, tampered).unwrap();
    let out = decarb_cli(&[
        "scenario",
        "diff",
        "--report",
        report.to_str().unwrap(),
        "--golden",
        golden.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("drifted beyond"), "{}", stderr(&out));
    std::fs::remove_file(&report).ok();
    std::fs::remove_file(&golden).ok();
}

#[test]
fn scenario_without_subcommand_exits_2() {
    let out = decarb_cli(&["scenario"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("`scenario` needs a subcommand"));
}

#[test]
fn export_pipes_csv_to_stdout() {
    let out = decarb_cli(&["export", "SE", "--year", "2021"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let header = text.lines().next().expect("csv header");
    assert!(header.contains("hour"), "{header}");
}
