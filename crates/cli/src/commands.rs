//! Subcommand implementations: each renders a `String` for `main` to
//! print, so tests can assert on the exact output. The scenario runner
//! additionally has a streaming variant writing to any `io::Write`
//! sink, so thousand-scenario sweeps emit reports incrementally.

use std::fmt::Write as _;
use std::io;

use decarb_core::rankings::rank_stability;
use decarb_core::spatial::{inf_migration, one_migration};
use decarb_core::temporal::TemporalPlanner;
use decarb_experiments::registry;
use decarb_forecast::{
    backtest, BacktestConfig, DiurnalTemplate, Forecaster, LinearAr, Persistence, SeasonalNaive,
};
use decarb_json::Value;
use decarb_stats::daily::average_daily_cv;
use decarb_stats::periodicity::periodicity_score;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::{container, csv, TraceError, TraceSet};

use decarb_sim::sweep::SweepPlan;

use crate::args::{
    Command, DataCommand, MergeExpect, ParseError, ScenarioTarget, ShardSpec, USAGE,
};

/// A CLI failure: bad arguments, a data-layer error, an output error,
/// or a failed check (e.g. `scenario diff` drift).
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing failed.
    Parse(ParseError),
    /// The trace layer rejected a request (unknown zone, out of range).
    Trace(TraceError),
    /// Writing the output failed (e.g. a closed pipe mid-stream).
    Io(io::Error),
    /// A gate ran and failed: the message explains the violations.
    Check(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Parse(e) => write!(f, "{e}\n\n{USAGE}"),
            CliError::Trace(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Check(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<TraceError> for CliError {
    fn from(e: TraceError) -> Self {
        CliError::Trace(e)
    }
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Runs a parsed command against an explicit dataset (the built-in one in
/// [`crate::run`], an imported one under `--data`).
///
/// `list`, `run`, `scenario list`, and `scenario diff` are registry or
/// file commands with no dataset parameter; they are routed directly by
/// [`crate::run`] and error here rather than silently ignoring `data`.
/// `scenario run` *does* take the dataset: user scenario files (and the
/// built-in matrix) run against `--data` imports as long as every
/// deployed zone is covered.
pub fn run_on(command: &Command, data: &TraceSet) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Regions { group, year } => regions(data, group.as_deref(), *year),
        Command::Analyze { zone, year } => analyze(data, zone, *year),
        Command::Plan {
            zone,
            hours,
            slack,
            arrive,
            year,
        } => plan(data, zone, *hours, *slack, *arrive, *year),
        Command::Forecast { zone, days, year } => forecast(data, zone, *days, *year),
        Command::Rank { year } => rank(data, *year),
        Command::Export { zone, year } => export(data, zone, *year),
        Command::ScenarioCheck { target, json } => scenario_check_cmd(target, *json, data),
        Command::ScenarioRun {
            target,
            json,
            shard,
            workers,
            strict,
        } => {
            // `run_on` has the loaded dataset but not the `--data` path,
            // so it cannot tell the child processes what to re-import —
            // spawning them against the built-in dataset would silently
            // answer a different question. The dispatch entry points
            // thread the path through and handle `--workers` themselves.
            if workers.is_some() {
                return Err(CliError::Parse(ParseError(
                    "`--workers` needs the CLI entry point (dispatch) to forward the \
                     --data path to its child processes; use dispatch, or run the shards \
                     in-process with --shards/--shard-index"
                        .into(),
                )));
            }
            run_scenarios_cmd(target, *json, *shard, None, *strict, None, data)
        }
        Command::Serve { .. } => Err(CliError::Parse(ParseError(
            "`serve` is a long-running daemon; it is handled by the CLI entry              point (dispatch_stream), which streams the listening address              before blocking"
                .into(),
        ))),
        Command::ServeBench { .. } => Err(CliError::Parse(ParseError(
            "`serve bench` drives a server, not a dataset; drop --data (point \
             --addr at a server that was started with the dataset you want)"
                .into(),
        ))),
        Command::List
        | Command::Run { .. }
        | Command::ScenarioList
        | Command::ScenarioMerge { .. }
        | Command::ScenarioHistory(_)
        | Command::ScenarioDiff { .. }
        | Command::AnalyzeWorkspace { .. }
        | Command::Data(_) => Err(CliError::Parse(ParseError(
            "`list`, `run`, `scenario list`, `scenario merge`, `scenario history`, \
             `scenario diff`, and `analyze --workspace` always use the built-in dataset, \
             and `data` commands name their files explicitly; drop --data"
                .into(),
        ))),
    }
}

/// `serve`: builds the placement service over the named dataset (or
/// the built-in one), prints the bound address, and blocks in the
/// accept loop. The daemon re-imports `--data` from its path on every
/// `POST /v1/reload`, so a repacked container or refreshed CSV is
/// picked up without a restart.
pub(crate) fn serve_cmd(
    out: &mut dyn io::Write,
    data: Option<DataPaths<'_>>,
    addr: &str,
    threads: usize,
    capacity_per_hour: Option<usize>,
) -> Result<(), CliError> {
    use std::sync::Arc;
    let (traces, loader): (Arc<TraceSet>, decarb_serve::Loader) = match data {
        Some(paths) => {
            let data_path = paths.data.to_string();
            let regions_path = paths.regions.map(str::to_string);
            let set = Arc::new(crate::load_dataset(&data_path, regions_path.as_deref())?);
            (
                set,
                Box::new(move || {
                    crate::load_dataset(&data_path, regions_path.as_deref())
                        .map(Arc::new)
                        .map_err(|e| e.to_string())
                }),
            )
        }
        None => (
            decarb_traces::builtin_dataset(),
            Box::new(|| Ok(decarb_traces::builtin_dataset())),
        ),
    };
    let regions = traces.len();
    let capacity = capacity_per_hour.unwrap_or(usize::MAX);
    let service = Arc::new(
        decarb_serve::PlacementService::with_capacity(traces, capacity).with_loader(loader),
    );
    let server = decarb_serve::Server::bind(addr, service)
        .map_err(|e| CliError::Parse(ParseError(format!("serve: cannot bind {addr}: {e}"))))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::Parse(ParseError(format!("serve: {e}"))))?;
    let admission = match capacity_per_hour {
        Some(n) => format!(", capacity {n}/hour"),
        None => String::new(),
    };
    writeln!(
        out,
        "decarb-serve listening on http://{local} ({regions} regions, {threads} thread{}{admission})",
        if threads == 1 { "" } else { "s" }
    )?;
    out.flush()?;
    server.run(threads)?;
    Ok(())
}

/// `serve bench`: runs the in-tree load harness against `addr`, or
/// against a freshly booted in-process server over the built-in
/// dataset when no address is given, and renders requests/sec plus
/// latency percentiles.
pub(crate) fn serve_bench_cmd(
    addr: Option<&str>,
    connections: usize,
    requests: u64,
    batch: usize,
    keep_alive: bool,
    pipeline: usize,
    threads: usize,
) -> Result<String, CliError> {
    use std::sync::Arc;
    let target: std::net::SocketAddr = match addr {
        Some(raw) => raw.parse().map_err(|_| {
            CliError::Parse(ParseError(format!(
                "serve bench: invalid --addr `{raw}` (expected HOST:PORT)"
            )))
        })?,
        None => {
            let service = Arc::new(decarb_serve::PlacementService::new(
                decarb_traces::builtin_dataset(),
            ));
            let server = decarb_serve::Server::bind("127.0.0.1:0", service)
                .map_err(|e| CliError::Parse(ParseError(format!("serve bench: {e}"))))?;
            let local = server
                .local_addr()
                .map_err(|e| CliError::Parse(ParseError(format!("serve bench: {e}"))))?;
            // Detached: the server thread dies with the process once
            // the measurement is done.
            std::thread::spawn(move || {
                let _ = server.run(threads);
            });
            local
        }
    };
    let config = decarb_serve::LoadConfig {
        connections,
        requests_per_connection: requests,
        batch,
        keep_alive,
        pipeline,
    };
    let report = config.run(target).map_err(CliError::Io)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve bench: {} mode, {connections} connection{} x {requests} requests, batch {batch}, pipeline {pipeline}, against {target}",
        if keep_alive { "keep-alive" } else { "close-per-request" },
        if connections == 1 { "" } else { "s" },
    );
    let _ = write!(out, "{}", report.summary());
    Ok(out)
}

/// Renders the experiment registry, one `id  description` line per
/// registered experiment.
pub(crate) fn list() -> String {
    let mut out = String::new();
    for experiment in registry::all() {
        let _ = writeln!(out, "{:<14} {}", experiment.id(), experiment.description());
    }
    let _ = writeln!(
        out,
        "{} experiments; `run <id>` or `run all`",
        registry::count()
    );
    out
}

/// Runs one experiment (or the whole registry, in parallel) and renders
/// text tables or JSON.
pub(crate) fn run_experiments(id: &str, json: bool) -> Result<String, CliError> {
    let ctx = decarb_experiments::context::shared();
    if id == "all" {
        let runs = registry::run_all(ctx);
        if json {
            let value = Value::Array(runs.iter().map(|r| r.to_json()).collect());
            return Ok(value.pretty());
        }
        let mut out = String::new();
        for run in runs {
            for table in &run.tables {
                let _ = writeln!(out, "{table}");
            }
        }
        return Ok(out);
    }
    let experiment = registry::find(id).ok_or_else(|| {
        CliError::Parse(ParseError(format!(
            "unknown experiment id `{id}` (see `list`)"
        )))
    })?;
    if json {
        return Ok(experiment.run_json(ctx).pretty());
    }
    let mut out = String::new();
    for table in experiment.run(ctx) {
        let _ = writeln!(out, "{table}");
    }
    Ok(out)
}

/// Renders the built-in scenario matrix, one `name  description` line
/// per scenario.
pub(crate) fn scenario_list() -> String {
    let scenarios = decarb_sim::builtin_scenarios();
    let mut out = String::new();
    for scenario in &scenarios {
        let _ = writeln!(out, "{:<34} {}", scenario.name, scenario.describe());
    }
    let _ = writeln!(
        out,
        "{} scenarios; `scenario run <name>`, `scenario run all`, or \
         `scenario run --file FILE`",
        scenarios.len()
    );
    out
}

/// Resolves a `scenario run`/`scenario merge` target into a validated
/// [`SweepPlan`]. Unknown built-in names list the valid ones; scenario
/// files are parsed with line-numbered errors; scenarios that cannot
/// run against the dataset are *all* collected into one error instead
/// of panicking mid-sweep.
pub(crate) fn plan_for_target(
    target: &ScenarioTarget,
    data: &TraceSet,
) -> Result<(SweepPlan, Option<TraceSet>), CliError> {
    let mut extended: Option<TraceSet> = None;
    let selected = match target {
        ScenarioTarget::Name(name) if name == "all" => decarb_sim::builtin_scenarios(),
        ScenarioTarget::Name(name) => {
            vec![decarb_sim::find_scenario(name).ok_or_else(|| {
                let names: Vec<String> = decarb_sim::builtin_scenarios()
                    .iter()
                    .map(|s| s.name.clone())
                    .collect();
                CliError::Parse(ParseError(format!(
                    "unknown scenario `{name}`; valid names: {}",
                    names.join(", ")
                )))
            })?]
        }
        ScenarioTarget::File(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Parse(ParseError(format!("--file {path}: {e}"))))?;
            let file = decarb_sim::parse_scenario_file_full(&text)
                .map_err(|e| CliError::Parse(ParseError(format!("{path}: {e}"))))?;
            // `[region CODE]` declarations the dataset lacks get their
            // traces synthesized from the declared calibration targets,
            // so scenarios can deploy into entirely hypothetical grids.
            let missing: Vec<decarb_traces::Region> = file
                .custom_regions
                .iter()
                .filter(|r| data.id_of(&r.code).is_err())
                .cloned()
                .collect();
            if !missing.is_empty() {
                let mut set = data.clone();
                set.extend_synthesized(missing, decarb_traces::SynthConfig::default());
                extended = Some(set);
            }
            file.scenarios
        }
    };
    let plan_data = extended.as_ref().unwrap_or(data);
    let plan = SweepPlan::plan(plan_data, selected)
        .map_err(|e| CliError::Parse(ParseError(e.to_string())))?;
    Ok((plan, extended))
}

/// The `--data FILE [--regions FILE]` import paths forwarded to the
/// multi-process fan-out so every worker child re-imports the same
/// dataset (and metadata sidecar).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DataPaths<'a> {
    /// Path of the `zone,hour,value` CSV dataset.
    pub(crate) data: &'a str,
    /// Optional path of the `[region CODE]` metadata sidecar.
    pub(crate) regions: Option<&'a str>,
}

/// The scenario table header row (text output).
pub(crate) fn scenario_table_header() -> String {
    format!(
        "{:<34} {:>5} {:>5} {:>6} {:>6} {:>8} {:>12} {:>11} {:>9}\n",
        "scenario", "jobs", "done", "unfin", "missed", "migrate", "kWh", "avg g/kWh", "slowdown"
    )
}

/// One scenario table row; counts arrive as `f64` so JSON-sourced rows
/// (the multi-process merge path) render identically to native ones.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scenario_table_row(
    name: &str,
    jobs: f64,
    completed: f64,
    unfinished: f64,
    missed: f64,
    migrations: f64,
    energy_kwh: f64,
    average_ci: f64,
    mean_slowdown: f64,
) -> String {
    format!(
        "{:<34} {:>5} {:>5} {:>6} {:>6} {:>8} {:>12.1} {:>11.1} {:>9.2}\n",
        name,
        jobs as u64,
        completed as u64,
        unfinished as u64,
        missed as u64,
        migrations as u64,
        energy_kwh,
        average_ci,
        mean_slowdown,
    )
}

/// Runs scenarios (built-in by name, the whole matrix, or a scenario
/// file) in parallel against `data`, streaming each report to `out` as
/// its chunk completes — a thousand-scenario sweep never buffers the
/// full result set.
///
/// `shard` restricts the run to one disjoint shard of the sweep plan
/// (the multi-process partition unit; sharded JSON output is always an
/// array, so shard reports merge uniformly). `workers` instead spawns
/// that many child shard processes and merges their streams (see
/// [`crate::fanout`]); `data_path` is forwarded to the children.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scenarios_to(
    out: &mut dyn io::Write,
    target: &ScenarioTarget,
    json: bool,
    shard: Option<ShardSpec>,
    workers: Option<usize>,
    strict: bool,
    data_path: Option<DataPaths<'_>>,
    data: &TraceSet,
) -> Result<(), CliError> {
    // Static pre-check: sharded invocations skip it (the parent — or
    // the fan-out parent below — already checked once, and a warning
    // per worker child would repeat N times). Target-resolution
    // failures are deliberately ignored here so the run path reports
    // its canonical error instead.
    if shard.is_none() {
        if let Some(diags) = check_for_target(target, data) {
            if !diags.is_empty() {
                if strict {
                    return Err(CliError::Check(format!(
                        "scenario check failed (rerun without --strict to run anyway):\n{}",
                        decarb_analyze::render_report(&diags)
                    )));
                }
                for diagnostic in &diags {
                    eprintln!("warning: {}", diagnostic.render());
                }
            }
        }
    }
    if let Some(workers) = workers {
        return crate::fanout::run_workers(out, target, json, workers, data_path, data);
    }
    let (plan, extended) = plan_for_target(target, data)?;
    let data = extended.as_ref().unwrap_or(data);
    let single = plan.len() == 1 && shard.is_none();
    let plan = match shard {
        None => plan,
        Some(spec) => plan
            .shard(spec.shards, spec.index)
            .map_err(|e| CliError::Parse(ParseError(e.to_string())))?,
    };
    let mut sink_error: Option<io::Error> = None;
    {
        // Returns `false` once the sink has failed, so the scenario
        // engine aborts the sweep instead of simulating into a closed
        // pipe.
        let mut emit = |text: String| -> bool {
            if sink_error.is_none() {
                if let Err(e) = out.write_all(text.as_bytes()) {
                    sink_error = Some(e);
                }
            }
            sink_error.is_none()
        };
        if json {
            // One scenario renders as an object, many (or any sharded
            // run) as an array — in both cases one valid JSON document,
            // emitted incrementally.
            if !single {
                emit("[".to_string());
            }
            let mut index = 0usize;
            plan.execute_with(data, |report| {
                let pretty = report.to_json().pretty();
                let keep_going = if single {
                    emit(pretty)
                } else {
                    let mut chunk = if index > 0 {
                        ",\n".to_string()
                    } else {
                        "\n".to_string()
                    };
                    for (i, line) in pretty.lines().enumerate() {
                        if i > 0 {
                            chunk.push('\n');
                        }
                        chunk.push_str("  ");
                        chunk.push_str(line);
                    }
                    emit(chunk)
                };
                index += 1;
                keep_going
            });
            if !single {
                emit(if index == 0 {
                    "]".to_string()
                } else {
                    "\n]".to_string()
                });
            }
        } else {
            emit(scenario_table_header());
            plan.execute_with(data, |r| {
                emit(scenario_table_row(
                    &r.name,
                    r.jobs as f64,
                    r.completed as f64,
                    r.unfinished as f64,
                    r.missed_deadlines as f64,
                    r.migrations as f64,
                    r.total_energy_kwh,
                    r.average_ci,
                    r.mean_slowdown,
                ))
            });
        }
    }
    match sink_error {
        Some(e) => Err(CliError::Io(e)),
        None => Ok(()),
    }
}

/// Buffered variant of [`run_scenarios_to`] for the `String`-rendering
/// dispatch path (and its tests).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scenarios_cmd(
    target: &ScenarioTarget,
    json: bool,
    shard: Option<ShardSpec>,
    workers: Option<usize>,
    strict: bool,
    data_path: Option<DataPaths<'_>>,
    data: &TraceSet,
) -> Result<String, CliError> {
    let mut buffer = Vec::new();
    run_scenarios_to(
        &mut buffer,
        target,
        json,
        shard,
        workers,
        strict,
        data_path,
        data,
    )?;
    Ok(String::from_utf8(buffer).expect("scenario output is UTF-8"))
}

/// Resolves a target to its static-check diagnostics, or `None` when
/// resolution fails (unknown name, unreadable file) — those failures
/// surface through the run path's canonical errors instead.
fn check_for_target(
    target: &ScenarioTarget,
    data: &TraceSet,
) -> Option<Vec<decarb_analyze::Diagnostic>> {
    match target {
        ScenarioTarget::Name(name) if name == "all" => Some(decarb_sim::check_scenarios(
            "<builtin>",
            &decarb_sim::builtin_scenarios(),
            data,
        )),
        ScenarioTarget::Name(name) => decarb_sim::find_scenario(name)
            .map(|scenario| decarb_sim::check_scenarios("<builtin>", &[scenario], data)),
        ScenarioTarget::File(path) => std::fs::read_to_string(path)
            .ok()
            .map(|text| decarb_sim::check_file(path, &text, data)),
    }
}

/// `scenario check <NAME|all|--file FILE> [--json]` — static semantic
/// validation without simulating. Clean targets summarize and exit 0;
/// any diagnostic renders the shared report format (or a JSON array
/// under `--json`) and exits non-zero via [`CliError::Check`].
pub(crate) fn scenario_check_cmd(
    target: &ScenarioTarget,
    json: bool,
    data: &TraceSet,
) -> Result<String, CliError> {
    let (checked, diags) = match target {
        ScenarioTarget::Name(name) if name == "all" => {
            let scenarios = decarb_sim::builtin_scenarios();
            let diags = decarb_sim::check_scenarios("<builtin>", &scenarios, data);
            (scenarios.len(), diags)
        }
        ScenarioTarget::Name(name) => {
            let scenario = decarb_sim::find_scenario(name).ok_or_else(|| {
                CliError::Parse(ParseError(format!(
                    "unknown scenario `{name}` (see `scenario list`)"
                )))
            })?;
            (
                1,
                decarb_sim::check_scenarios("<builtin>", &[scenario], data),
            )
        }
        ScenarioTarget::File(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Parse(ParseError(format!("--file {path}: {e}"))))?;
            let checked = decarb_sim::parse_scenario_file(&text)
                .map(|scenarios| scenarios.len())
                .unwrap_or(0);
            (checked, decarb_sim::check_file(path, &text, data))
        }
    };
    if json {
        let payload = decarb_analyze::diagnostics_to_json(&diags).pretty();
        return if diags.is_empty() {
            Ok(payload)
        } else {
            Err(CliError::Check(payload))
        };
    }
    if diags.is_empty() {
        Ok(format!("{checked} scenario(s) checked, 0 diagnostics"))
    } else {
        Err(CliError::Check(decarb_analyze::render_report(&diags)))
    }
}

/// `analyze --workspace [PATH] [--json]` — the in-tree source lints
/// (`decarb-analyze`) over a workspace checkout. Exit codes mirror
/// `scenario check`: clean trees exit 0, findings exit non-zero.
pub(crate) fn analyze_workspace_cmd(path: &str, json: bool) -> Result<String, CliError> {
    let outcome = decarb_analyze::analyze_workspace(std::path::Path::new(path))?;
    if json {
        let payload = decarb_analyze::diagnostics_to_json(&outcome.diagnostics).pretty();
        return if outcome.diagnostics.is_empty() {
            Ok(payload)
        } else {
            Err(CliError::Check(payload))
        };
    }
    if outcome.diagnostics.is_empty() {
        Ok(format!("{} files scanned, 0 diagnostics", outcome.files))
    } else {
        Err(CliError::Check(decarb_analyze::render_report(
            &outcome.diagnostics,
        )))
    }
}

/// Extracts `(name, emissions_g)` pairs from a `scenario run --json`
/// report document (a single object or an array of objects).
fn report_emissions(path: &str) -> Result<Vec<(String, f64)>, CliError> {
    let value = read_report_doc(path)?;
    let items: Vec<&Value> = match &value {
        Value::Array(items) => items.iter().collect(),
        object @ Value::Object(_) => vec![object],
        _ => {
            return Err(CliError::Parse(ParseError(format!(
                "{path}: expected a scenario report object or array"
            ))))
        }
    };
    let mut pairs = Vec::with_capacity(items.len());
    for item in items {
        let Some(Value::String(name)) = item.get("name") else {
            return Err(CliError::Parse(ParseError(format!(
                "{path}: report entry without a `name`"
            ))));
        };
        let Some(Value::Number(emissions)) = item.get("emissions_g") else {
            return Err(CliError::Parse(ParseError(format!(
                "{path}: scenario `{name}` has no `emissions_g`"
            ))));
        };
        if pairs.iter().any(|(n, _)| n == name) {
            return Err(CliError::Parse(ParseError(format!(
                "{path}: duplicate scenario `{name}`"
            ))));
        }
        pairs.push((name.clone(), *emissions));
    }
    Ok(pairs)
}

/// The CI emissions-regression gate: compares per-scenario emissions of
/// a fresh report against a committed golden snapshot, failing on
/// missing/extra scenarios or drift beyond `tolerance_pct` percent.
pub(crate) fn scenario_diff(
    report_path: &str,
    golden_path: &str,
    tolerance_pct: f64,
) -> Result<String, CliError> {
    let report = report_emissions(report_path)?;
    let golden = report_emissions(golden_path)?;
    let mut violations: Vec<String> = Vec::new();
    let mut max_drift = 0.0f64;
    for (name, expected) in &golden {
        let Some((_, actual)) = report.iter().find(|(n, _)| n == name) else {
            violations.push(format!("  {name}: missing from the report"));
            continue;
        };
        let drift_pct = if expected.abs() > f64::EPSILON {
            (actual - expected).abs() / expected.abs() * 100.0
        } else if actual.abs() > f64::EPSILON {
            f64::INFINITY
        } else {
            0.0
        };
        max_drift = max_drift.max(drift_pct);
        if drift_pct > tolerance_pct {
            violations.push(format!(
                "  {name}: emissions {actual:.3} g vs golden {expected:.3} g \
                 ({drift_pct:.3}% > {tolerance_pct}%)"
            ));
        }
    }
    for (name, _) in &report {
        if !golden.iter().any(|(n, _)| n == name) {
            violations.push(format!(
                "  {name}: not in the golden snapshot (re-record {golden_path})"
            ));
        }
    }
    if !violations.is_empty() {
        return Err(CliError::Check(format!(
            "scenario emissions drifted beyond ±{tolerance_pct}% ({} violation{}):\n{}",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" },
            violations.join("\n")
        )));
    }
    Ok(format!(
        "{} scenarios within ±{tolerance_pct}% of {golden_path} (max drift {max_drift:.4}%)\n",
        golden.len()
    ))
}

/// Reads and parses one JSON report document.
fn read_report_doc(path: &str) -> Result<Value, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Parse(ParseError(format!("{path}: {e}"))))?;
    decarb_json::parse(&text).map_err(|e| CliError::Parse(ParseError(format!("{path}: {e}"))))
}

/// Routes the `data pack|probe|append` container subcommands.
pub(crate) fn data_cmd(cmd: &DataCommand) -> Result<String, CliError> {
    match cmd {
        DataCommand::Pack {
            source,
            regions,
            resolution,
            out,
        } => data_pack(source, regions.as_deref(), *resolution, out),
        DataCommand::Probe { file, json } => data_probe(file, *json),
        DataCommand::Append { file, from, pad } => data_append(file, from, *pad),
    }
}

/// `data pack`: encodes a CSV dataset (or the built-in one) as a binary
/// container, written atomically. `--resolution MIN` re-expresses the
/// dataset on a finer axis first (hourly samples embed losslessly by
/// repetition), so `data pack builtin --resolution 5` yields a
/// sub-hourly container without any external data.
fn data_pack(
    source: &str,
    regions: Option<&str>,
    resolution: Option<u32>,
    out: &str,
) -> Result<String, CliError> {
    let mut set = if source == "builtin" {
        (*decarb_traces::builtin_dataset()).clone()
    } else {
        crate::load_dataset(source, regions)?
    };
    if let Some(minutes) = resolution {
        let target = decarb_traces::Resolution::from_minutes(minutes)
            .map_err(|e| CliError::Parse(ParseError(e)))?;
        set = set.resample_to(target)?;
    }
    let bytes = container::encode(&set).map_err(|e| match e {
        TraceError::Container { reason, .. } => TraceError::Container {
            path: source.to_string(),
            reason,
        },
        other => other,
    })?;
    container::write_bytes_atomic(out, &bytes)?;
    let info = container::probe(&bytes, out)?;
    // "hours" on the hourly axis, explicit sample cadence otherwise.
    let span = if info.resolution_minutes == 60 {
        format!("{} hours", info.hours)
    } else {
        format!(
            "{} samples at {} min/sample",
            info.hours, info.resolution_minutes
        )
    };
    Ok(format!(
        "packed {} regions × {span} into {out} \
         ({} bytes, fnv1a64:{:016x})",
        info.regions, info.file_bytes, info.content_hash
    ))
}

/// `data probe`: verifies a container (magic, version, content hash,
/// segment structure) and reports its header facts.
fn data_probe(file: &str, json: bool) -> Result<String, CliError> {
    let info = container::probe_file(file)?;
    // The content hash is a full u64; f64 JSON numbers cannot hold it
    // exactly, so it is rendered as a hex string in both formats.
    let hash = format!("fnv1a64:{:016x}", info.content_hash);
    if json {
        return Ok(Value::object([
            ("path", Value::from(file)),
            ("version", Value::from(usize::from(info.version))),
            ("regions", Value::from(info.regions)),
            ("start_hour", Value::from(info.start.0)),
            ("hours", Value::from(info.hours)),
            ("resolution_minutes", Value::from(info.resolution_minutes)),
            ("segments", Value::from(info.segments)),
            ("content_hash", Value::from(hash)),
            ("file_bytes", Value::from(info.file_bytes)),
        ])
        .pretty());
    }
    let mut output = String::new();
    let _ = writeln!(output, "container {file}");
    let _ = writeln!(output, "  version       {}", info.version);
    let _ = writeln!(output, "  regions       {}", info.regions);
    // Raw hour indices: appended datasets may extend past the hour
    // range the calendar helpers cover.
    let _ = writeln!(
        output,
        "  hours         {} (start hour {}, end hour {})",
        info.hours,
        info.start.0,
        info.start.0 as usize + info.hours
    );
    let _ = writeln!(
        output,
        "  resolution    {} min/sample",
        info.resolution_minutes
    );
    let _ = writeln!(output, "  segments      {}", info.segments);
    let _ = writeln!(output, "  content hash  {hash}");
    let _ = writeln!(output, "  file size     {} bytes", info.file_bytes);
    output.push_str("ok: magic, version, content hash, and block structure verified");
    Ok(output)
}

/// `data append`: extends a container with newly observed hours from a
/// CSV, rewriting the file atomically without re-encoding history.
fn data_append(file: &str, from: &str, pad: bool) -> Result<String, CliError> {
    let existing = std::fs::read(file).map_err(|e| TraceError::Io(format!("{file}: {e}")))?;
    let update = crate::load_dataset(from, None)?;
    let (bytes, added) = container::append(&existing, file, &update, pad)?;
    container::write_bytes_atomic(file, &bytes)?;
    let info = container::probe(&bytes, file)?;
    Ok(format!(
        "appended {added} hour{} from {from} to {file}; now {} hours × {} regions \
         in {} segments (fnv1a64:{:016x})",
        if added == 1 { "" } else { "s" },
        info.hours,
        info.regions,
        info.segments,
        info.content_hash
    ))
}

/// The standalone shard recombiner: merges `scenario run --json` shard
/// reports into one JSON array, failing on duplicate scenarios
/// (overlapping shards) and — when `--expect` names a sweep — on
/// missing or unexpected ones. The merged document is ordered like the
/// expected sweep (or by name without one), so it is directly
/// comparable with a single-process run and feeds `scenario diff`.
pub(crate) fn scenario_merge(
    reports: &[String],
    expect: Option<&MergeExpect>,
) -> Result<String, CliError> {
    let docs = reports
        .iter()
        .map(|path| read_report_doc(path))
        .collect::<Result<Vec<_>, _>>()?;
    let expected: Option<Vec<String>> = match expect {
        None => None,
        Some(MergeExpect::All) => Some(
            decarb_sim::builtin_scenarios()
                .iter()
                .map(|s| s.name.clone())
                .collect(),
        ),
        Some(MergeExpect::File(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Parse(ParseError(format!("--expect {path}: {e}"))))?;
            let scenarios = decarb_sim::parse_scenario_file(&text)
                .map_err(|e| CliError::Parse(ParseError(format!("{path}: {e}"))))?;
            Some(scenarios.iter().map(|s| s.name.clone()).collect())
        }
    };
    let merged = decarb_sim::merge_reports(expected.as_deref(), &docs)
        .map_err(|e| CliError::Check(format!("scenario merge: {e}")))?;
    Ok(Value::Array(merged).pretty())
}

/// Resolves the revision key a history entry is recorded under:
/// explicit `--rev`, then `$GITHUB_SHA` (the CI case), then the
/// repository HEAD, then `unknown`.
fn resolve_rev(explicit: Option<&str>) -> String {
    if let Some(rev) = explicit {
        return rev.to_string();
    }
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.trim().is_empty() {
            return sha.trim().to_string();
        }
    }
    if let Ok(output) = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
    {
        if output.status.success() {
            let rev = String::from_utf8_lossy(&output.stdout).trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    "unknown".to_string()
}

/// Appends one run's per-scenario emissions to a JSONL history file
/// (one object per line, keyed by git rev), creating the file when
/// missing — the per-commit series behind `scenario history show`.
pub(crate) fn scenario_history_append(
    report_path: &str,
    file: &str,
    rev: Option<&str>,
) -> Result<String, CliError> {
    let pairs = report_emissions(report_path)?;
    let total: f64 = pairs.iter().map(|(_, g)| g).sum();
    let rev = resolve_rev(rev);
    let entry = Value::object([
        ("rev", Value::from(rev.as_str())),
        ("scenarios", Value::from(pairs.len() as f64)),
        ("total_emissions_g", Value::from(total)),
        (
            "emissions",
            Value::Object(
                pairs
                    .iter()
                    .map(|(name, g)| (name.clone(), Value::from(*g)))
                    .collect(),
            ),
        ),
    ]);
    use std::io::Write as _;
    let mut handle = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(file)
        .map_err(|e| CliError::Parse(ParseError(format!("{file}: {e}"))))?;
    writeln!(handle, "{entry}")?;
    Ok(format!(
        "recorded {rev}: {} scenarios, {total:.1} g·CO2eq total → {file}\n",
        pairs.len()
    ))
}

/// Parses a JSONL history file into `(rev, scenarios, total_g)` rows.
fn read_history(file: &str) -> Result<Vec<(String, usize, f64)>, CliError> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| CliError::Parse(ParseError(format!("{file}: {e}"))))?;
    let mut rows: Vec<(String, usize, f64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = decarb_json::parse(line)
            .map_err(|e| CliError::Parse(ParseError(format!("{file} line {}: {e}", i + 1))))?;
        let Some(Value::String(rev)) = entry.get("rev") else {
            return Err(CliError::Parse(ParseError(format!(
                "{file} line {}: entry without a `rev`",
                i + 1
            ))));
        };
        let Some(Value::Number(scenarios)) = entry.get("scenarios") else {
            return Err(CliError::Parse(ParseError(format!(
                "{file} line {}: entry without `scenarios`",
                i + 1
            ))));
        };
        let Some(Value::Number(total)) = entry.get("total_emissions_g") else {
            return Err(CliError::Parse(ParseError(format!(
                "{file} line {}: entry without `total_emissions_g`",
                i + 1
            ))));
        };
        rows.push((rev.clone(), *scenarios as usize, *total));
    }
    Ok(rows)
}

/// Renders the emissions-history series as a trend table: one row per
/// recorded run with the total-emissions delta against the previous
/// run, so gradual drift the per-commit golden gate cannot see becomes
/// visible.
pub(crate) fn scenario_history_show(file: &str, limit: usize) -> Result<String, CliError> {
    let rows = read_history(file)?;
    if rows.is_empty() {
        return Ok(format!("{file}: no recorded runs\n"));
    }
    // Deltas are computed over the full series, then the tail is shown,
    // so the first visible row still reports its drift.
    let mut out = format!(
        "{:<14} {:>9} {:>16} {:>9}\n",
        "rev", "scenarios", "total g·CO2eq", "Δ total"
    );
    let skip = match limit {
        0 => 0,
        n => rows.len().saturating_sub(n),
    };
    for (i, (rev, scenarios, total)) in rows.iter().enumerate().skip(skip) {
        let delta = if i == 0 {
            "—".to_string()
        } else {
            let previous = rows[i - 1].2;
            if previous.abs() > f64::EPSILON {
                format!("{:+.3}%", (total - previous) / previous * 100.0)
            } else {
                "n/a".to_string()
            }
        };
        let short: String = rev.chars().take(12).collect();
        let _ = writeln!(out, "{short:<14} {scenarios:>9} {total:>16.1} {delta:>9}");
    }
    let _ = writeln!(
        out,
        "{} run{} recorded",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    );
    Ok(out)
}

/// The history-aware gate behind `scenario history check`: fails when
/// the last `window` recorded runs drift *monotonically* (no
/// commit-to-commit delta moves against the trend — plateaus count,
/// since behavior-neutral commits append bit-identical totals) and the
/// cumulative change across the window exceeds `max_drift_pct`
/// percent. A per-commit golden diff cannot see this: each step can
/// sit inside the golden tolerance while the series walks steadily
/// away.
pub(crate) fn scenario_history_check(
    file: &str,
    window: usize,
    max_drift_pct: f64,
) -> Result<String, CliError> {
    let rows = read_history(file)?;
    if rows.len() < 2 {
        return Ok(format!(
            "{file}: {} run(s) recorded, need at least 2 to check drift — pass
",
            rows.len()
        ));
    }
    let tail = &rows[rows.len().saturating_sub(window)..];
    let deltas: Vec<f64> = tail.windows(2).map(|w| w[1].2 - w[0].2).collect();
    let first = tail.first().expect("tail has ≥ 2 rows").2;
    let last = tail.last().expect("tail has ≥ 2 rows").2;
    // Weak monotonicity with a nonzero net move: a plateau (a commit
    // that reproduces emissions bit-identically) must not disarm the
    // gate, but a flat-only window is no trend at all.
    let monotonic_up = last > first && deltas.iter().all(|&d| d >= 0.0);
    let monotonic_down = last < first && deltas.iter().all(|&d| d <= 0.0);
    let drift_pct = if first.abs() > f64::EPSILON {
        (last - first) / first * 100.0
    } else if last.abs() > f64::EPSILON {
        f64::INFINITY
    } else {
        0.0
    };
    let span = tail.len();
    if (monotonic_up || monotonic_down) && drift_pct.abs() > max_drift_pct {
        let direction = if monotonic_up { "rising" } else { "falling" };
        return Err(CliError::Check(format!(
            "emissions history drifts monotonically over the last {span} runs \
             ({direction} {drift_pct:+.3}% cumulative, threshold ±{max_drift_pct}%): \
             {} → {} g·CO2eq — investigate before the trend compounds",
            first, last
        )));
    }
    Ok(format!(
        "history check: last {span} of {} runs, cumulative drift {drift_pct:+.3}% \
         (threshold ±{max_drift_pct}%, monotonic: {}) — pass
",
        rows.len(),
        monotonic_up || monotonic_down,
    ))
}

fn year_values<'a>(data: &'a TraceSet, zone: &str, year: i32) -> Result<&'a [f64], CliError> {
    Ok(data
        .series(zone)?
        .window(year_start(year), hours_in_year(year))?)
}

fn regions(data: &TraceSet, group: Option<&str>, year: i32) -> Result<String, CliError> {
    let needle = group.map(str::to_lowercase);
    let mut rows: Vec<(&str, &str, f64, f64)> = Vec::new();
    for (region, _) in data.iter() {
        if let Some(ref n) = needle {
            if !region.group.label().to_lowercase().starts_with(n) {
                continue;
            }
        }
        let values = year_values(data, &region.code, year)?;
        rows.push((
            region.code.as_str(),
            region.group.label(),
            decarb_stats::descriptive::mean(values),
            average_daily_cv(values),
        ));
    }
    if rows.is_empty() {
        return Err(CliError::Parse(ParseError(format!(
            "no regions match group `{}`",
            group.unwrap_or("")
        ))));
    }
    rows.sort_by(|a, b| a.2.total_cmp(&b.2));
    let mut out = format!(
        "{} regions, {year} (sorted by mean CI)\n{:<8} {:<11} {:>10} {:>9}\n",
        rows.len(),
        "zone",
        "group",
        "mean g/kWh",
        "daily CV"
    );
    for (code, label, mean, cv) in rows {
        let _ = writeln!(out, "{code:<8} {label:<11} {mean:>10.1} {cv:>9.3}");
    }
    Ok(out)
}

fn analyze(data: &TraceSet, zone: &str, year: i32) -> Result<String, CliError> {
    let region = data.region(zone)?;
    let series = data.series(zone)?;
    // Imported datasets (`--data`) may not cover the whole requested
    // year; fall back to the full stored range rather than failing.
    let (values, range_label) = match series.window(year_start(year), hours_in_year(year)) {
        Ok(window) => (window, format!("year {year}")),
        Err(_) => (
            series.values(),
            format!("full stored range ({} hours)", series.len()),
        ),
    };
    let mean = decarb_stats::descriptive::mean(values);
    let cv = average_daily_cv(values);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let p24 = periodicity_score(values, 24);
    let p168 = periodicity_score(values, 168);
    let drift = year_values(data, zone, 2020)
        .ok()
        .map(|first| mean - decarb_stats::descriptive::mean(first));

    let mut out = String::new();
    let _ = writeln!(out, "{} — {} ({})", region.code, region.name, region.group);
    let _ = writeln!(out, "  {range_label}");
    let _ = writeln!(out, "  mean CI        {mean:8.1} g/kWh");
    let _ = writeln!(
        out,
        "  daily CV       {cv:8.3}  ({})",
        if cv < 0.1 {
            "low variation — weak temporal-shifting case (§4)"
        } else {
            "variable — temporal shifting can help"
        }
    );
    let _ = writeln!(out, "  min / max      {min:8.1} / {max:.1} g/kWh");
    let _ = writeln!(out, "  period scores  24h {p24:.2}, 168h {p168:.2}");
    if let Some(d) = decarb_stats::seasonal::decompose(values, 24) {
        let _ = writeln!(
            out,
            "  seasonality    {:8.2} (daily strength), trend {:.2}",
            d.seasonal_strength(),
            d.trend_strength()
        );
    }
    match drift {
        Some(drift) => {
            let _ = writeln!(out, "  drift 2020→{year} {drift:+8.1} g/kWh");
        }
        None => {
            let _ = writeln!(out, "  drift 2020→{year}      n/a (no 2020 data)");
        }
    }
    let _ = writeln!(
        out,
        "  generation mix fossil {:.0}%, renewable {:.0}%",
        region.mix.fossil_share() * 100.0,
        region.mix.renewable_share() * 100.0
    );
    Ok(out)
}

fn plan(
    data: &TraceSet,
    zone: &str,
    hours: usize,
    slack: usize,
    arrive: usize,
    year: i32,
) -> Result<String, CliError> {
    if arrive + hours + slack > hours_in_year(year) {
        return Err(CliError::Parse(ParseError(
            "job window extends past the year end; lower --arrive/--slack".into(),
        )));
    }
    let series = data.series(zone)?;
    let arrival = year_start(year).plus(arrive);
    // Check the job itself fits the stored data before the (panicking)
    // planner kernels see it — imported datasets may be short. The
    // planners clamp the *slack* at the trace end themselves.
    series.window(arrival, hours)?;
    let planner = TemporalPlanner::new(series);
    let baseline = planner.baseline_cost(arrival, hours);
    let deferred = planner.best_deferred(arrival, hours, slack);
    let (_, interrupted) = planner.best_interruptible(arrival, hours, slack);
    let candidates: Vec<&decarb_traces::Region> = data.regions().iter().collect();
    // Full calendar coverage unlocks the paper's annual-mean migration
    // policies; short imports fall back to stored-range means.
    let full_year = data
        .iter()
        .all(|(_, s)| s.window(year_start(year), hours_in_year(year)).is_ok());
    let (migrated, hopped, hops) = if full_year {
        let migrated = one_migration(data, &candidates, year, arrival, hours);
        let (hopped, hops) = inf_migration(data, &candidates, arrival, hours);
        (migrated, hopped, hops)
    } else {
        let (dest, _) = data
            .stored_means()
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("dataset is non-empty");
        let cost: f64 = data
            .series(&dest.code)?
            .window(arrival, hours)?
            .iter()
            .sum();
        let migrated = decarb_core::spatial::SpatialOutcome {
            destination: dest.code.clone(),
            cost_g: cost,
        };
        // Hourly hop on the instantaneous minimum across candidates.
        let mut hop_cost = 0.0;
        let mut hops = 0usize;
        let mut last: Option<&str> = None;
        for k in 0..hours {
            let hour = arrival.plus(k);
            let (code, ci) = data
                .iter()
                .filter_map(|(r, s)| s.at(hour).map(|ci| (r.code.as_str(), ci)))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(b.0)))
                .ok_or(TraceError::OutOfRange { hour })?;
            hop_cost += ci;
            if last.is_some_and(|l| l != code) {
                hops += 1;
            }
            last = Some(code);
        }
        let hopped = decarb_core::spatial::SpatialOutcome {
            destination: last.unwrap_or(&dest.code).to_string(),
            cost_g: hop_cost,
        };
        (migrated, hopped, hops)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{hours}h job at {zone}, arriving hour {arrive} of {year}, slack {slack}h"
    );
    let pct = |cost: f64| (cost - baseline) / baseline * 100.0;
    let _ = writeln!(out, "  run now             {baseline:9.1} g");
    let _ = writeln!(
        out,
        "  defer               {:9.1} g ({:+5.1}%, start {})",
        deferred.cost_g,
        pct(deferred.cost_g),
        deferred.start
    );
    let _ = writeln!(
        out,
        "  defer + interrupt   {:9.1} g ({:+5.1}%)",
        interrupted,
        pct(interrupted)
    );
    let _ = writeln!(
        out,
        "  migrate once → {:<6}{:9.1} g ({:+5.1}%)",
        migrated.destination,
        migrated.cost_g,
        pct(migrated.cost_g)
    );
    let _ = writeln!(
        out,
        "  hop hourly ({hops:>2} hops){:9.1} g ({:+5.1}%)",
        hopped.cost_g,
        pct(hopped.cost_g)
    );
    Ok(out)
}

fn forecast(data: &TraceSet, zone: &str, days: usize, year: i32) -> Result<String, CliError> {
    let series = data.series(zone)?;
    let eval_start = year_start(year);
    let eval_hours = (days * 24).min(hours_in_year(year));
    let config = BacktestConfig::default();
    let train = series.slice(year_start(year - 1), 8760)?;
    let mut models: Vec<(&str, Box<dyn Forecaster>)> = vec![
        ("persistence", Box::new(Persistence)),
        ("seasonal-naive", Box::new(SeasonalNaive::daily())),
        ("diurnal-template", Box::new(DiurnalTemplate::default())),
    ];
    if let Some(ar) = LinearAr::fit(&train) {
        models.push(("linear-ar", Box::new(ar)));
    }
    let mut out = format!(
        "backtesting {zone}, {days} days of {year}, 96h horizon\n{:<18} {:>8} {:>8} {:>8}\n",
        "model", "MAPE %", "day1 %", "day4 %"
    );
    for (name, model) in &models {
        let report = backtest(model.as_ref(), series, eval_start, eval_hours, &config);
        let _ = writeln!(
            out,
            "{name:<18} {:>8.2} {:>8.2} {:>8.2}",
            report.mape_pct, report.mape_by_lead_day[0], report.mape_by_lead_day[3]
        );
    }
    Ok(out)
}

fn rank(data: &TraceSet, year: i32) -> Result<String, CliError> {
    let s = rank_stability(data, year, 73, 5);
    let mut out = String::new();
    let _ = writeln!(out, "rank-order stability, {} regions, {year}", data.len());
    let _ = writeln!(
        out,
        "  mean Kendall tau vs annual ranking  {:.3}",
        s.mean_tau
    );
    let _ = writeln!(
        out,
        "  worst sampled hour                  {:.3}",
        s.min_tau
    );
    let _ = writeln!(
        out,
        "  greenest == annual greenest         {:.1}% of hours",
        s.greenest_match * 100.0
    );
    let _ = writeln!(
        out,
        "  top-{} set overlap                   {:.1}%",
        s.k,
        s.topk_overlap * 100.0
    );
    let _ = writeln!(
        out,
        "stable ranks mean one migration captures nearly everything (§5.1.4)"
    );
    Ok(out)
}

fn export(data: &TraceSet, zone: &str, year: i32) -> Result<String, CliError> {
    let series = data
        .series(zone)?
        .slice(year_start(year), hours_in_year(year))?;
    let mut buffer = Vec::new();
    csv::write_series(&series, &mut buffer)?;
    Ok(String::from_utf8(buffer).expect("CSV output is ASCII"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_shows_usage() {
        let out = dispatch(&[]).unwrap();
        assert!(out.contains("usage: decarb-cli"));
    }

    #[test]
    fn regions_sorted_by_mean() {
        let out = dispatch(&argv(&["regions"])).unwrap();
        assert!(out.starts_with("123 regions"));
        // Sweden is the global minimum and must appear before Poland.
        let se = out.find("SE ").expect("SE listed");
        let pl = out.find("PL ").expect("PL listed");
        assert!(se < pl);
    }

    #[test]
    fn regions_group_filter() {
        let out = dispatch(&argv(&["regions", "--group", "oce"])).unwrap();
        assert!(out.contains("AU-"));
        assert!(!out.contains("DE "));
        assert!(dispatch(&argv(&["regions", "--group", "atlantis"])).is_err());
    }

    #[test]
    fn analyze_renders_profile() {
        let out = dispatch(&argv(&["analyze", "us-ca"])).unwrap();
        assert!(out.contains("US-CA"));
        assert!(out.contains("mean CI"));
        assert!(out.contains("period scores"));
        assert!(out.contains("temporal shifting can help"));
        let stable = dispatch(&argv(&["analyze", "IN-WE"])).unwrap();
        assert!(stable.contains("low variation"));
    }

    #[test]
    fn unknown_zone_is_a_trace_error() {
        let err = dispatch(&argv(&["analyze", "XX-NOPE"])).unwrap_err();
        assert!(matches!(err, CliError::Trace(_)));
    }

    #[test]
    fn plan_orders_costs() {
        let out = dispatch(&argv(&["plan", "DE", "--hours", "6", "--slack", "48"])).unwrap();
        assert!(out.contains("run now"));
        assert!(out.contains("migrate once → SE"));
        // Interruption cannot be worse than deferral, which cannot be
        // worse than running now: all percentages non-positive. The
        // percentage lives in the *last* parenthesized group (the hop
        // line has an earlier "(N hops)" group).
        for line in out.lines().filter(|l| l.contains('%')) {
            let group = line.rsplit('(').next().unwrap();
            let pct: f64 = group.split('%').next().unwrap().trim().parse().unwrap();
            assert!(pct <= 1e-9, "line {line}");
        }
    }

    #[test]
    fn plan_rejects_overlong_windows() {
        let err = dispatch(&argv(&[
            "plan", "DE", "--hours", "24", "--arrive", "8750", "--slack", "24",
        ]))
        .unwrap_err();
        assert!(format!("{err}").contains("past the year end"));
    }

    #[test]
    fn forecast_lists_all_models() {
        let out = dispatch(&argv(&["forecast", "US-CA", "--days", "20"])).unwrap();
        for model in [
            "persistence",
            "seasonal-naive",
            "diurnal-template",
            "linear-ar",
        ] {
            assert!(out.contains(model), "missing {model}");
        }
    }

    #[test]
    fn rank_reports_stability() {
        let out = dispatch(&argv(&["rank"])).unwrap();
        assert!(out.contains("Kendall tau"));
        assert!(out.contains("123 regions"));
    }

    #[test]
    fn export_is_csv_round_trippable() {
        let out = dispatch(&argv(&["export", "SE", "--year", "2021"])).unwrap();
        let parsed = csv::read_series(out.as_bytes()).unwrap();
        assert_eq!(parsed.len(), hours_in_year(2021));
        assert_eq!(parsed.start(), year_start(2021));
    }

    #[test]
    fn parse_errors_render_usage() {
        let err = dispatch(&argv(&["plan", "DE"])).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("--hours"));
        assert!(msg.contains("usage:"));
    }

    /// Writes a tiny two-zone dataset (with injected defects) to a temp
    /// file and returns its path.
    fn write_defective_dataset(name: &str) -> std::path::PathBuf {
        use std::io::Write as _;
        let path = std::env::temp_dir().join(name);
        let mut file = std::fs::File::create(&path).unwrap();
        writeln!(file, "zone,hour,ci_g_per_kwh").unwrap();
        // 10 days of diurnal data for SE, one NaN and one zero inside.
        for h in 0..240u32 {
            let v = if h == 50 {
                "NaN".to_string()
            } else if h == 51 {
                "0".to_string()
            } else {
                format!(
                    "{}",
                    20.0 + 5.0 * (std::f64::consts::TAU * (h % 24) as f64 / 24.0).sin()
                )
            };
            writeln!(file, "SE,{h},{v}").unwrap();
        }
        for h in 0..240u32 {
            writeln!(
                file,
                "DE,{h},{}",
                400.0 + 80.0 * (std::f64::consts::TAU * (h % 24) as f64 / 24.0).sin()
            )
            .unwrap();
        }
        path
    }

    #[test]
    fn data_option_loads_validates_and_repairs() {
        let path = write_defective_dataset("decarb_cli_test_data.csv");
        let out = dispatch(&argv(&["--data", path.to_str().unwrap(), "analyze", "se"])).unwrap();
        // Falls back to the stored range (no full 2022 coverage) and
        // reports no drift baseline.
        assert!(out.contains("full stored range (240 hours)"), "{out}");
        assert!(out.contains("n/a (no 2020 data)"), "{out}");
        // The NaN/zero were repaired: the mean stays near 20.
        let mean_line = out.lines().find(|l| l.contains("mean CI")).unwrap();
        assert!(mean_line.contains("20."), "{mean_line}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn data_option_supports_planning_on_imported_traces() {
        let path = write_defective_dataset("decarb_cli_test_plan.csv");
        // Hour 0 of the import is hour 0 of 2020.
        let out = dispatch(&argv(&[
            "--data",
            path.to_str().unwrap(),
            "plan",
            "DE",
            "--hours",
            "2",
            "--slack",
            "12",
            "--year",
            "2020",
        ]))
        .unwrap();
        assert!(out.contains("migrate once → SE"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn data_option_rejects_missing_files_and_bad_zones() {
        let err = dispatch(&argv(&["--data", "/nonexistent/x.csv", "rank"])).unwrap_err();
        assert!(matches!(err, CliError::Trace(TraceError::Io(_))));
        let err = dispatch(&argv(&["--data"])).unwrap_err();
        assert!(format!("{err}").contains("needs a file path"));
    }

    #[test]
    fn analyze_reports_seasonal_strength() {
        let out = dispatch(&argv(&["analyze", "US-CA"])).unwrap();
        assert!(out.contains("seasonality"), "{out}");
    }

    #[test]
    fn list_shows_every_registered_experiment() {
        let out = dispatch(&argv(&["list"])).unwrap();
        for id in registry::ids() {
            assert!(
                out.lines().any(|l| l.split_whitespace().next() == Some(id)),
                "missing {id}"
            );
        }
        assert!(out.contains(&format!("{} experiments", registry::count())));
    }

    #[test]
    fn run_unknown_experiment_is_a_parse_error() {
        let err = dispatch(&argv(&["run", "fig99"])).unwrap_err();
        assert!(matches!(err, CliError::Parse(_)));
        assert!(format!("{err}").contains("unknown experiment id `fig99`"));
    }

    #[test]
    fn run_single_experiment_renders_tables() {
        let out = dispatch(&argv(&["run", "table1"])).unwrap();
        assert!(out.contains("[table1]"), "{out}");
    }

    #[test]
    fn run_json_emits_id_and_tables() {
        let out = dispatch(&argv(&["run", "table1", "--json"])).unwrap();
        assert!(out.contains("\"id\": \"table1\""), "{out}");
        assert!(out.contains("\"tables\""), "{out}");
    }

    #[test]
    fn run_on_refuses_explicit_datasets_for_registry_commands() {
        let data = decarb_traces::builtin_dataset();
        for command in [
            Command::List,
            Command::Run {
                id: "table1".into(),
                json: false,
            },
            Command::ScenarioList,
            Command::ScenarioDiff {
                report: "r.json".into(),
                golden: "g.json".into(),
                tolerance_pct: 0.1,
            },
        ] {
            let err = run_on(&command, &data).unwrap_err();
            assert!(format!("{err}").contains("built-in dataset"));
        }
    }

    #[test]
    fn scenario_list_shows_every_builtin_scenario() {
        let out = dispatch(&argv(&["scenario", "list"])).unwrap();
        for scenario in decarb_sim::builtin_scenarios() {
            assert!(
                out.lines()
                    .any(|l| l.split_whitespace().next() == Some(scenario.name.as_str())),
                "missing {}",
                scenario.name
            );
        }
        assert!(out.contains("54 scenarios"));
    }

    #[test]
    fn scenario_run_single_renders_table_row() {
        let out = dispatch(&argv(&["scenario", "run", "batch-agnostic-us"])).unwrap();
        assert!(out.contains("scenario"), "{out}");
        assert!(out.contains("batch-agnostic-us"), "{out}");
    }

    #[test]
    fn scenario_run_single_json_is_an_object() {
        let out = dispatch(&argv(&[
            "scenario",
            "run",
            "interactive-agnostic-europe",
            "--json",
        ]))
        .unwrap();
        assert!(out.starts_with('{'), "{out}");
        assert!(out.contains("\"name\": \"interactive-agnostic-europe\""));
        assert!(out.contains("\"avg_ci_g_per_kwh\""));
        assert!(out.contains("\"overheads\": \"zero\""));
    }

    #[test]
    fn scenario_run_unknown_name_is_a_parse_error_listing_valid_names() {
        let err = dispatch(&argv(&["scenario", "run", "nope-nope-nope"])).unwrap_err();
        assert!(matches!(err, CliError::Parse(_)));
        let text = format!("{err}");
        assert!(text.contains("unknown scenario `nope-nope-nope`"));
        assert!(text.contains("valid names:"), "{text}");
        assert!(text.contains("batch-agnostic-europe"), "{text}");
        assert!(text.contains("mixed-spatiotemporal-global"), "{text}");
    }

    #[test]
    fn scenario_run_streams_same_bytes_as_buffered_dispatch() {
        let argv = argv(&["scenario", "run", "batch-deferral-us", "--json"]);
        let buffered = dispatch(&argv).unwrap();
        let mut streamed = Vec::new();
        crate::dispatch_stream(&argv, &mut streamed).unwrap();
        // Byte-identical up to the wall-clock `elapsed_s` field (the two
        // calls are separate simulation runs).
        let strip = |text: &str| -> String {
            text.lines()
                .filter(|l| !l.contains("\"elapsed_s\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&String::from_utf8(streamed).unwrap()),
            strip(&format!("{buffered}\n"))
        );
    }

    #[test]
    fn scenario_run_accepts_imported_datasets_when_zones_are_covered() {
        let data = decarb_traces::builtin_dataset();
        let command = Command::ScenarioRun {
            target: crate::args::ScenarioTarget::Name("batch-agnostic-europe".into()),
            json: false,
            shard: None,
            workers: None,
            strict: false,
        };
        let out = run_on(&command, &data).unwrap();
        assert!(out.contains("batch-agnostic-europe"), "{out}");
    }

    #[test]
    fn scenario_check_passes_the_builtin_matrix() {
        let data = decarb_traces::builtin_dataset();
        let out = scenario_check_cmd(
            &crate::args::ScenarioTarget::Name("all".into()),
            false,
            &data,
        )
        .unwrap();
        assert_eq!(out, "54 scenario(s) checked, 0 diagnostics");
        let single = scenario_check_cmd(
            &crate::args::ScenarioTarget::Name("batch-agnostic-europe".into()),
            false,
            &data,
        )
        .unwrap();
        assert_eq!(single, "1 scenario(s) checked, 0 diagnostics");
        assert!(matches!(
            scenario_check_cmd(
                &crate::args::ScenarioTarget::Name("frobnicate".into()),
                false,
                &data
            ),
            Err(CliError::Parse(_))
        ));
    }

    const UNSATISFIABLE_SCENARIO: &str = "\
[workload nightly]
class = batch
per_origin = 6
spacing = 48
length = 8
slack = week

[scenario doomed]
workload = nightly
policy = deferral
regions = europe
horizon = 240
";

    #[test]
    fn scenario_check_fails_files_with_line_spanned_diagnostics() {
        let data = decarb_traces::builtin_dataset();
        let path = temp_file("check-doomed.scenario", UNSATISFIABLE_SCENARIO);
        let target = crate::args::ScenarioTarget::File(path.to_str().unwrap().to_string());
        let Err(CliError::Check(report)) = scenario_check_cmd(&target, false, &data) else {
            panic!("unsatisfiable file must fail the check");
        };
        assert!(report.contains("[unsatisfiable-job]"), "{report}");
        assert!(report.contains("check-doomed.scenario:8:"), "{report}");
        // The JSON form carries the same spans machine-readably.
        let Err(CliError::Check(json)) = scenario_check_cmd(&target, true, &data) else {
            panic!("unsatisfiable file must fail the JSON check too");
        };
        let value = decarb_json::parse(&json).unwrap();
        let Value::Array(items) = &value else {
            panic!("JSON diagnostics must be an array: {json}");
        };
        assert_eq!(items.len(), 1, "{json}");
        assert_eq!(
            items[0].get("rule"),
            Some(&Value::from("unsatisfiable-job"))
        );
        assert_eq!(items[0].get("line"), Some(&Value::from(8.0)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scenario_run_warns_by_default_and_fails_under_strict() {
        let data = decarb_traces::builtin_dataset();
        let path = temp_file("run-strict.scenario", UNSATISFIABLE_SCENARIO);
        let target = crate::args::ScenarioTarget::File(path.to_str().unwrap().to_string());
        // Default: findings warn (to stderr) but the sweep still runs.
        let out = run_scenarios_cmd(&target, false, None, None, false, None, &data).unwrap();
        assert!(out.contains("doomed"), "{out}");
        // --strict: the same findings abort before simulating.
        let Err(CliError::Check(report)) =
            run_scenarios_cmd(&target, false, None, None, true, None, &data)
        else {
            panic!("--strict must fail on findings");
        };
        assert!(report.contains("unsatisfiable-job"), "{report}");
        assert!(report.contains("--strict"), "{report}");
        // A clean target passes --strict untouched.
        let ok = run_scenarios_cmd(
            &crate::args::ScenarioTarget::Name("batch-agnostic-europe".into()),
            false,
            None,
            None,
            true,
            None,
            &data,
        )
        .unwrap();
        assert!(ok.contains("batch-agnostic-europe"), "{ok}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shipped_example_files_check_as_documented() {
        // examples/custom.scenario is advertised as check-clean;
        // examples/unsatisfiable.scenario as caught with a line span.
        let data = decarb_traces::builtin_dataset();
        let examples = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .unwrap()
            .join("examples");
        let custom = examples.join("custom.scenario");
        let out = scenario_check_cmd(
            &crate::args::ScenarioTarget::File(custom.to_str().unwrap().to_string()),
            false,
            &data,
        )
        .unwrap();
        assert!(out.ends_with("0 diagnostics"), "{out}");
        let doomed = examples.join("unsatisfiable.scenario");
        let Err(CliError::Check(report)) = scenario_check_cmd(
            &crate::args::ScenarioTarget::File(doomed.to_str().unwrap().to_string()),
            false,
            &data,
        ) else {
            panic!("examples/unsatisfiable.scenario must fail the check");
        };
        assert!(report.contains("[unsatisfiable-job]"), "{report}");
        assert!(report.contains("unsatisfiable.scenario:23:"), "{report}");
    }

    #[test]
    fn analyze_workspace_is_clean_on_this_repo_and_fails_on_seeded_violations() {
        // The workspace itself must lint clean — this is the same gate
        // CI runs via `decarb-cli analyze --workspace`.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .unwrap();
        let out = analyze_workspace_cmd(root.to_str().unwrap(), false).unwrap();
        assert!(out.contains("0 diagnostics"), "{out}");
        // A seeded violation tree must fail with a rendered report.
        let seed = std::env::temp_dir().join("analyze-seed-test");
        std::fs::create_dir_all(seed.join("src")).unwrap();
        std::fs::write(
            seed.join("src/lib.rs"),
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )
        .unwrap();
        let Err(CliError::Check(report)) = analyze_workspace_cmd(seed.to_str().unwrap(), false)
        else {
            panic!("seeded violation must fail the analyze gate");
        };
        assert!(report.contains("[no-panic]"), "{report}");
        std::fs::remove_dir_all(seed).ok();
        // The checked-in CI seed (`ci/analyze-seed`) must keep tripping
        // the gate with exactly its documented findings — CI negates
        // this command and would go green-forever if the seed rotted.
        let ci_seed = root.join("ci/analyze-seed");
        let Err(CliError::Check(report)) = analyze_workspace_cmd(ci_seed.to_str().unwrap(), false)
        else {
            panic!("the checked-in CI seed must fail the analyze gate");
        };
        assert!(report.contains("[no-panic]"), "{report}");
        assert!(report.contains("[hot-path]"), "{report}");
        assert!(report.contains("3 diagnostics"), "{report}");
    }

    /// Writes `text` to a unique temp file and returns its path.
    fn temp_file(name: &str, text: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn scenario_file_runs_parse_execute_and_serialize() {
        let path = temp_file(
            "decarb_cli_test_run.scenario",
            "\
[workload tiny]
class = batch
per_origin = 2
spacing = 24
length = 3
slack = day

[scenario tiny-forecast]
workload = tiny
policy = forecast
regions = europe

[scenario tiny-spatiotemporal]
workload = tiny
policy = spatiotemporal
regions = europe
",
        );
        let out = dispatch(&argv(&[
            "scenario",
            "run",
            "--file",
            path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let value = decarb_json::parse(&out).expect("valid JSON document");
        let decarb_json::Value::Array(items) = value else {
            panic!("two scenarios render as an array: {out}");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("name"), Some(&Value::from("tiny-forecast")));
        assert_eq!(items[1].get("policy"), Some(&Value::from("spatiotemporal")));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_zones_import_with_defaults_and_sidecar_metadata() {
        // A dataset whose zone is absent from the built-in catalog: the
        // import succeeds with default metadata instead of erroring.
        use std::io::Write as _;
        let path = std::env::temp_dir().join("decarb-cli-unknown-zone.csv");
        let mut file = std::fs::File::create(&path).unwrap();
        writeln!(file, "zone,hour,ci_g_per_kwh").unwrap();
        for h in 0..480u32 {
            writeln!(file, "XX-NOWHERE,{h},{}", 120.0 + (h % 24) as f64).unwrap();
        }
        for h in 0..480u32 {
            writeln!(file, "SE,{h},16.0").unwrap();
        }
        drop(file);
        // Without a sidecar the unknown zone gets default metadata.
        let set = crate::load_dataset(path.to_str().unwrap(), None).unwrap();
        let region = set.region("XX-NOWHERE").unwrap();
        assert_eq!(region.name, "XX-NOWHERE");
        assert_eq!(region.group, decarb_traces::GeoGroup::Other);
        // A sidecar upgrades the default metadata.
        let sidecar = temp_file(
            "decarb-cli-sidecar.regions",
            "[region XX-NOWHERE]
name = Nowhere Grid
group = africa
lat = 5
lon = 10
",
        );
        let set =
            crate::load_dataset(path.to_str().unwrap(), Some(sidecar.to_str().unwrap())).unwrap();
        let region = set.region("XX-NOWHERE").unwrap();
        assert_eq!(region.name, "Nowhere Grid");
        assert_eq!(region.group, decarb_traces::GeoGroup::Africa);
        assert_eq!(region.lat, 5.0);
        // Scenario sweeps complete over the unknown-zone dataset.
        let scenario_file = temp_file(
            "decarb-cli-unknown-zone.scenario",
            "[workload w]
class = batch
per_origin = 3
length = 2
slack = day

             [regions offgrid]
codes = XX-NOWHERE, SE

             [matrix m]
workloads = w
policies = agnostic, greenest
regions = offgrid
             horizon = 240
year = 2020
",
        );
        let out = dispatch(&argv(&[
            "--data",
            path.to_str().unwrap(),
            "--regions",
            sidecar.to_str().unwrap(),
            "scenario",
            "run",
            "--file",
            scenario_file.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let value = decarb_json::parse(&out).unwrap();
        let Value::Array(reports) = value else {
            panic!("expected an array: {out}");
        };
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert_eq!(report.get("completed"), report.get("jobs"), "{report}");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
        std::fs::remove_file(&scenario_file).ok();
    }

    #[test]
    fn scenario_files_declaring_custom_regions_run_on_synthesized_traces() {
        // No --data at all: the [region] sections alone carry the zones,
        // and the runner synthesizes their traces from the declared
        // calibration targets.
        let scenario_file = temp_file(
            "decarb-cli-custom-region.scenario",
            "[region XX-HYDRO]
name = Hydrotopia
group = south-america
mean_ci = 45
             mix = hydro:0.8, wind:0.2

             [region XX-COAL]
name = Coalville
group = asia
mean_ci = 700
             mix = coal:0.9, solar:0.1

             [workload w]
class = batch
per_origin = 4
length = 4
slack = day

             [regions synthetic]
codes = XX-HYDRO, XX-COAL

             [matrix m]
workloads = w
policies = agnostic, greenest
regions = synthetic
             horizon = 240
",
        );
        let out = dispatch(&argv(&[
            "scenario",
            "run",
            "--file",
            scenario_file.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let value = decarb_json::parse(&out).unwrap();
        let Value::Array(reports) = value else {
            panic!("expected an array: {out}");
        };
        assert_eq!(reports.len(), 2);
        let ci_of = |policy: &str| -> f64 {
            reports
                .iter()
                .find(|r| r.get("policy") == Some(&Value::from(policy)))
                .and_then(|r| match r.get("avg_ci_g_per_kwh") {
                    Some(Value::Number(n)) => Some(*n),
                    _ => None,
                })
                .expect("policy present")
        };
        assert!(
            ci_of("greenest") < ci_of("agnostic"),
            "routing to the hypothetical hydro grid must help"
        );
        std::fs::remove_file(&scenario_file).ok();
    }

    #[test]
    fn history_check_gates_monotonic_drift() {
        let entry = |rev: &str, total: f64| -> String {
            Value::object([
                ("rev", Value::from(rev)),
                ("scenarios", Value::from(2.0)),
                ("total_emissions_g", Value::from(total)),
                ("emissions", Value::object::<String>([])),
            ])
            .to_string()
        };
        // Monotonic rise beyond the threshold: fail.
        let rising = temp_file(
            "decarb-history-rising.jsonl",
            &format!(
                "{}
{}
{}
{}
",
                entry("r1", 100.0),
                entry("r2", 100.4),
                entry("r3", 100.9),
                entry("r4", 101.5),
            ),
        );
        let err = dispatch(&argv(&[
            "scenario",
            "history",
            "check",
            "--file",
            rising.to_str().unwrap(),
            "--window",
            "4",
            "--max-drift-pct",
            "1.0",
        ]))
        .unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("monotonically"), "{text}");
        assert!(text.contains("rising"), "{text}");
        // The same series passes under a looser threshold…
        let ok = dispatch(&argv(&[
            "scenario",
            "history",
            "check",
            "--file",
            rising.to_str().unwrap(),
            "--window",
            "4",
            "--max-drift-pct",
            "5.0",
        ]))
        .unwrap();
        assert!(ok.contains("pass"), "{ok}");
        // A plateau (a behavior-neutral commit repeating the exact
        // total) must not disarm the gate: the trend is still
        // monotonic and the cumulative drift still exceeds the
        // threshold.
        let plateau = temp_file(
            "decarb-history-plateau.jsonl",
            &format!(
                "{}\n{}\n{}\n{}\n{}\n",
                entry("r1", 100.0),
                entry("r2", 100.4),
                entry("r3", 100.4),
                entry("r4", 100.9),
                entry("r5", 101.5),
            ),
        );
        let err = dispatch(&argv(&[
            "scenario",
            "history",
            "check",
            "--file",
            plateau.to_str().unwrap(),
            "--window",
            "5",
            "--max-drift-pct",
            "0.5",
        ]))
        .unwrap_err();
        assert!(format!("{err}").contains("monotonically"), "{err}");
        // An entirely flat series is no trend and always passes.
        let flat = temp_file(
            "decarb-history-flat.jsonl",
            &format!(
                "{}\n{}\n{}\n",
                entry("r1", 100.0),
                entry("r2", 100.0),
                entry("r3", 100.0)
            ),
        );
        let ok = dispatch(&argv(&[
            "scenario",
            "history",
            "check",
            "--file",
            flat.to_str().unwrap(),
            "--max-drift-pct",
            "0",
        ]))
        .unwrap();
        assert!(ok.contains("pass"), "{ok}");
        std::fs::remove_file(&plateau).ok();
        std::fs::remove_file(&flat).ok();
        // …and a non-monotonic series passes even under a tight one.
        let noisy = temp_file(
            "decarb-history-noisy.jsonl",
            &format!(
                "{}
{}
{}
{}
",
                entry("r1", 100.0),
                entry("r2", 104.0),
                entry("r3", 99.0),
                entry("r4", 103.0),
            ),
        );
        let ok = dispatch(&argv(&[
            "scenario",
            "history",
            "check",
            "--file",
            noisy.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(ok.contains("pass"), "{ok}");
        // A window only sees the tail: the last 2 entries of the noisy
        // series rise 99 → 103 (monotonic within the window).
        let err = dispatch(&argv(&[
            "scenario",
            "history",
            "check",
            "--file",
            noisy.to_str().unwrap(),
            "--window",
            "2",
            "--max-drift-pct",
            "1.0",
        ]))
        .unwrap_err();
        assert!(format!("{err}").contains("monotonically"), "{err}");
        // Fewer than two runs trivially pass; bad arguments error.
        let single = temp_file("decarb-history-single.jsonl", &entry("r1", 50.0));
        let ok = dispatch(&argv(&[
            "scenario",
            "history",
            "check",
            "--file",
            single.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(ok.contains("need at least 2"), "{ok}");
        let err = dispatch(&argv(&[
            "scenario", "history", "check", "--file", "x", "--window", "1",
        ]))
        .unwrap_err();
        assert!(format!("{err}").contains("at least 2"), "{err}");
        std::fs::remove_file(&rising).ok();
        std::fs::remove_file(&noisy).ok();
        std::fs::remove_file(&single).ok();
    }

    #[test]
    fn scenario_file_runs_against_imported_datasets() {
        // A two-zone `--data` import plus a scenario file deploying
        // exactly those zones: the sweep must run on the imported
        // traces, and region sets the import lacks must error cleanly.
        let data_path = write_defective_dataset("decarb_cli_test_scenario_data.csv");
        let scenario_path = temp_file(
            "decarb_cli_test_imported.scenario",
            "\
[defaults]
year = 2020
horizon = 120

[workload tiny]
class = batch
per_origin = 2
spacing = 24
length = 3
slack = day

[regions pair]
codes = SE, DE

[scenario tiny-deferral-pair]
workload = tiny
policy = deferral
regions = pair
",
        );
        let out = dispatch(&argv(&[
            "--data",
            data_path.to_str().unwrap(),
            "scenario",
            "run",
            "--file",
            scenario_path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(out.contains("\"name\": \"tiny-deferral-pair\""), "{out}");
        assert!(out.contains("\"completed\": 4"), "{out}");
        // A built-in region set the import cannot cover errors instead
        // of panicking.
        let err = dispatch(&argv(&[
            "--data",
            data_path.to_str().unwrap(),
            "scenario",
            "run",
            "batch-agnostic-europe",
        ]))
        .unwrap_err();
        assert!(format!("{err}").contains("not in the dataset"), "{err}");
        std::fs::remove_file(data_path).ok();
        std::fs::remove_file(scenario_path).ok();
    }

    #[test]
    fn scenario_file_errors_surface_with_line_numbers() {
        let path = temp_file(
            "decarb_cli_test_bad.scenario",
            "[workload w]\nclass = batch\n\n[scenario s]\nworkload = w\npolicy = psychic\nregions = europe\n",
        );
        let err = dispatch(&argv(&[
            "scenario",
            "run",
            "--file",
            path.to_str().unwrap(),
        ]))
        .unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("line 6"), "{text}");
        assert!(text.contains("unknown policy `psychic`"), "{text}");
        std::fs::remove_file(path).ok();
        let err = dispatch(&argv(&[
            "scenario",
            "run",
            "--file",
            "/nonexistent.scenario",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Parse(_)));
    }

    #[test]
    fn scenario_diff_passes_identical_reports_and_catches_drift() {
        let report = temp_file(
            "decarb_cli_test_diff_report.json",
            r#"[{"name": "a", "emissions_g": 100.0}, {"name": "b", "emissions_g": 50.0}]"#,
        );
        let golden = temp_file(
            "decarb_cli_test_diff_golden.json",
            r#"[{"name": "a", "emissions_g": 100.0}, {"name": "b", "emissions_g": 50.0}]"#,
        );
        let out = dispatch(&argv(&[
            "scenario",
            "diff",
            "--report",
            report.to_str().unwrap(),
            "--golden",
            golden.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("2 scenarios within"), "{out}");
        // Drift beyond tolerance fails with the offending scenario named.
        let drifted = temp_file(
            "decarb_cli_test_diff_drifted.json",
            r#"[{"name": "a", "emissions_g": 103.0}, {"name": "b", "emissions_g": 50.0}]"#,
        );
        let err = dispatch(&argv(&[
            "scenario",
            "diff",
            "--report",
            drifted.to_str().unwrap(),
            "--golden",
            golden.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Check(_)));
        let text = format!("{err}");
        assert!(text.contains("a: emissions 103.000"), "{text}");
        assert!(!text.contains("b:"), "{text}");
        // A generous tolerance lets the same drift pass.
        let out = dispatch(&argv(&[
            "scenario",
            "diff",
            "--report",
            drifted.to_str().unwrap(),
            "--golden",
            golden.to_str().unwrap(),
            "--tolerance-pct",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("max drift 3."), "{out}");
        for path in [report, golden, drifted] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn scenario_diff_catches_missing_and_extra_scenarios() {
        let report = temp_file(
            "decarb_cli_test_diff_extra.json",
            r#"[{"name": "a", "emissions_g": 100.0}, {"name": "new", "emissions_g": 1.0}]"#,
        );
        let golden = temp_file(
            "decarb_cli_test_diff_base.json",
            r#"[{"name": "a", "emissions_g": 100.0}, {"name": "gone", "emissions_g": 2.0}]"#,
        );
        let err = dispatch(&argv(&[
            "scenario",
            "diff",
            "--report",
            report.to_str().unwrap(),
            "--golden",
            golden.to_str().unwrap(),
        ]))
        .unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("gone: missing from the report"), "{text}");
        assert!(text.contains("new: not in the golden snapshot"), "{text}");
        std::fs::remove_file(report).ok();
        std::fs::remove_file(golden).ok();
    }
}
