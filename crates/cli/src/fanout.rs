//! Multi-process sweep fan-out: `scenario run ... --workers K`.
//!
//! The in-process scenario engine tops out at one machine's core count.
//! This module spawns `K` child `decarb-cli` processes, each running
//! one disjoint shard of the sweep plan (`--shards K --shard-index i
//! --json`), drains their streams concurrently, and merges the shard
//! reports back into one document with the same duplicate/missing
//! detection the standalone `scenario merge` applies. Because shard
//! membership is keyed by content-addressed scenario ids, the children
//! need no coordination — the same partition falls out in every
//! process — and the merged output is ordered like a single-process
//! run.

use std::io;
use std::process::{Command as Process, Stdio};

use decarb_json::Value;
use decarb_traces::TraceSet;

use crate::args::ScenarioTarget;
use crate::commands::{
    plan_for_target, scenario_table_header, scenario_table_row, CliError, DataPaths,
};

/// Spawns `workers` child shard processes over `target`, merges their
/// JSON streams, and writes the combined report (JSON array or text
/// table) to `out`. `data_path` re-imports the same `--data` dataset in
/// every child.
pub(crate) fn run_workers(
    out: &mut dyn io::Write,
    target: &ScenarioTarget,
    json: bool,
    workers: usize,
    data_path: Option<DataPaths<'_>>,
    data: &TraceSet,
) -> Result<(), CliError> {
    // Plan locally first: argument errors (unknown scenario, bad file,
    // invalid zones) surface here once instead of K times from the
    // children, and the plan's names drive the merge expectation.
    let (plan, _extended) = plan_for_target(target, data)?;
    // A child costs a full process start plus dataset synthesis; never
    // spawn more of them than there are scenarios to run.
    let workers = workers.min(plan.len()).max(1);
    let exe = std::env::current_exe().map_err(CliError::Io)?;
    let mut children = Vec::with_capacity(workers);
    for index in 0..workers {
        let mut child = Process::new(&exe);
        if let Some(paths) = data_path {
            child.arg("--data").arg(paths.data);
            if let Some(sidecar) = paths.regions {
                child.arg("--regions").arg(sidecar);
            }
        }
        child.arg("scenario").arg("run");
        match target {
            ScenarioTarget::Name(name) => {
                child.arg(name);
            }
            ScenarioTarget::File(path) => {
                child.arg("--file").arg(path);
            }
        }
        child
            .arg("--shards")
            .arg(workers.to_string())
            .arg("--shard-index")
            .arg(index.to_string())
            .arg("--json")
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        children.push(child.spawn().map_err(CliError::Io)?);
    }
    // Drain every child's pipes on its own thread: a sequential
    // wait-in-order would deadlock once a later child fills its pipe
    // buffer while an earlier one is still running.
    let outputs: Vec<io::Result<std::process::Output>> = std::thread::scope(|scope| {
        let handles: Vec<_> = children
            .into_iter()
            .map(|child| scope.spawn(move || child.wait_with_output()))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard reader thread"))
            .collect()
    });
    let mut docs = Vec::with_capacity(workers);
    for (index, result) in outputs.into_iter().enumerate() {
        let output = result.map_err(CliError::Io)?;
        if !output.status.success() {
            return Err(CliError::Check(format!(
                "shard worker {index}/{workers} failed ({}): {}",
                output.status,
                String::from_utf8_lossy(&output.stderr).trim()
            )));
        }
        let text = String::from_utf8_lossy(&output.stdout);
        let value = decarb_json::parse(&text).map_err(|e| {
            CliError::Check(format!(
                "shard worker {index}/{workers} emitted invalid JSON: {e}"
            ))
        })?;
        docs.push(value);
    }
    let names = plan.names();
    let merged = decarb_sim::merge_reports(Some(&names), &docs)
        .map_err(|e| CliError::Check(format!("merging shard worker streams: {e}")))?;
    if json {
        out.write_all(Value::Array(merged).pretty().as_bytes())?;
        return Ok(());
    }
    out.write_all(scenario_table_header().as_bytes())?;
    for report in &merged {
        let text = |key: &str| -> &str {
            match report.get(key) {
                Some(Value::String(s)) => s.as_str(),
                _ => "?",
            }
        };
        let number = |key: &str| -> f64 {
            match report.get(key) {
                Some(Value::Number(n)) => *n,
                _ => f64::NAN,
            }
        };
        out.write_all(
            scenario_table_row(
                text("name"),
                number("jobs"),
                number("completed"),
                number("unfinished"),
                number("missed_deadlines"),
                number("migrations"),
                number("energy_kwh"),
                number("avg_ci_g_per_kwh"),
                number("mean_slowdown"),
            )
            .as_bytes(),
        )?;
    }
    Ok(())
}
