//! Binary entry point: parse `argv`, dispatch, print.

use std::io::Write as _;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match decarb_cli::dispatch(&argv) {
        Ok(output) => {
            // Tolerate a closed pipe (`decarb-cli list | head`) instead
            // of panicking mid-print.
            let _ = writeln!(std::io::stdout(), "{output}");
        }
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(2);
        }
    }
}
