//! Binary entry point: parse `argv`, dispatch, stream to stdout.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match decarb_cli::dispatch_stream(&argv, &mut stdout) {
        Ok(()) => {}
        // Tolerate a closed pipe (`decarb-cli list | head`) instead of
        // failing mid-print.
        Err(decarb_cli::CliError::Io(e)) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(2);
        }
    }
}
