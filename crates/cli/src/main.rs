//! Binary entry point: parse `argv`, dispatch, print.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match decarb_cli::dispatch(&argv) {
        Ok(output) => println!("{output}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(2);
        }
    }
}
