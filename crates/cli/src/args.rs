//! Hand-rolled argument parsing (the allowed dependency set has no CLI
//! parser, and the grammar is small enough that one is not missed).

use decarb_traces::time::{EPOCH_YEAR, LAST_YEAR};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `regions [--group G] [--year Y]`.
    Regions {
        /// Optional geographic-group filter (label prefix, case-insensitive).
        group: Option<String>,
        /// Evaluation year.
        year: i32,
    },
    /// `analyze <ZONE> [--year Y]`.
    Analyze {
        /// Zone code.
        zone: String,
        /// Evaluation year.
        year: i32,
    },
    /// `analyze --workspace [PATH] [--json]` — run the in-tree static
    /// lints (`decarb-analyze`) over a workspace checkout.
    AnalyzeWorkspace {
        /// Workspace root (defaults to the current directory).
        path: String,
        /// Emit JSON diagnostics instead of a text report.
        json: bool,
    },
    /// `plan <ZONE> --hours L [--slack H] [--arrive H0] [--year Y]`.
    Plan {
        /// Zone code of the job's origin.
        zone: String,
        /// Job length in hours.
        hours: usize,
        /// Slack in hours.
        slack: usize,
        /// Arrival as an hour-of-year offset.
        arrive: usize,
        /// Evaluation year.
        year: i32,
    },
    /// `forecast <ZONE> [--days N] [--year Y]`.
    Forecast {
        /// Zone code.
        zone: String,
        /// Evaluation window in days.
        days: usize,
        /// Evaluation year.
        year: i32,
    },
    /// `rank [--year Y]`.
    Rank {
        /// Evaluation year.
        year: i32,
    },
    /// `export <ZONE> [--year Y]`.
    Export {
        /// Zone code.
        zone: String,
        /// Evaluation year.
        year: i32,
    },
    /// `list` — enumerate the experiment registry.
    List,
    /// `run <ID|all> [--json]` — run registered experiments.
    Run {
        /// Experiment id, or `all` for the whole registry.
        id: String,
        /// Emit JSON instead of text tables.
        json: bool,
    },
    /// `scenario list` — enumerate the built-in scenario matrix.
    ScenarioList,
    /// `scenario run <NAME|all> [--json]` / `scenario run --file PATH
    /// [--json]` — run built-in or user-defined scenarios, optionally
    /// as one shard of a partitioned sweep (`--shards N --shard-index
    /// I`) or fanned out across `--workers K` child processes.
    ScenarioRun {
        /// What to run: a built-in name (or `all`) or a scenario file.
        target: ScenarioTarget,
        /// Emit JSON instead of a text table.
        json: bool,
        /// Run only one shard of the sweep plan.
        shard: Option<ShardSpec>,
        /// Spawn this many child shard processes and merge their
        /// streams.
        workers: Option<usize>,
        /// Promote pre-run static-check findings from warnings to a
        /// failure.
        strict: bool,
    },
    /// `scenario check <NAME|all> [--json]` / `scenario check --file
    /// PATH [--json]` — statically validate scenarios without
    /// simulating them.
    ScenarioCheck {
        /// What to check: a built-in name (or `all`) or a scenario file.
        target: ScenarioTarget,
        /// Emit JSON diagnostics instead of a text report.
        json: bool,
    },
    /// `scenario merge <REPORT...> [--expect all|FILE]` — recombine
    /// per-shard JSON reports into one document.
    ScenarioMerge {
        /// Paths of the shard reports, in any order.
        reports: Vec<String>,
        /// Optional completeness check: the sweep the shards must
        /// cover exactly.
        expect: Option<MergeExpect>,
    },
    /// `scenario history append|show` — persist and inspect a per-run
    /// emissions series (JSONL keyed by git rev).
    ScenarioHistory(HistoryCommand),
    /// `scenario diff --report R --golden G [--tolerance-pct P]` — gate
    /// per-scenario emissions drift against a golden JSON report.
    ScenarioDiff {
        /// Path of the freshly produced `scenario run ... --json` report.
        report: String,
        /// Path of the committed golden report.
        golden: String,
        /// Allowed absolute drift per scenario, percent.
        tolerance_pct: f64,
    },
    /// `data pack|probe|append` — manage binary trace containers.
    Data(DataCommand),
    /// `serve [--data FILE [--regions FILE]] [--addr HOST:PORT]
    /// [--threads N]` — run the carbon-aware placement service (an
    /// HTTP/1.1 daemon answering live `POST /v1/place` queries; see
    /// docs/API.md).
    Serve {
        /// Dataset to serve: a CSV or a binary container (reloaded
        /// from this path on `POST /v1/reload`); built-in when absent.
        data: Option<String>,
        /// Optional `[region CODE]` metadata sidecar (CSV data only).
        regions: Option<String>,
        /// Bind address; port 0 picks an ephemeral port.
        addr: String,
        /// Worker threads in the accept pool.
        threads: usize,
        /// Same-hour admissions allowed per region before the router
        /// skips it (`None` = unlimited, admission control off).
        capacity_per_hour: Option<usize>,
    },
    /// `serve bench [--addr HOST:PORT] [--connections N] [--requests M]
    /// [--batch K] [--mode keepalive|close] [--pipeline P] [--threads N]`
    /// — drive the in-tree load harness against a placement server (an
    /// ephemeral in-process one when `--addr` is absent) and report
    /// requests/sec plus latency percentiles.
    ServeBench {
        /// Server to drive; `None` boots an in-process server over the
        /// built-in dataset on an ephemeral port.
        addr: Option<String>,
        /// Concurrent client connections.
        connections: usize,
        /// Requests each connection issues.
        requests: u64,
        /// Jobs per `POST /v1/place` body (1 = single-job object).
        batch: usize,
        /// `true` = keep-alive; `false` = close per request (baseline).
        keep_alive: bool,
        /// Requests written back-to-back before reading responses
        /// (keep-alive only; 1 = strict ping-pong).
        pipeline: usize,
        /// Worker threads for the in-process server (ignored with
        /// `--addr`).
        threads: usize,
    },
    /// `--help` / no arguments.
    Help,
}

/// The `data` subcommands (binary trace containers).
#[derive(Debug, Clone, PartialEq)]
pub enum DataCommand {
    /// `data pack <CSV|builtin> [--regions FILE] [--resolution MIN]
    /// -o FILE` — encode a CSV dataset (or the built-in one) as a
    /// binary container.
    Pack {
        /// Source CSV path, or the literal `builtin`.
        source: String,
        /// Optional region-metadata sidecar for the CSV.
        regions: Option<String>,
        /// Re-express the dataset on a MIN-minute axis before packing
        /// (must divide 60; hourly sources embed losslessly). Declare a
        /// CSV's *native* sub-hourly cadence with a `[dataset]
        /// resolution` sidecar section instead.
        resolution: Option<u32>,
        /// Output container path.
        out: String,
    },
    /// `data probe <FILE> [--json]` — verify a container and print its
    /// header facts.
    Probe {
        /// Container path.
        file: String,
        /// Emit JSON instead of a text summary.
        json: bool,
    },
    /// `data append <FILE> --from CSV [--pad]` — append newly observed
    /// hours without rewriting stored history.
    Append {
        /// Container path (rewritten atomically).
        file: String,
        /// CSV holding the new rows (may overlap stored history).
        from: String,
        /// Pad zones that fall short of the longest new coverage by
        /// repeating their last value, instead of erroring.
        pad: bool,
    },
}

/// What `scenario run` executes.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioTarget {
    /// A built-in scenario name, or `all` for the whole matrix.
    Name(String),
    /// A user-defined scenario file (`--file PATH`).
    File(String),
}

/// One shard of a partitioned sweep: `--shards N --shard-index I`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Total disjoint shards the plan splits into.
    pub shards: usize,
    /// This process's shard, `0..shards`.
    pub index: usize,
}

/// What a merged report must cover (`scenario merge --expect ...`).
#[derive(Debug, Clone, PartialEq)]
pub enum MergeExpect {
    /// The built-in 54-scenario matrix (`--expect all`).
    All,
    /// The expansion of a scenario file (`--expect PATH`).
    File(String),
}

/// The `scenario history` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryCommand {
    /// Append one run's emissions to the series.
    Append {
        /// Path of the `scenario run ... --json` report to record.
        report: String,
        /// Path of the JSONL history file (created when missing).
        file: String,
        /// Revision key; defaults to `$GITHUB_SHA`, then `git
        /// rev-parse`, then `unknown`.
        rev: Option<String>,
    },
    /// Render the series as a drift-trend table.
    Show {
        /// Path of the JSONL history file.
        file: String,
        /// Show only the last N entries (0 = all).
        limit: usize,
    },
    /// Fail on monotonic multi-commit emissions drift.
    Check {
        /// Path of the JSONL history file.
        file: String,
        /// Number of trailing runs inspected (minimum 2).
        window: usize,
        /// Cumulative drift across the window that turns a monotonic
        /// trend into a failure, percent.
        max_drift_pct: f64,
    },
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text shown by `--help`.
pub const USAGE: &str = "\
usage: decarb-cli <command> [options]

commands:
  regions  [--group G] [--year Y]      list regions (annual mean, daily CV)
  analyze  <ZONE> [--year Y]           one region's carbon profile
  analyze  --workspace [PATH] [--json] run the in-tree source lints over a checkout
  plan     <ZONE> --hours L [--slack H] [--arrive H0] [--year Y]
                                       schedule one job four ways
  forecast <ZONE> [--days N] [--year Y] backtest all forecasters
  rank     [--year Y]                  rank-order stability of all regions
  export   <ZONE> [--year Y]           hourly trace as CSV on stdout
  list                                 list registered experiments
  run      <ID|all> [--json]           run experiments from the registry
  scenario list                        list the built-in scenario matrix
  scenario run <NAME|all> [--json]     run scenario-matrix entries in parallel
  scenario run --file FILE [--json]    run a user-defined scenario file
  scenario run ... --shards N --shard-index I
                                       run one disjoint shard of the sweep plan
  scenario run ... --workers K         fan the sweep out over K child processes
  scenario run ... --strict            fail (not warn) on static-check findings
  scenario check <NAME|all> [--json]   statically validate scenarios, no simulation
  scenario check --file FILE [--json]  statically validate a scenario file
  scenario merge <REPORT...> [--expect all|FILE]
                                       recombine shard reports into one document
  scenario history append --report R --file H [--rev REV]
                                       record a run in the emissions series
  scenario history show --file H [--limit N]
                                       render the emissions series as a trend
  scenario history check --file H [--window N] [--max-drift-pct X]
                                       fail on monotonic multi-commit drift
  scenario diff --report R --golden G [--tolerance-pct P]
                                       fail when per-scenario emissions drift
  data pack <CSV|builtin> [--regions FILE] [--resolution MIN] -o FILE
                                       encode a dataset as a binary container
                                       (--resolution re-expresses it on a
                                       finer MIN-minute axis; MIN divides 60)
  data probe <FILE> [--json]           verify a container, print header facts
  data append <FILE> --from CSV [--pad]
                                       append new hours without rewriting history
  serve    [--data FILE [--regions FILE]] [--addr HOST:PORT] [--threads N]
           [--capacity-per-hour N]
                                       run the placement service (HTTP API, docs/API.md)
  serve bench [--addr HOST:PORT] [--connections N] [--requests M]
           [--batch K] [--mode keepalive|close] [--pipeline P] [--threads N]
                                       load-test a placement server (in-process
                                       ephemeral server when --addr is absent)

defaults: --year 2022, --slack 24, --arrive 0, --days 60, --tolerance-pct 0.1

global: --data FILE [--regions FILE] (first options) replaces the built-in dataset with a
`zone,hour,value` CSV or a binary container packed by `data pack`
(auto-detected by magic bytes; containers carry their own region
metadata, so --regions applies to CSV only). Imported CSV traces are
validated and repaired; containers load verbatim.
`scenario run` accepts --data (scenario region sets must exist in the
imported dataset); `list`, `run`, `scenario list`, and `data` do not";

/// Simple key-value option scanner: `--key value` pairs after the
/// positional arguments.
struct Options<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Options<'a> {
    fn scan(rest: &'a [String]) -> Result<Self, ParseError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i].as_str();
            if !key.starts_with("--") {
                return Err(ParseError(format!("unexpected argument `{key}`")));
            }
            let Some(value) = rest.get(i + 1) else {
                return Err(ParseError(format!("option `{key}` needs a value")));
            };
            pairs.push((&key[2..], value.as_str()));
            i += 2;
        }
        Ok(Self { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ParseError(format!("invalid value `{raw}` for --{key}"))),
        }
    }

    fn year(&self) -> Result<i32, ParseError> {
        let year: i32 = self.parsed("year", 2022)?;
        if !(EPOCH_YEAR..LAST_YEAR).contains(&year) {
            return Err(ParseError(format!(
                "--year must lie in {EPOCH_YEAR}..{}",
                LAST_YEAR - 1
            )));
        }
        Ok(year)
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ParseError> {
        for (k, _) in &self.pairs {
            if !allowed.contains(k) {
                return Err(ParseError(format!("unknown option `--{k}`")));
            }
        }
        Ok(())
    }
}

/// Parses `argv` (without the program name) into a [`Command`].
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let Some(first) = argv.first() else {
        return Ok(Command::Help);
    };
    if first == "--help" || first == "-h" || first == "help" {
        return Ok(Command::Help);
    }
    match first.as_str() {
        "regions" => {
            let opts = Options::scan(&argv[1..])?;
            opts.reject_unknown(&["group", "year"])?;
            Ok(Command::Regions {
                group: opts.get("group").map(str::to_string),
                year: opts.year()?,
            })
        }
        "analyze" if argv.get(1).map(String::as_str) == Some("--workspace") => {
            parse_analyze_workspace(&argv[2..])
        }
        "analyze" | "plan" | "forecast" | "export" => {
            let Some(zone) = argv.get(1).filter(|z| !z.starts_with("--")) else {
                return Err(ParseError(format!("`{first}` needs a zone code")));
            };
            let opts = Options::scan(&argv[2..])?;
            let zone = zone.to_uppercase();
            match first.as_str() {
                "analyze" => {
                    opts.reject_unknown(&["year"])?;
                    Ok(Command::Analyze {
                        zone,
                        year: opts.year()?,
                    })
                }
                "plan" => {
                    opts.reject_unknown(&["hours", "slack", "arrive", "year"])?;
                    let hours: usize = opts.parsed("hours", 0)?;
                    if hours == 0 {
                        return Err(ParseError("`plan` needs --hours ≥ 1".into()));
                    }
                    Ok(Command::Plan {
                        zone,
                        hours,
                        slack: opts.parsed("slack", 24)?,
                        arrive: opts.parsed("arrive", 0)?,
                        year: opts.year()?,
                    })
                }
                "forecast" => {
                    opts.reject_unknown(&["days", "year"])?;
                    let days: usize = opts.parsed("days", 60)?;
                    if days < 5 {
                        return Err(ParseError("--days must be at least 5".into()));
                    }
                    Ok(Command::Forecast {
                        zone,
                        days,
                        year: opts.year()?,
                    })
                }
                "export" => {
                    opts.reject_unknown(&["year"])?;
                    Ok(Command::Export {
                        zone,
                        year: opts.year()?,
                    })
                }
                _ => unreachable!("outer match guards the command set"),
            }
        }
        "rank" => {
            let opts = Options::scan(&argv[1..])?;
            opts.reject_unknown(&["year"])?;
            Ok(Command::Rank { year: opts.year()? })
        }
        "serve" => parse_serve(&argv[1..]),
        "list" => {
            if argv.len() > 1 {
                return Err(ParseError("`list` takes no arguments".into()));
            }
            Ok(Command::List)
        }
        "run" => {
            let (id, json) = parse_run_like(
                &argv[1..],
                "run",
                "`run` needs an experiment id or `all` (see `list`)",
            )?;
            Ok(Command::Run { id, json })
        }
        "scenario" => match argv.get(1).map(String::as_str) {
            Some("list") => {
                if argv.len() > 2 {
                    return Err(ParseError("`scenario list` takes no arguments".into()));
                }
                Ok(Command::ScenarioList)
            }
            Some("run") => parse_scenario_run(&argv[2..]),
            Some("check") => parse_scenario_check(&argv[2..]),
            Some("merge") => parse_scenario_merge(&argv[2..]),
            Some("history") => parse_scenario_history(&argv[2..]),
            Some("diff") => {
                let opts = Options::scan(&argv[2..])?;
                opts.reject_unknown(&["report", "golden", "tolerance-pct"])?;
                let report = opts
                    .get("report")
                    .ok_or_else(|| ParseError("`scenario diff` needs --report FILE".into()))?
                    .to_string();
                let golden = opts
                    .get("golden")
                    .ok_or_else(|| ParseError("`scenario diff` needs --golden FILE".into()))?
                    .to_string();
                let tolerance_pct: f64 = opts.parsed("tolerance-pct", 0.1)?;
                if !tolerance_pct.is_finite() || tolerance_pct < 0.0 {
                    return Err(ParseError("--tolerance-pct must be non-negative".into()));
                }
                Ok(Command::ScenarioDiff {
                    report,
                    golden,
                    tolerance_pct,
                })
            }
            _ => Err(ParseError(
                "`scenario` needs a subcommand: `list`, `run <NAME|all|--file FILE>`, \
                 `check`, `merge`, `history`, or `diff`"
                    .into(),
            )),
        },
        "data" => parse_data(&argv[1..]),
        other => Err(ParseError(format!(
            "unknown command `{other}` (try --help)"
        ))),
    }
}

/// Parses the `data pack|probe|append` container subcommands.
fn parse_data(rest: &[String]) -> Result<Command, ParseError> {
    match rest.first().map(String::as_str) {
        Some("pack") => {
            let Some(source) = rest.get(1).filter(|s| !s.starts_with('-')) else {
                return Err(ParseError(
                    "`data pack` needs a source CSV path or `builtin`".into(),
                ));
            };
            let mut regions: Option<String> = None;
            let mut out: Option<String> = None;
            let mut resolution: Option<u32> = None;
            let mut i = 2;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--regions" => {
                        let Some(path) = rest.get(i + 1) else {
                            return Err(ParseError("`--regions` needs a path".into()));
                        };
                        if regions.replace(path.clone()).is_some() {
                            return Err(ParseError("`--regions` given twice".into()));
                        }
                        i += 2;
                    }
                    "--resolution" => {
                        let Some(raw) = rest.get(i + 1) else {
                            return Err(ParseError("`--resolution` needs minutes".into()));
                        };
                        let minutes: u32 = raw.parse().map_err(|_| {
                            ParseError(format!("bad `--resolution {raw}` (minutes)"))
                        })?;
                        // Validate divisor-of-60 semantics at the edge so
                        // `--resolution 7` fails before any file is read.
                        decarb_traces::Resolution::from_minutes(minutes).map_err(ParseError)?;
                        if resolution.replace(minutes).is_some() {
                            return Err(ParseError("`--resolution` given twice".into()));
                        }
                        i += 2;
                    }
                    "-o" | "--out" => {
                        let Some(path) = rest.get(i + 1) else {
                            return Err(ParseError("`-o` needs an output path".into()));
                        };
                        if out.replace(path.clone()).is_some() {
                            return Err(ParseError("`-o` given twice".into()));
                        }
                        i += 2;
                    }
                    other => {
                        return Err(ParseError(format!(
                            "unexpected argument `{other}` for `data pack`"
                        )));
                    }
                }
            }
            let Some(out) = out else {
                return Err(ParseError("`data pack` needs `-o FILE`".into()));
            };
            if source == "builtin" && regions.is_some() {
                return Err(ParseError(
                    "`--regions` only applies when packing a CSV".into(),
                ));
            }
            Ok(Command::Data(DataCommand::Pack {
                source: source.clone(),
                regions,
                resolution,
                out,
            }))
        }
        Some("probe") => {
            let Some(file) = rest.get(1).filter(|s| !s.starts_with('-')) else {
                return Err(ParseError("`data probe` needs a container path".into()));
            };
            let mut json = false;
            for arg in &rest[2..] {
                match arg.as_str() {
                    "--json" => json = true,
                    other => {
                        return Err(ParseError(format!(
                            "unexpected argument `{other}` for `data probe`"
                        )));
                    }
                }
            }
            Ok(Command::Data(DataCommand::Probe {
                file: file.clone(),
                json,
            }))
        }
        Some("append") => {
            let Some(file) = rest.get(1).filter(|s| !s.starts_with('-')) else {
                return Err(ParseError("`data append` needs a container path".into()));
            };
            let mut from: Option<String> = None;
            let mut pad = false;
            let mut i = 2;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--from" => {
                        let Some(path) = rest.get(i + 1) else {
                            return Err(ParseError("`--from` needs a CSV path".into()));
                        };
                        if from.replace(path.clone()).is_some() {
                            return Err(ParseError("`--from` given twice".into()));
                        }
                        i += 2;
                    }
                    "--pad" => {
                        pad = true;
                        i += 1;
                    }
                    other => {
                        return Err(ParseError(format!(
                            "unexpected argument `{other}` for `data append`"
                        )));
                    }
                }
            }
            let Some(from) = from else {
                return Err(ParseError("`data append` needs `--from CSV`".into()));
            };
            Ok(Command::Data(DataCommand::Append {
                file: file.clone(),
                from,
                pad,
            }))
        }
        _ => Err(ParseError(
            "`data` needs a subcommand: `pack`, `probe`, or `append`".into(),
        )),
    }
}

/// Parses `scenario run` arguments: a positional `<NAME|all>` or
/// `--file PATH` (exactly one of the two), plus `--json`, `--shards N
/// --shard-index I`, and `--workers K`, in any order.
fn parse_scenario_run(rest: &[String]) -> Result<Command, ParseError> {
    let mut json = false;
    let mut strict = false;
    let mut name: Option<String> = None;
    let mut file: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut shard_index: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut i = 0;
    // `--key VALUE` options with a numeric value, deduplicated.
    let take_count =
        |slot: &mut Option<usize>, key: &str, raw: Option<&String>| -> Result<(), ParseError> {
            let Some(raw) = raw else {
                return Err(ParseError(format!("`{key}` needs a value")));
            };
            let value: usize = raw
                .parse()
                .map_err(|_| ParseError(format!("invalid value `{raw}` for `{key}`")))?;
            if slot.replace(value).is_some() {
                return Err(ParseError(format!("`{key}` given twice")));
            }
            Ok(())
        };
    while i < rest.len() {
        match rest[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--strict" => {
                strict = true;
                i += 1;
            }
            "--file" => {
                let Some(path) = rest.get(i + 1) else {
                    return Err(ParseError("`--file` needs a path".into()));
                };
                if file.replace(path.clone()).is_some() {
                    return Err(ParseError("`--file` given twice".into()));
                }
                i += 2;
            }
            "--shards" => {
                take_count(&mut shards, "--shards", rest.get(i + 1))?;
                i += 2;
            }
            "--shard-index" => {
                take_count(&mut shard_index, "--shard-index", rest.get(i + 1))?;
                i += 2;
            }
            "--workers" => {
                take_count(&mut workers, "--workers", rest.get(i + 1))?;
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(ParseError(format!(
                    "unknown option `{other}` for `scenario run`"
                )));
            }
            other => {
                if name.replace(other.to_string()).is_some() {
                    return Err(ParseError(format!(
                        "unexpected argument `{other}` (`scenario run` takes one name)"
                    )));
                }
                i += 1;
            }
        }
    }
    let target = match (name, file) {
        (Some(_), Some(_)) => {
            return Err(ParseError(
                "pass a scenario name or `--file`, not both".into(),
            ))
        }
        (Some(name), None) => ScenarioTarget::Name(name),
        (None, Some(path)) => ScenarioTarget::File(path),
        (None, None) => {
            return Err(ParseError(
                "`scenario run` needs a scenario name, `all`, or `--file FILE` \
                 (see `scenario list`)"
                    .into(),
            ))
        }
    };
    let shard = match (shards, shard_index) {
        (None, None) => None,
        (Some(shards), Some(index)) => {
            if shards == 0 {
                return Err(ParseError("`--shards` must be at least 1".into()));
            }
            if index >= shards {
                return Err(ParseError(format!(
                    "`--shard-index` must lie in 0..{shards}"
                )));
            }
            Some(ShardSpec { shards, index })
        }
        _ => {
            return Err(ParseError(
                "`--shards` and `--shard-index` must be given together".into(),
            ))
        }
    };
    if let Some(workers) = workers {
        if workers == 0 {
            return Err(ParseError("`--workers` must be at least 1".into()));
        }
        if shard.is_some() {
            return Err(ParseError(
                "pass `--workers` or `--shards`/`--shard-index`, not both".into(),
            ));
        }
    }
    Ok(Command::ScenarioRun {
        target,
        json,
        shard,
        workers,
        strict,
    })
}

/// Parses `scenario check`: a positional `<NAME|all>` or `--file PATH`
/// (exactly one of the two), plus `--json`, in any order.
fn parse_scenario_check(rest: &[String]) -> Result<Command, ParseError> {
    let mut json = false;
    let mut name: Option<String> = None;
    let mut file: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--file" => {
                let Some(path) = rest.get(i + 1) else {
                    return Err(ParseError("`--file` needs a path".into()));
                };
                if file.replace(path.clone()).is_some() {
                    return Err(ParseError("`--file` given twice".into()));
                }
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(ParseError(format!(
                    "unknown option `{other}` for `scenario check`"
                )));
            }
            other => {
                if name.replace(other.to_string()).is_some() {
                    return Err(ParseError(format!(
                        "unexpected argument `{other}` (`scenario check` takes one name)"
                    )));
                }
                i += 1;
            }
        }
    }
    let target = match (name, file) {
        (Some(_), Some(_)) => {
            return Err(ParseError(
                "pass a scenario name or `--file`, not both".into(),
            ))
        }
        (Some(name), None) => ScenarioTarget::Name(name),
        (None, Some(path)) => ScenarioTarget::File(path),
        (None, None) => {
            return Err(ParseError(
                "`scenario check` needs a scenario name, `all`, or `--file FILE` \
                 (see `scenario list`)"
                    .into(),
            ))
        }
    };
    Ok(Command::ScenarioCheck { target, json })
}

/// Parses `analyze --workspace [PATH] [--json]` (the `--workspace`
/// token is already consumed).
fn parse_analyze_workspace(rest: &[String]) -> Result<Command, ParseError> {
    let mut json = false;
    let mut path: Option<String> = None;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with("--") => {
                return Err(ParseError(format!(
                    "unknown option `{other}` for `analyze --workspace`"
                )));
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err(ParseError(
                        "`analyze --workspace` takes at most one path".into(),
                    ));
                }
            }
        }
    }
    Ok(Command::AnalyzeWorkspace {
        path: path.unwrap_or_else(|| ".".into()),
        json,
    })
}

/// The default bind address of `serve`.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:8980";

/// Parses `serve [--data FILE [--regions FILE]] [--addr HOST:PORT]
/// [--threads N] [--capacity-per-hour N]` and the `serve bench`
/// subcommand.
fn parse_serve(rest: &[String]) -> Result<Command, ParseError> {
    if rest.first().map(String::as_str) == Some("bench") {
        return parse_serve_bench(&rest[1..]);
    }
    let opts = Options::scan(rest)?;
    opts.reject_unknown(&["data", "regions", "addr", "threads", "capacity-per-hour"])?;
    let data = opts.get("data").map(str::to_string);
    let regions = opts.get("regions").map(str::to_string);
    if regions.is_some() && data.is_none() {
        return Err(ParseError(
            "`serve --regions` needs a `--data` CSV to describe".into(),
        ));
    }
    let threads: usize = opts.parsed("threads", 4)?;
    if threads == 0 {
        return Err(ParseError("--threads must be at least 1".into()));
    }
    let capacity_per_hour = match opts.get("capacity-per-hour") {
        None => None,
        Some(raw) => {
            let capacity: usize = raw.parse().map_err(|_| {
                ParseError(format!("invalid value `{raw}` for --capacity-per-hour"))
            })?;
            if capacity == 0 {
                return Err(ParseError(
                    "--capacity-per-hour must be at least 1 (omit it for unlimited)".into(),
                ));
            }
            Some(capacity)
        }
    };
    Ok(Command::Serve {
        data,
        regions,
        addr: opts.get("addr").unwrap_or(DEFAULT_SERVE_ADDR).to_string(),
        threads,
        capacity_per_hour,
    })
}

/// Parses `serve bench [--addr HOST:PORT] [--connections N]
/// [--requests M] [--batch K] [--mode keepalive|close] [--pipeline P]
/// [--threads N]`.
fn parse_serve_bench(rest: &[String]) -> Result<Command, ParseError> {
    let opts = Options::scan(rest)?;
    opts.reject_unknown(&[
        "addr",
        "connections",
        "requests",
        "batch",
        "mode",
        "pipeline",
        "threads",
    ])?;
    let connections: usize = opts.parsed("connections", 4)?;
    let requests: u64 = opts.parsed("requests", 2_000)?;
    let batch: usize = opts.parsed("batch", 1)?;
    if connections == 0 || requests == 0 || batch == 0 {
        return Err(ParseError(
            "--connections, --requests, and --batch must be at least 1".into(),
        ));
    }
    let pipeline: usize = opts.parsed("pipeline", 1)?;
    if !(1..=decarb_serve::MAX_PIPELINE).contains(&pipeline) {
        return Err(ParseError(format!(
            "--pipeline must be between 1 and {}",
            decarb_serve::MAX_PIPELINE
        )));
    }
    let keep_alive = match opts.get("mode").unwrap_or("keepalive") {
        "keepalive" => true,
        "close" => false,
        other => {
            return Err(ParseError(format!(
                "invalid value `{other}` for --mode; expected keepalive|close"
            )))
        }
    };
    if !keep_alive && pipeline > 1 {
        return Err(ParseError(
            "--pipeline needs keep-alive; a close-per-request connection carries \
             exactly one request"
                .into(),
        ));
    }
    let threads: usize = opts.parsed("threads", 4)?;
    if threads == 0 {
        return Err(ParseError("--threads must be at least 1".into()));
    }
    Ok(Command::ServeBench {
        addr: opts.get("addr").map(str::to_string),
        connections,
        requests,
        batch,
        keep_alive,
        pipeline,
        threads,
    })
}

/// Parses `scenario merge`: one or more report paths plus an optional
/// `--expect all|FILE` completeness check.
fn parse_scenario_merge(rest: &[String]) -> Result<Command, ParseError> {
    let mut reports: Vec<String> = Vec::new();
    let mut expect: Option<MergeExpect> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--expect" => {
                let Some(what) = rest.get(i + 1) else {
                    return Err(ParseError(
                        "`--expect` needs `all` or a scenario file".into(),
                    ));
                };
                let parsed = if what == "all" {
                    MergeExpect::All
                } else {
                    MergeExpect::File(what.clone())
                };
                if expect.replace(parsed).is_some() {
                    return Err(ParseError("`--expect` given twice".into()));
                }
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(ParseError(format!(
                    "unknown option `{other}` for `scenario merge`"
                )));
            }
            path => {
                reports.push(path.to_string());
                i += 1;
            }
        }
    }
    if reports.is_empty() {
        return Err(ParseError(
            "`scenario merge` needs at least one shard report path".into(),
        ));
    }
    Ok(Command::ScenarioMerge { reports, expect })
}

/// Parses `scenario history append|show`.
fn parse_scenario_history(rest: &[String]) -> Result<Command, ParseError> {
    match rest.first().map(String::as_str) {
        Some("append") => {
            let opts = Options::scan(&rest[1..])?;
            opts.reject_unknown(&["report", "file", "rev"])?;
            let report = opts
                .get("report")
                .ok_or_else(|| ParseError("`scenario history append` needs --report FILE".into()))?
                .to_string();
            let file = opts
                .get("file")
                .ok_or_else(|| ParseError("`scenario history append` needs --file FILE".into()))?
                .to_string();
            Ok(Command::ScenarioHistory(HistoryCommand::Append {
                report,
                file,
                rev: opts.get("rev").map(str::to_string),
            }))
        }
        Some("show") => {
            let opts = Options::scan(&rest[1..])?;
            opts.reject_unknown(&["file", "limit"])?;
            let file = opts
                .get("file")
                .ok_or_else(|| ParseError("`scenario history show` needs --file FILE".into()))?
                .to_string();
            Ok(Command::ScenarioHistory(HistoryCommand::Show {
                file,
                limit: opts.parsed("limit", 0)?,
            }))
        }
        Some("check") => {
            let opts = Options::scan(&rest[1..])?;
            opts.reject_unknown(&["file", "window", "max-drift-pct"])?;
            let file = opts
                .get("file")
                .ok_or_else(|| ParseError("`scenario history check` needs --file FILE".into()))?
                .to_string();
            let window: usize = opts.parsed("window", 5)?;
            if window < 2 {
                return Err(ParseError("`--window` must be at least 2".into()));
            }
            let max_drift_pct: f64 = opts.parsed("max-drift-pct", 1.0)?;
            if !max_drift_pct.is_finite() || max_drift_pct < 0.0 {
                return Err(ParseError("`--max-drift-pct` must be non-negative".into()));
            }
            Ok(Command::ScenarioHistory(HistoryCommand::Check {
                file,
                window,
                max_drift_pct,
            }))
        }
        _ => Err(ParseError(
            "`scenario history` needs a subcommand: `append`, `show`, or `check`".into(),
        )),
    }
}

/// Shared `<NAME|all> [--json]` parsing for `run`;
/// flags and the positional may come in either order.
fn parse_run_like(
    rest: &[String],
    command: &str,
    missing: &str,
) -> Result<(String, bool), ParseError> {
    let mut json = false;
    let mut name: Option<&String> = None;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with("--") => {
                return Err(ParseError(format!(
                    "unknown option `{other}` for `{command}`"
                )));
            }
            _ => {
                if name.is_some() {
                    return Err(ParseError(format!(
                        "unexpected argument `{arg}` (`{command}` takes one name)"
                    )));
                }
                name = Some(arg);
            }
        }
    }
    let Some(name) = name else {
        return Err(ParseError(missing.into()));
    };
    Ok((name.clone(), json))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse(&argv(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn regions_with_filters() {
        let cmd = parse(&argv(&["regions", "--group", "europe", "--year", "2021"])).unwrap();
        assert_eq!(
            cmd,
            Command::Regions {
                group: Some("europe".into()),
                year: 2021
            }
        );
        assert_eq!(
            parse(&argv(&["regions"])).unwrap(),
            Command::Regions {
                group: None,
                year: 2022
            }
        );
    }

    #[test]
    fn serve_defaults_and_options() {
        assert_eq!(
            parse(&argv(&["serve"])).unwrap(),
            Command::Serve {
                data: None,
                regions: None,
                addr: DEFAULT_SERVE_ADDR.into(),
                threads: 4,
                capacity_per_hour: None,
            }
        );
        assert_eq!(
            parse(&argv(&[
                "serve",
                "--data",
                "traces.dct",
                "--addr",
                "0.0.0.0:9000",
                "--threads",
                "8",
                "--capacity-per-hour",
                "16"
            ]))
            .unwrap(),
            Command::Serve {
                data: Some("traces.dct".into()),
                regions: None,
                addr: "0.0.0.0:9000".into(),
                threads: 8,
                capacity_per_hour: Some(16),
            }
        );
        assert_eq!(
            parse(&argv(&[
                "serve",
                "--data",
                "t.csv",
                "--regions",
                "meta.toml"
            ]))
            .unwrap(),
            Command::Serve {
                data: Some("t.csv".into()),
                regions: Some("meta.toml".into()),
                addr: DEFAULT_SERVE_ADDR.into(),
                threads: 4,
                capacity_per_hour: None,
            }
        );
    }

    #[test]
    fn serve_rejects_bad_options() {
        assert!(parse(&argv(&["serve", "--threads", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--threads", "many"])).is_err());
        assert!(parse(&argv(&["serve", "--regions", "meta.toml"])).is_err());
        assert!(parse(&argv(&["serve", "--port", "80"])).is_err());
        assert!(parse(&argv(&["serve", "extra"])).is_err());
        assert!(parse(&argv(&["serve", "--capacity-per-hour", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--capacity-per-hour", "lots"])).is_err());
    }

    #[test]
    fn serve_bench_defaults_and_options() {
        assert_eq!(
            parse(&argv(&["serve", "bench"])).unwrap(),
            Command::ServeBench {
                addr: None,
                connections: 4,
                requests: 2_000,
                batch: 1,
                keep_alive: true,
                pipeline: 1,
                threads: 4,
            }
        );
        assert_eq!(
            parse(&argv(&[
                "serve",
                "bench",
                "--addr",
                "127.0.0.1:8980",
                "--connections",
                "16",
                "--requests",
                "500",
                "--batch",
                "32",
                "--mode",
                "close"
            ]))
            .unwrap(),
            Command::ServeBench {
                addr: Some("127.0.0.1:8980".into()),
                connections: 16,
                requests: 500,
                batch: 32,
                keep_alive: false,
                pipeline: 1,
                threads: 4,
            }
        );
        assert!(matches!(
            parse(&argv(&["serve", "bench", "--pipeline", "32"])).unwrap(),
            Command::ServeBench { pipeline: 32, .. }
        ));
        assert!(parse(&argv(&["serve", "bench", "--mode", "sometimes"])).is_err());
        assert!(parse(&argv(&["serve", "bench", "--connections", "0"])).is_err());
        assert!(parse(&argv(&["serve", "bench", "--requests", "0"])).is_err());
        assert!(parse(&argv(&["serve", "bench", "--batch", "0"])).is_err());
        assert!(parse(&argv(&["serve", "bench", "--pipeline", "0"])).is_err());
        assert!(parse(&argv(&["serve", "bench", "--pipeline", "65"])).is_err());
        assert!(parse(&argv(&[
            "serve",
            "bench",
            "--mode",
            "close",
            "--pipeline",
            "2"
        ]))
        .is_err());
        assert!(parse(&argv(&["serve", "bench", "--data", "x.csv"])).is_err());
    }

    #[test]
    fn plan_requires_hours() {
        assert!(parse(&argv(&["plan", "DE"])).is_err());
        let cmd = parse(&argv(&["plan", "de", "--hours", "6", "--slack", "48"])).unwrap();
        assert_eq!(
            cmd,
            Command::Plan {
                zone: "DE".into(),
                hours: 6,
                slack: 48,
                arrive: 0,
                year: 2022
            }
        );
    }

    #[test]
    fn zone_codes_are_uppercased() {
        let cmd = parse(&argv(&["analyze", "us-ca"])).unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                zone: "US-CA".into(),
                year: 2022
            }
        );
    }

    #[test]
    fn unknown_options_are_rejected() {
        assert!(parse(&argv(&["regions", "--bogus", "1"])).is_err());
        assert!(parse(&argv(&["analyze", "DE", "--hours", "4"])).is_err());
    }

    #[test]
    fn year_bounds_enforced() {
        assert!(parse(&argv(&["rank", "--year", "2019"])).is_err());
        assert!(parse(&argv(&["rank", "--year", "2030"])).is_err());
        assert!(parse(&argv(&["rank", "--year", "2020"])).is_ok());
    }

    #[test]
    fn malformed_options() {
        assert!(parse(&argv(&["regions", "--year"])).is_err());
        assert!(parse(&argv(&["regions", "stray"])).is_err());
        assert!(parse(&argv(&["regions", "--year", "twenty"])).is_err());
        assert!(parse(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn forecast_day_floor() {
        assert!(parse(&argv(&["forecast", "DE", "--days", "2"])).is_err());
        assert!(parse(&argv(&["forecast", "DE", "--days", "10"])).is_ok());
    }

    #[test]
    fn run_accepts_flag_and_id_in_either_order() {
        let expected = Command::Run {
            id: "fig5".into(),
            json: true,
        };
        assert_eq!(parse(&argv(&["run", "fig5", "--json"])).unwrap(), expected);
        assert_eq!(parse(&argv(&["run", "--json", "fig5"])).unwrap(), expected);
        assert_eq!(
            parse(&argv(&["run", "all"])).unwrap(),
            Command::Run {
                id: "all".into(),
                json: false
            }
        );
    }

    #[test]
    fn scenario_subcommands_parse() {
        assert_eq!(
            parse(&argv(&["scenario", "list"])).unwrap(),
            Command::ScenarioList
        );
        let expected = Command::ScenarioRun {
            target: ScenarioTarget::Name("batch-agnostic-europe".into()),
            json: true,
            shard: None,
            workers: None,
            strict: false,
        };
        assert_eq!(
            parse(&argv(&[
                "scenario",
                "run",
                "batch-agnostic-europe",
                "--json"
            ]))
            .unwrap(),
            expected
        );
        assert_eq!(
            parse(&argv(&[
                "scenario",
                "run",
                "--json",
                "batch-agnostic-europe"
            ]))
            .unwrap(),
            expected
        );
        assert_eq!(
            parse(&argv(&["scenario", "run", "all"])).unwrap(),
            Command::ScenarioRun {
                target: ScenarioTarget::Name("all".into()),
                json: false,
                shard: None,
                workers: None,
                strict: false,
            }
        );
    }

    #[test]
    fn scenario_run_file_target_parses() {
        assert_eq!(
            parse(&argv(&[
                "scenario",
                "run",
                "--file",
                "my.scenario",
                "--json"
            ]))
            .unwrap(),
            Command::ScenarioRun {
                target: ScenarioTarget::File("my.scenario".into()),
                json: true,
                shard: None,
                workers: None,
                strict: false,
            }
        );
        assert_eq!(
            parse(&argv(&["scenario", "run", "--file", "my.scenario"])).unwrap(),
            Command::ScenarioRun {
                target: ScenarioTarget::File("my.scenario".into()),
                json: false,
                shard: None,
                workers: None,
                strict: false,
            }
        );
        // A name and a file together are ambiguous.
        assert!(parse(&argv(&["scenario", "run", "all", "--file", "x"])).is_err());
        assert!(parse(&argv(&["scenario", "run", "--file"])).is_err());
        assert!(parse(&argv(&["scenario", "run", "--file", "a", "--file", "b"])).is_err());
    }

    #[test]
    fn scenario_run_shard_and_worker_options_parse() {
        assert_eq!(
            parse(&argv(&[
                "scenario",
                "run",
                "all",
                "--shards",
                "4",
                "--shard-index",
                "2",
                "--json"
            ]))
            .unwrap(),
            Command::ScenarioRun {
                target: ScenarioTarget::Name("all".into()),
                json: true,
                shard: Some(ShardSpec {
                    shards: 4,
                    index: 2
                }),
                workers: None,
                strict: false,
            }
        );
        assert_eq!(
            parse(&argv(&["scenario", "run", "all", "--workers", "3"])).unwrap(),
            Command::ScenarioRun {
                target: ScenarioTarget::Name("all".into()),
                json: false,
                shard: None,
                workers: Some(3),
                strict: false,
            }
        );
        // Validation: the pair must be complete, in range, and not
        // combined with --workers.
        assert!(parse(&argv(&["scenario", "run", "all", "--shards", "4"])).is_err());
        assert!(parse(&argv(&["scenario", "run", "all", "--shard-index", "0"])).is_err());
        assert!(parse(&argv(&[
            "scenario",
            "run",
            "all",
            "--shards",
            "4",
            "--shard-index",
            "4"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "scenario",
            "run",
            "all",
            "--shards",
            "0",
            "--shard-index",
            "0"
        ]))
        .is_err());
        assert!(parse(&argv(&["scenario", "run", "all", "--workers", "0"])).is_err());
        assert!(parse(&argv(&[
            "scenario",
            "run",
            "all",
            "--workers",
            "2",
            "--shards",
            "2",
            "--shard-index",
            "0"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "scenario",
            "run",
            "all",
            "--shards",
            "two",
            "--shard-index",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn scenario_run_strict_flag_parses() {
        assert_eq!(
            parse(&argv(&["scenario", "run", "all", "--strict"])).unwrap(),
            Command::ScenarioRun {
                target: ScenarioTarget::Name("all".into()),
                json: false,
                shard: None,
                workers: None,
                strict: true,
            }
        );
        assert_eq!(
            parse(&argv(&[
                "scenario",
                "run",
                "--file",
                "my.scenario",
                "--strict",
                "--json"
            ]))
            .unwrap(),
            Command::ScenarioRun {
                target: ScenarioTarget::File("my.scenario".into()),
                json: true,
                shard: None,
                workers: None,
                strict: true,
            }
        );
    }

    #[test]
    fn scenario_check_parses_names_files_and_flags() {
        assert_eq!(
            parse(&argv(&["scenario", "check", "all"])).unwrap(),
            Command::ScenarioCheck {
                target: ScenarioTarget::Name("all".into()),
                json: false,
            }
        );
        assert_eq!(
            parse(&argv(&[
                "scenario",
                "check",
                "--json",
                "batch-agnostic-europe"
            ]))
            .unwrap(),
            Command::ScenarioCheck {
                target: ScenarioTarget::Name("batch-agnostic-europe".into()),
                json: true,
            }
        );
        assert_eq!(
            parse(&argv(&["scenario", "check", "--file", "my.scenario"])).unwrap(),
            Command::ScenarioCheck {
                target: ScenarioTarget::File("my.scenario".into()),
                json: false,
            }
        );
        assert!(parse(&argv(&["scenario", "check"])).is_err());
        assert!(parse(&argv(&["scenario", "check", "all", "--file", "x"])).is_err());
        assert!(parse(&argv(&["scenario", "check", "a", "b"])).is_err());
        assert!(parse(&argv(&["scenario", "check", "all", "--strict"])).is_err());
    }

    #[test]
    fn analyze_workspace_parses_path_and_json() {
        assert_eq!(
            parse(&argv(&["analyze", "--workspace"])).unwrap(),
            Command::AnalyzeWorkspace {
                path: ".".into(),
                json: false,
            }
        );
        assert_eq!(
            parse(&argv(&["analyze", "--workspace", "/tmp/repo", "--json"])).unwrap(),
            Command::AnalyzeWorkspace {
                path: "/tmp/repo".into(),
                json: true,
            }
        );
        // The zone form still works, and its option set is unchanged.
        assert!(parse(&argv(&["analyze", "--workspace", "a", "b"])).is_err());
        assert!(parse(&argv(&["analyze", "--workspace", "--year", "2022"])).is_err());
        assert!(parse(&argv(&["analyze", "DE", "--workspace", "x"])).is_err());
    }

    #[test]
    fn scenario_merge_parses_reports_and_expectations() {
        assert_eq!(
            parse(&argv(&["scenario", "merge", "a.json", "b.json"])).unwrap(),
            Command::ScenarioMerge {
                reports: vec!["a.json".into(), "b.json".into()],
                expect: None,
            }
        );
        assert_eq!(
            parse(&argv(&[
                "scenario", "merge", "a.json", "--expect", "all", "b.json"
            ]))
            .unwrap(),
            Command::ScenarioMerge {
                reports: vec!["a.json".into(), "b.json".into()],
                expect: Some(MergeExpect::All),
            }
        );
        assert_eq!(
            parse(&argv(&[
                "scenario",
                "merge",
                "a.json",
                "--expect",
                "my.scenario"
            ]))
            .unwrap(),
            Command::ScenarioMerge {
                reports: vec!["a.json".into()],
                expect: Some(MergeExpect::File("my.scenario".into())),
            }
        );
        assert!(parse(&argv(&["scenario", "merge"])).is_err());
        assert!(parse(&argv(&["scenario", "merge", "--expect", "all"])).is_err());
        assert!(parse(&argv(&["scenario", "merge", "a.json", "--expect"])).is_err());
        assert!(parse(&argv(&["scenario", "merge", "a.json", "--bogus", "x"])).is_err());
    }

    #[test]
    fn scenario_history_parses_append_and_show() {
        assert_eq!(
            parse(&argv(&[
                "scenario", "history", "append", "--report", "r.json", "--file", "h.jsonl"
            ]))
            .unwrap(),
            Command::ScenarioHistory(HistoryCommand::Append {
                report: "r.json".into(),
                file: "h.jsonl".into(),
                rev: None,
            })
        );
        assert_eq!(
            parse(&argv(&[
                "scenario", "history", "append", "--report", "r.json", "--file", "h.jsonl",
                "--rev", "abc123"
            ]))
            .unwrap(),
            Command::ScenarioHistory(HistoryCommand::Append {
                report: "r.json".into(),
                file: "h.jsonl".into(),
                rev: Some("abc123".into()),
            })
        );
        assert_eq!(
            parse(&argv(&[
                "scenario", "history", "show", "--file", "h.jsonl", "--limit", "5"
            ]))
            .unwrap(),
            Command::ScenarioHistory(HistoryCommand::Show {
                file: "h.jsonl".into(),
                limit: 5,
            })
        );
        assert!(parse(&argv(&["scenario", "history"])).is_err());
        assert!(parse(&argv(&["scenario", "history", "append"])).is_err());
        assert!(parse(&argv(&["scenario", "history", "append", "--report", "r"])).is_err());
        assert!(parse(&argv(&["scenario", "history", "show"])).is_err());
        assert!(parse(&argv(&["scenario", "history", "prune", "--file", "h"])).is_err());
    }

    #[test]
    fn scenario_diff_parses_and_validates() {
        assert_eq!(
            parse(&argv(&[
                "scenario", "diff", "--report", "r.json", "--golden", "g.json"
            ]))
            .unwrap(),
            Command::ScenarioDiff {
                report: "r.json".into(),
                golden: "g.json".into(),
                tolerance_pct: 0.1
            }
        );
        assert_eq!(
            parse(&argv(&[
                "scenario",
                "diff",
                "--report",
                "r.json",
                "--golden",
                "g.json",
                "--tolerance-pct",
                "2.5"
            ]))
            .unwrap(),
            Command::ScenarioDiff {
                report: "r.json".into(),
                golden: "g.json".into(),
                tolerance_pct: 2.5
            }
        );
        assert!(parse(&argv(&["scenario", "diff", "--report", "r.json"])).is_err());
        assert!(parse(&argv(&["scenario", "diff", "--golden", "g.json"])).is_err());
        assert!(parse(&argv(&[
            "scenario",
            "diff",
            "--report",
            "r",
            "--golden",
            "g",
            "--tolerance-pct",
            "-1"
        ]))
        .is_err());
    }

    #[test]
    fn scenario_rejects_malformed_argv() {
        assert!(parse(&argv(&["scenario"])).is_err());
        assert!(parse(&argv(&["scenario", "frobnicate"])).is_err());
        assert!(parse(&argv(&["scenario", "list", "extra"])).is_err());
        assert!(parse(&argv(&["scenario", "run"])).is_err());
        assert!(parse(&argv(&["scenario", "run", "--bogus", "x"])).is_err());
        assert!(parse(&argv(&["scenario", "run", "a", "b"])).is_err());
    }

    #[test]
    fn data_pack_parses_and_validates() {
        assert_eq!(
            parse(&argv(&["data", "pack", "in.csv", "-o", "out.dct"])).unwrap(),
            Command::Data(DataCommand::Pack {
                source: "in.csv".into(),
                regions: None,
                resolution: None,
                out: "out.dct".into(),
            })
        );
        assert_eq!(
            parse(&argv(&[
                "data",
                "pack",
                "in.csv",
                "--regions",
                "meta.toml",
                "--out",
                "out.dct"
            ]))
            .unwrap(),
            Command::Data(DataCommand::Pack {
                source: "in.csv".into(),
                regions: Some("meta.toml".into()),
                resolution: None,
                out: "out.dct".into(),
            })
        );
        assert_eq!(
            parse(&argv(&["data", "pack", "builtin", "-o", "golden.dct"])).unwrap(),
            Command::Data(DataCommand::Pack {
                source: "builtin".into(),
                regions: None,
                resolution: None,
                out: "golden.dct".into(),
            })
        );
        assert_eq!(
            parse(&argv(&[
                "data",
                "pack",
                "builtin",
                "--resolution",
                "5",
                "-o",
                "fine.dct"
            ]))
            .unwrap(),
            Command::Data(DataCommand::Pack {
                source: "builtin".into(),
                regions: None,
                resolution: Some(5),
                out: "fine.dct".into(),
            })
        );
        assert!(parse(&argv(&["data", "pack"])).is_err());
        assert!(parse(&argv(&["data", "pack", "in.csv"])).is_err());
        assert!(parse(&argv(&["data", "pack", "in.csv", "-o"])).is_err());
        assert!(parse(&argv(&[
            "data",
            "pack",
            "builtin",
            "--regions",
            "m",
            "-o",
            "x"
        ]))
        .is_err());
        assert!(parse(&argv(&["data", "pack", "a", "-o", "x", "-o", "y"])).is_err());
    }

    #[test]
    fn data_pack_rejects_invalid_resolutions() {
        // Must divide 60 and lie in 1..=60; junk and duplicates fail too.
        for bad in ["7", "90", "0", "61", "soon", "-5"] {
            let out = parse(&argv(&[
                "data",
                "pack",
                "builtin",
                "--resolution",
                bad,
                "-o",
                "x.dct",
            ]));
            assert!(out.is_err(), "--resolution {bad} should be rejected");
        }
        assert!(parse(&argv(&["data", "pack", "builtin", "--resolution"])).is_err());
        assert!(parse(&argv(&[
            "data",
            "pack",
            "builtin",
            "--resolution",
            "5",
            "--resolution",
            "5",
            "-o",
            "x.dct"
        ]))
        .is_err());
        // Every divisor of 60 parses.
        for good in ["1", "5", "10", "15", "30", "60"] {
            let out = parse(&argv(&[
                "data",
                "pack",
                "builtin",
                "--resolution",
                good,
                "-o",
                "x.dct",
            ]));
            assert!(out.is_ok(), "--resolution {good} should parse");
        }
    }

    #[test]
    fn data_probe_and_append_parse() {
        assert_eq!(
            parse(&argv(&["data", "probe", "d.dct"])).unwrap(),
            Command::Data(DataCommand::Probe {
                file: "d.dct".into(),
                json: false,
            })
        );
        assert_eq!(
            parse(&argv(&["data", "probe", "d.dct", "--json"])).unwrap(),
            Command::Data(DataCommand::Probe {
                file: "d.dct".into(),
                json: true,
            })
        );
        assert_eq!(
            parse(&argv(&["data", "append", "d.dct", "--from", "new.csv"])).unwrap(),
            Command::Data(DataCommand::Append {
                file: "d.dct".into(),
                from: "new.csv".into(),
                pad: false,
            })
        );
        assert_eq!(
            parse(&argv(&[
                "data", "append", "d.dct", "--from", "new.csv", "--pad"
            ]))
            .unwrap(),
            Command::Data(DataCommand::Append {
                file: "d.dct".into(),
                from: "new.csv".into(),
                pad: true,
            })
        );
        assert!(parse(&argv(&["data"])).is_err());
        assert!(parse(&argv(&["data", "frobnicate"])).is_err());
        assert!(parse(&argv(&["data", "probe"])).is_err());
        assert!(parse(&argv(&["data", "probe", "d.dct", "extra"])).is_err());
        assert!(parse(&argv(&["data", "append", "d.dct"])).is_err());
        assert!(parse(&argv(&["data", "append", "d.dct", "--from"])).is_err());
    }

    #[test]
    fn run_and_list_reject_malformed_argv() {
        assert!(parse(&argv(&["run"])).is_err());
        assert!(parse(&argv(&["run", "--bogus", "fig5"])).is_err());
        assert!(parse(&argv(&["run", "fig5", "fig6"])).is_err());
        assert!(parse(&argv(&["list", "extra"])).is_err());
        assert_eq!(parse(&argv(&["list"])).unwrap(), Command::List);
    }
}
