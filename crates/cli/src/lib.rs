//! `decarb-cli` — a command-line interface to the carbon-aware scheduling
//! toolkit.
//!
//! Every subcommand is a pure function from parsed arguments to a
//! rendered `String` (so the whole surface is unit-testable); `main` only
//! parses `argv` and prints. Subcommands:
//!
//! | command | what it does |
//! |---------|--------------|
//! | `regions [--group G] [--year Y]` | list regions with annual mean and daily CV |
//! | `analyze <ZONE> [--year Y]` | one region's profile: mean, CV, extremes, periodicity, seasonal strength, drift |
//! | `plan <ZONE> --hours L [--slack H] [--arrive H0]` | cost of run-now / defer / interrupt / migrate for one job |
//! | `forecast <ZONE> [--days N] [--year Y]` | backtest all forecasters on the region |
//! | `rank [--year Y]` | rank-order stability of the global region set |
//! | `export <ZONE> [--year Y]` | CSV of the region's hourly trace to stdout |
//! | `list` | enumerate the experiment registry |
//! | `run <ID\|all> [--json]` | run experiments through the shared registry |
//! | `scenario list` | enumerate the built-in scenario matrix |
//! | `scenario run <NAME\|all> [--json]` | run scenario-matrix entries in parallel |
//! | `scenario run ... --shards N --shard-index I` | run one disjoint shard of the sweep plan |
//! | `scenario run ... --workers K` | fan the sweep out over K child shard processes |
//! | `scenario check <NAME\|all\|--file FILE>` | statically validate scenarios without simulating |
//! | `analyze --workspace [PATH]` | run the in-tree source lints over a checkout |
//! | `scenario merge <REPORT...> [--expect all\|FILE]` | recombine shard reports into one document |
//! | `scenario history append\|show` | record / render the per-run emissions series |
//! | `scenario history check --file H` | fail on monotonic multi-commit emissions drift |
//! | `scenario diff --report R --golden G` | gate per-scenario emissions drift |
//! | `serve [--data FILE] [--addr A] [--threads N] [--capacity-per-hour N]` | run the placement service (HTTP API; docs/API.md) |
//! | `serve bench [--addr A] [--connections N] [--requests M] [--batch K] [--mode keepalive\|close] [--pipeline P]` | load-test a placement server |
//!
//! A leading global option `--data FILE [--regions FILE]` replaces the
//! built-in synthetic dataset with a `zone,hour,value` CSV (e.g. a real
//! Electricity Maps export re-keyed to hours since 2020-01-01 UTC) or a
//! binary trace container packed by `data pack` — the two are told
//! apart by the container's magic bytes, so every subcommand, the sweep
//! pipeline, and all shard workers accept either transparently.
//! Zone codes are *not* restricted to the built-in catalog: known codes
//! take catalog metadata, `--regions` supplies a `[region CODE]`
//! metadata sidecar for the rest, and anything else gets neutral
//! defaults. Imported CSV traces are validated and repaired
//! (interpolating NaN/non-positive samples) before use; containers
//! carry their own region metadata and load verbatim, integrity-checked
//! by their content hash.

use decarb_traces::{
    builtin_dataset, container, csv, repair, validate, TraceSet, ValidationConfig,
};

pub mod args;
pub mod commands;
mod fanout;

pub use args::{
    parse, Command, DataCommand, HistoryCommand, MergeExpect, ParseError, ScenarioTarget, ShardSpec,
};
pub use commands::{run_on, CliError};

/// Runs a parsed command against the built-in dataset.
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        // Registry and file commands take no dataset; route them
        // directly.
        Command::List => Ok(commands::list()),
        Command::Run { id, json } => commands::run_experiments(id, *json),
        Command::ScenarioList => Ok(commands::scenario_list()),
        Command::ScenarioMerge { reports, expect } => {
            commands::scenario_merge(reports, expect.as_ref())
        }
        Command::ScenarioHistory(HistoryCommand::Append { report, file, rev }) => {
            commands::scenario_history_append(report, file, rev.as_deref())
        }
        Command::ScenarioHistory(HistoryCommand::Show { file, limit }) => {
            commands::scenario_history_show(file, *limit)
        }
        Command::ScenarioHistory(HistoryCommand::Check {
            file,
            window,
            max_drift_pct,
        }) => commands::scenario_history_check(file, *window, *max_drift_pct),
        Command::ScenarioDiff {
            report,
            golden,
            tolerance_pct,
        } => commands::scenario_diff(report, golden, *tolerance_pct),
        Command::Data(cmd) => commands::data_cmd(cmd),
        Command::AnalyzeWorkspace { path, json } => commands::analyze_workspace_cmd(path, *json),
        Command::ServeBench {
            addr,
            connections,
            requests,
            batch,
            keep_alive,
            pipeline,
            threads,
        } => commands::serve_bench_cmd(
            addr.as_deref(),
            *connections,
            *requests,
            *batch,
            *keep_alive,
            *pipeline,
            *threads,
        ),
        // `run_on` rejects `--workers` because it cannot know what
        // `--data` path its children should re-import; here the dataset
        // is the built-in one, which children load by default.
        Command::ScenarioRun {
            target,
            json,
            shard,
            workers,
            strict,
        } => commands::run_scenarios_cmd(
            target,
            *json,
            *shard,
            *workers,
            *strict,
            None,
            &builtin_dataset(),
        ),
        other => run_on(other, &builtin_dataset()),
    }
}

/// Loads a `--data` dataset: a binary trace container (detected by its
/// magic bytes) or a `zone,hour,value` CSV.
///
/// Containers carry their own region metadata and are integrity-checked
/// by their content hash, so they load verbatim — no sidecar, no
/// validation pass. CSV datasets are validated and repaired;
/// `regions_path` optionally names a `[region CODE]` metadata sidecar
/// (see `decarb_traces::sidecar`) describing zones outside the built-in
/// catalog; zones with neither catalog nor sidecar metadata are
/// interned with defaults instead of being rejected. A sidecar
/// `[dataset] resolution = MIN` section declares the CSV rows' sample
/// cadence — without one, rows are hourly.
pub fn load_dataset(path: &str, regions_path: Option<&str>) -> Result<TraceSet, CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| decarb_traces::TraceError::Io(format!("{path}: {e}")))?;
    if container::is_container(&bytes) {
        if regions_path.is_some() {
            return Err(CliError::Parse(ParseError(format!(
                "{path} is a binary trace container and carries its own region \
                 metadata; drop --regions"
            ))));
        }
        return Ok(container::decode(&bytes, path)?);
    }
    let (extra, declared_resolution) = match regions_path {
        None => (Vec::new(), None),
        Some(sidecar_path) => {
            let text = std::fs::read_to_string(sidecar_path)
                .map_err(|e| CliError::Parse(ParseError(format!("{sidecar_path}: {e}"))))?;
            let doc = decarb_traces::parse_sidecar(&text)
                .map_err(|e| CliError::Parse(ParseError(format!("{sidecar_path}: {e}"))))?;
            (doc.regions, doc.resolution)
        }
    };
    let text = String::from_utf8(bytes)
        .map_err(|e| decarb_traces::TraceError::Io(format!("{path}: {e}")))?;
    let raw = csv::read_dataset_str_with(&text, &extra)?;
    let config = ValidationConfig::default();
    let pairs = raw
        .iter()
        .map(|(region, series)| {
            let report = validate(series, &config);
            let series = if report.non_finite.is_empty() && report.non_positive.is_empty() {
                series.clone()
            } else {
                repair(series).ok_or_else(|| {
                    CliError::Parse(ParseError(format!(
                        "zone {} has no valid samples to repair from",
                        region.code
                    )))
                })?
            };
            Ok((region.clone(), series))
        })
        .collect::<Result<Vec<_>, CliError>>()?;
    let set = TraceSet::from_series(pairs);
    // The sidecar declared the rows' cadence; the series' slot anchors
    // and lengths are already counts on that axis, so stamping suffices.
    Ok(match declared_resolution {
        Some(resolution) => set.with_resolution(resolution),
        None => set,
    })
}

/// An imported `--data` dataset together with the paths it came from
/// (`--data`, optional `--regions` sidecar) — the paths ride along so
/// the multi-process fan-out can re-import the same dataset in its
/// child processes.
type ImportedData = Option<(String, Option<String>, TraceSet)>;

/// Splits the global `--data FILE [--regions FILE]` options off `argv`,
/// loading the dataset (plus the optional metadata sidecar) when
/// present.
fn split_data(argv: &[String]) -> Result<(ImportedData, &[String]), CliError> {
    if argv.first().map(String::as_str) == Some("--data") {
        let Some(path) = argv.get(1) else {
            return Err(CliError::Parse(ParseError(
                "--data needs a file path".into(),
            )));
        };
        let (regions_path, rest) = if argv.get(2).map(String::as_str) == Some("--regions") {
            let Some(sidecar) = argv.get(3) else {
                return Err(CliError::Parse(ParseError(
                    "--regions needs a file path".into(),
                )));
            };
            (Some(sidecar.as_str()), &argv[4..])
        } else {
            (None, &argv[2..])
        };
        Ok((
            Some((
                path.clone(),
                regions_path.map(str::to_string),
                load_dataset(path, regions_path)?,
            )),
            rest,
        ))
    } else {
        Ok((None, argv))
    }
}

/// Binds a `scenario run` to its dataset: the imported `--data` pair
/// when present (paths forwarded so worker children re-import it), else
/// the built-in set with no path.
fn with_scenario_dataset<R>(
    data: &ImportedData,
    f: impl FnOnce(Option<commands::DataPaths<'_>>, &TraceSet) -> R,
) -> R {
    match data {
        Some((path, regions, set)) => f(
            Some(commands::DataPaths {
                data: path,
                regions: regions.as_deref(),
            }),
            set,
        ),
        None => f(None, &builtin_dataset()),
    }
}

/// Entry point shared by `main` and the tests: parse, run, render.
///
/// Recognizes the global `--data FILE` option before the command.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let (data, rest) = split_data(argv)?;
    let command = parse(rest).map_err(CliError::Parse)?;
    if let Command::ScenarioRun {
        target,
        json,
        shard,
        workers,
        strict,
    } = &command
    {
        return with_scenario_dataset(&data, |path, set| {
            commands::run_scenarios_cmd(target, *json, *shard, *workers, *strict, path, set)
        });
    }
    match data {
        Some((_, _, set)) => run_on(&command, &set),
        None => run(&command),
    }
}

/// [`dispatch`] writing straight to `out` instead of buffering a
/// `String`. `scenario run` streams each report as its parallel chunk
/// completes — a thousand-scenario `--json` sweep starts emitting
/// after the first chunk instead of after the whole matrix. All other
/// commands render exactly the bytes [`dispatch`] would print.
pub fn dispatch_stream(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (data, rest) = split_data(argv)?;
    let command = parse(rest).map_err(CliError::Parse)?;
    if let Command::Serve {
        data: serve_data,
        regions,
        addr,
        threads,
        capacity_per_hour,
    } = &command
    {
        // `serve` accepts its dataset both as the global leading
        // `--data` and as its own option; either spelling reloads from
        // the same path on `POST /v1/reload`.
        let paths: Option<commands::DataPaths<'_>> = match (&data, serve_data) {
            (Some(_), Some(_)) => {
                return Err(CliError::Parse(ParseError(
                    "--data given twice (global and `serve --data`); pass it once".into(),
                )))
            }
            (Some((path, regions_path, _)), None) => Some(commands::DataPaths {
                data: path,
                regions: regions_path.as_deref(),
            }),
            (None, Some(path)) => Some(commands::DataPaths {
                data: path,
                regions: regions.as_deref(),
            }),
            (None, None) => None,
        };
        return commands::serve_cmd(out, paths, addr, *threads, *capacity_per_hour);
    }
    if let Command::ScenarioRun {
        target,
        json,
        shard,
        workers,
        strict,
    } = &command
    {
        with_scenario_dataset(&data, |path, set| {
            commands::run_scenarios_to(out, target, *json, *shard, *workers, *strict, path, set)
        })?;
        writeln!(out)?;
        return Ok(());
    }
    let text = match data {
        Some((_, _, set)) => run_on(&command, &set),
        None => run(&command),
    }?;
    writeln!(out, "{text}")?;
    Ok(())
}
