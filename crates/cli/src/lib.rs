//! `decarb-cli` — a command-line interface to the carbon-aware scheduling
//! toolkit.
//!
//! Every subcommand is a pure function from parsed arguments to a
//! rendered `String` (so the whole surface is unit-testable); `main` only
//! parses `argv` and prints. Subcommands:
//!
//! | command | what it does |
//! |---------|--------------|
//! | `regions [--group G] [--year Y]` | list regions with annual mean and daily CV |
//! | `analyze <ZONE> [--year Y]` | one region's profile: mean, CV, extremes, periodicity, seasonal strength, drift |
//! | `plan <ZONE> --hours L [--slack H] [--arrive H0]` | cost of run-now / defer / interrupt / migrate for one job |
//! | `forecast <ZONE> [--days N] [--year Y]` | backtest all forecasters on the region |
//! | `rank [--year Y]` | rank-order stability of the global region set |
//! | `export <ZONE> [--year Y]` | CSV of the region's hourly trace to stdout |
//! | `list` | enumerate the experiment registry |
//! | `run <ID\|all> [--json]` | run experiments through the shared registry |
//! | `scenario list` | enumerate the built-in scenario matrix |
//! | `scenario run <NAME\|all> [--json]` | run scenario-matrix entries in parallel |
//!
//! A leading global option `--data FILE` replaces the built-in synthetic
//! dataset with a `zone,hour,value` CSV (e.g. a real Electricity Maps
//! export re-keyed to hours since 2020-01-01 UTC); zone codes must exist
//! in the built-in catalog, and imported traces are validated and
//! repaired (interpolating NaN/non-positive samples) before use.

use std::fs::File;

use decarb_traces::{builtin_dataset, csv, repair, validate, TraceSet, ValidationConfig};

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError, ScenarioTarget};
pub use commands::{run_on, CliError};

/// Runs a parsed command against the built-in dataset.
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        // Registry and file commands take no dataset; route them
        // directly.
        Command::List => Ok(commands::list()),
        Command::Run { id, json } => commands::run_experiments(id, *json),
        Command::ScenarioList => Ok(commands::scenario_list()),
        Command::ScenarioDiff {
            report,
            golden,
            tolerance_pct,
        } => commands::scenario_diff(report, golden, *tolerance_pct),
        other => run_on(other, &builtin_dataset()),
    }
}

/// Loads, validates, and repairs a `zone,hour,value` CSV dataset.
pub fn load_dataset(path: &str) -> Result<TraceSet, CliError> {
    let file = File::open(path).map_err(decarb_traces::TraceError::from)?;
    let raw = csv::read_dataset(file)?;
    let config = ValidationConfig::default();
    let pairs = raw
        .iter()
        .map(|(region, series)| {
            let report = validate(series, &config);
            let series = if report.non_finite.is_empty() && report.non_positive.is_empty() {
                series.clone()
            } else {
                repair(series).ok_or_else(|| {
                    CliError::Parse(ParseError(format!(
                        "zone {} has no valid samples to repair from",
                        region.code
                    )))
                })?
            };
            Ok((region, series))
        })
        .collect::<Result<Vec<_>, CliError>>()?;
    Ok(TraceSet::from_series(pairs))
}

/// Splits the global `--data FILE` option off `argv`, loading the
/// dataset when present.
fn split_data(argv: &[String]) -> Result<(Option<TraceSet>, &[String]), CliError> {
    if argv.first().map(String::as_str) == Some("--data") {
        let Some(path) = argv.get(1) else {
            return Err(CliError::Parse(ParseError(
                "--data needs a file path".into(),
            )));
        };
        Ok((Some(load_dataset(path)?), &argv[2..]))
    } else {
        Ok((None, argv))
    }
}

/// Entry point shared by `main` and the tests: parse, run, render.
///
/// Recognizes the global `--data FILE` option before the command.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let (data, rest) = split_data(argv)?;
    let command = parse(rest).map_err(CliError::Parse)?;
    match data {
        Some(set) => run_on(&command, &set),
        None => run(&command),
    }
}

/// [`dispatch`] writing straight to `out` instead of buffering a
/// `String`. `scenario run` streams each report as its parallel chunk
/// completes — a thousand-scenario `--json` sweep starts emitting
/// after the first chunk instead of after the whole matrix. All other
/// commands render exactly the bytes [`dispatch`] would print.
pub fn dispatch_stream(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (data, rest) = split_data(argv)?;
    let command = parse(rest).map_err(CliError::Parse)?;
    if let Command::ScenarioRun { target, json } = &command {
        match &data {
            Some(set) => commands::run_scenarios_to(out, target, *json, set)?,
            None => commands::run_scenarios_to(out, target, *json, &builtin_dataset())?,
        }
        writeln!(out)?;
        return Ok(());
    }
    let text = match data {
        Some(set) => run_on(&command, &set),
        None => run(&command),
    }?;
    writeln!(out, "{text}")?;
    Ok(())
}
