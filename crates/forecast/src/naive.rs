//! Naive forecasting baselines: persistence and seasonal persistence.
//!
//! Any learned forecaster must beat these to justify its complexity; the
//! CarbonCast paper reports the same baselines. On strongly diurnal carbon
//! traces the *seasonal* naive (same hour yesterday) is already hard to
//! beat at day-ahead leads, which is exactly why the paper's §4.3
//! periodicity analysis matters for temporal shifting.

use decarb_traces::{Resolution, TimeSeries};

use crate::model::{tail, Forecaster};

/// Carry-forward persistence: every future hour is predicted to equal the
/// last observed sample.
///
/// Good for the first one or two lead hours; degrades quickly across a
/// diurnal cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct Persistence;

impl Forecaster for Persistence {
    fn name(&self) -> &'static str {
        "persistence"
    }

    fn predict(&self, history: &TimeSeries, horizon: usize) -> Vec<f64> {
        assert!(!history.is_empty(), "history must be non-empty");
        let last = history.values().last().copied().unwrap_or(0.0);
        vec![last; horizon]
    }
}

/// Seasonal naive: the prediction for hour `t` is the observation from
/// `t − period` (e.g. the same hour yesterday for `period = 24`).
///
/// When the horizon extends past one period, predictions wrap within the
/// most recent period of history, so a 96-hour forecast from a daily
/// seasonal naive repeats yesterday four times.
#[derive(Debug, Clone, Copy)]
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// Creates a seasonal naive with an arbitrary period in samples of
    /// the trace axis (hours on hourly data).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "seasonal period must be positive");
        Self { period }
    }

    /// Same hour yesterday (24-hour period), the paper's dominant cycle.
    pub fn daily() -> Self {
        Self::new(24)
    }

    /// One-day period on an axis sampled at `resolution`: 24 samples
    /// hourly, 288 at 5-minute resolution. On a 12×-repeated trace the
    /// prediction is the slot-wise expansion of [`SeasonalNaive::daily`].
    pub fn daily_at(resolution: Resolution) -> Self {
        Self::new(resolution.slots_per_day())
    }

    /// Same hour last week (168-hour period), capturing weekday/weekend
    /// effects.
    pub fn weekly() -> Self {
        Self::new(168)
    }

    /// Returns the seasonal period in samples.
    pub fn period(&self) -> usize {
        self.period
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "seasonal-naive"
    }

    fn predict(&self, history: &TimeSeries, horizon: usize) -> Vec<f64> {
        assert!(!history.is_empty(), "history must be non-empty");
        let (_, window) = tail(history, self.period);
        // With less history than one period, repeat what we have.
        (0..horizon).map(|k| window[k % window.len()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::Hour;

    fn diurnal(days: usize) -> TimeSeries {
        let values = (0..days * 24)
            .map(|t| 300.0 + 100.0 * (std::f64::consts::TAU * (t % 24) as f64 / 24.0).sin())
            .collect();
        TimeSeries::new(Hour(0), values)
    }

    #[test]
    fn persistence_repeats_last_value() {
        let history = TimeSeries::new(Hour(0), vec![10.0, 20.0, 30.0]);
        let fc = Persistence.predict(&history, 4);
        assert_eq!(fc, vec![30.0; 4]);
    }

    #[test]
    fn seasonal_naive_is_exact_on_pure_cycle() {
        let history = diurnal(10);
        let fc = SeasonalNaive::daily().predict(&history, 48);
        // A pure 24-hour cycle forecasts itself perfectly.
        for (k, v) in fc.iter().enumerate() {
            let expected = 300.0 + 100.0 * (std::f64::consts::TAU * (k % 24) as f64 / 24.0).sin();
            assert!((v - expected).abs() < 1e-9, "lead {k}");
        }
    }

    #[test]
    fn seasonal_naive_wraps_beyond_one_period() {
        let history = TimeSeries::new(Hour(0), vec![1.0, 2.0, 3.0]);
        let fc = SeasonalNaive::new(3).predict(&history, 7);
        assert_eq!(fc, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn short_history_degrades_gracefully() {
        let history = TimeSeries::new(Hour(0), vec![5.0, 7.0]);
        let fc = SeasonalNaive::daily().predict(&history, 5);
        assert_eq!(fc, vec![5.0, 7.0, 5.0, 7.0, 5.0]);
    }

    #[test]
    fn weekly_period_accessor() {
        assert_eq!(SeasonalNaive::weekly().period(), 168);
        assert_eq!(SeasonalNaive::daily().period(), 24);
    }

    #[test]
    fn daily_period_scales_with_resolution() {
        let five = Resolution::from_minutes(5).unwrap();
        assert_eq!(SeasonalNaive::daily_at(five).period(), 288);
        assert_eq!(SeasonalNaive::daily_at(Resolution::HOURLY).period(), 24);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_panics() {
        SeasonalNaive::new(0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_history_panics() {
        Persistence.predict(&TimeSeries::new(Hour(0), vec![]), 1);
    }
}
