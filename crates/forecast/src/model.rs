//! The forecaster interface.

use decarb_traces::{Hour, TimeSeries};

/// A carbon-intensity forecaster.
///
/// A forecaster sees the trace *history* — every hourly sample strictly
/// before the forecast origin `history.end()` — and predicts the next
/// `horizon` hourly values. Implementations must be deterministic: the
/// same history and horizon always produce the same forecast (schedulers
/// built on top rely on replayability).
pub trait Forecaster {
    /// Returns a short model name for tables and reports.
    fn name(&self) -> &'static str;

    /// Predicts the `horizon` hourly values following `history.end()`.
    ///
    /// The returned vector has exactly `horizon` entries; entry `k` is the
    /// prediction for hour `history.end() + k`. Implementations must cope
    /// with histories shorter than their preferred context by degrading
    /// gracefully (e.g. falling back to the history mean), never by
    /// panicking, as long as the history holds at least one sample.
    ///
    /// # Panics
    ///
    /// Panics if `history` is empty.
    fn predict(&self, history: &TimeSeries, horizon: usize) -> Vec<f64>;

    /// Predicts and wraps the result as a [`TimeSeries`] anchored at the
    /// forecast origin.
    fn predict_series(&self, history: &TimeSeries, horizon: usize) -> TimeSeries {
        TimeSeries::new(history.end(), self.predict(history, horizon))
    }
}

/// The minimum history (in hours) a forecaster can always rely on in the
/// rolling backtests of this workspace: one week of hourly samples.
pub const MIN_HISTORY_HOURS: usize = 168;

/// Returns the trailing `len` samples of `history` (or everything when the
/// history is shorter), with the absolute hour of the first returned
/// sample.
///
/// Convenience shared by the concrete models.
pub(crate) fn tail(history: &TimeSeries, len: usize) -> (Hour, &[f64]) {
    let values = history.values();
    let skip = values.len().saturating_sub(len);
    (history.start().plus(skip), &values[skip..])
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat;
    impl Forecaster for Flat {
        fn name(&self) -> &'static str {
            "flat"
        }
        fn predict(&self, history: &TimeSeries, horizon: usize) -> Vec<f64> {
            assert!(!history.is_empty(), "history must be non-empty");
            vec![history.mean(); horizon]
        }
    }

    #[test]
    fn predict_series_is_anchored_at_origin() {
        let history = TimeSeries::new(Hour(5), vec![1.0, 3.0]);
        let fc = Flat.predict_series(&history, 3);
        assert_eq!(fc.start(), Hour(7));
        assert_eq!(fc.len(), 3);
        assert_eq!(fc.values(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn tail_returns_trailing_window() {
        let history = TimeSeries::new(Hour(0), vec![1.0, 2.0, 3.0, 4.0]);
        let (start, values) = tail(&history, 2);
        assert_eq!(start, Hour(2));
        assert_eq!(values, &[3.0, 4.0]);
        // Longer than the history: everything comes back.
        let (start, values) = tail(&history, 10);
        assert_eq!(start, Hour(0));
        assert_eq!(values.len(), 4);
    }
}
