//! `decarb-forecast` — carbon-intensity forecasting models and their
//! evaluation.
//!
//! The paper's upper bounds assume *perfect* knowledge of future
//! carbon-intensity (§3.2) and then probe sensitivity with a uniform random
//! error (§6.2). Its related-work section points at CarbonCast [28], a
//! multi-day forecaster with a 4.80–13.93 % MAPE, as the practical source
//! of that signal. This crate provides the forecasting substrate the paper
//! references but does not implement:
//!
//! * [`model::Forecaster`] — the common interface: given the trace history
//!   up to a forecast origin, predict the next `horizon` hours;
//! * [`naive`] — [`naive::Persistence`] and [`naive::SeasonalNaive`]
//!   baselines (carry-forward and same-hour-yesterday/last-week);
//! * [`template`] — [`template::DiurnalTemplate`], an hour-of-day /
//!   weekday-aware climatology over a trailing window;
//! * [`linear`] — [`linear::LinearAr`], a ridge-regularized autoregression
//!   on lagged values and calendar harmonics, the closest linear stand-in
//!   for CarbonCast's learned model;
//! * [`metrics`] — MAPE / RMSE / MAE / bias and per-lead-day profiles;
//! * [`backtest`] — rolling-origin evaluation and
//!   [`backtest::rolling_forecast_trace`], which stitches day-ahead
//!   forecasts into the "believed" trace that
//!   `decarb_core::forecast::temporal_increase_pct` consumes, replacing
//!   §6.2's synthetic uniform error with realistic, structured error.
//!
//! # Examples
//!
//! ```
//! use decarb_forecast::{backtest::{backtest, BacktestConfig}, naive::SeasonalNaive};
//! use decarb_traces::{builtin_dataset, time::year_start};
//!
//! let data = builtin_dataset();
//! let series = data.series("US-CA").unwrap();
//! let report = backtest(
//!     &SeasonalNaive::daily(),
//!     series,
//!     year_start(2022),
//!     30 * 24,
//!     &BacktestConfig::default(),
//! );
//! assert!(report.mape_pct > 0.0 && report.mape_pct < 60.0);
//! ```

pub mod backtest;
pub mod linalg;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod naive;
pub mod template;

pub use backtest::{backtest, rolling_forecast_trace, BacktestConfig, BacktestReport};
pub use linear::LinearAr;
pub use metrics::{mae, mape_pct, mean_bias, rmse, ForecastErrors};
pub use model::{Forecaster, MIN_HISTORY_HOURS};
pub use naive::{Persistence, SeasonalNaive};
pub use template::DiurnalTemplate;
