//! Forecast accuracy metrics.
//!
//! CarbonCast reports mean absolute percentage error (MAPE); the paper's
//! §6.2 translates a given error magnitude into a carbon-emission
//! increase. This module provides MAPE plus the standard companions (RMSE,
//! MAE, bias) and per-lead-day aggregation for multi-day forecasts.

/// Mean absolute percentage error, in percent.
///
/// Hours with zero actual value are skipped (a percentage error is
/// undefined there); returns 0 when nothing remains.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mape_pct(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "series must align");
    let mut total = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a == 0.0 {
            continue;
        }
        total += ((a - p) / a).abs();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64 * 100.0
    }
}

/// Root-mean-square error in the units of the series (g·CO2eq/kWh).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "series must align");
    if actual.is_empty() {
        return 0.0;
    }
    let sq: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p) * (a - p))
        .sum();
    (sq / actual.len() as f64).sqrt()
}

/// Mean absolute error in the units of the series.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "series must align");
    if actual.is_empty() {
        return 0.0;
    }
    let abs: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p).abs())
        .sum();
    abs / actual.len() as f64
}

/// Mean signed bias `predicted − actual`; positive means the forecaster
/// over-predicts.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_bias(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "series must align");
    if actual.is_empty() {
        return 0.0;
    }
    let sum: f64 = actual.iter().zip(predicted).map(|(&a, &p)| p - a).sum();
    sum / actual.len() as f64
}

/// The error profile of one forecast (or one pooled set of forecasts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastErrors {
    /// Mean absolute percentage error, percent.
    pub mape_pct: f64,
    /// Root-mean-square error, g·CO2eq/kWh.
    pub rmse: f64,
    /// Mean absolute error, g·CO2eq/kWh.
    pub mae: f64,
    /// Mean signed bias (predicted − actual), g·CO2eq/kWh.
    pub bias: f64,
}

impl ForecastErrors {
    /// Computes all metrics over one aligned pair of series.
    pub fn of(actual: &[f64], predicted: &[f64]) -> Self {
        Self {
            mape_pct: mape_pct(actual, predicted),
            rmse: rmse(actual, predicted),
            mae: mae(actual, predicted),
            bias: mean_bias(actual, predicted),
        }
    }
}

/// MAPE aggregated per lead day: entry `d` pools all forecast hours with
/// lead time in `[24 d, 24 (d+1))` across every (actual, predicted) pair.
///
/// CarbonCast reports accuracy this way (day-1 vs day-2 vs day-3 ahead);
/// the decay across lead days is the signal schedulers care about, since a
/// 24-hour-slack deferral only consumes day-1 forecasts while a 96-hour
/// one consumes day-4.
pub fn mape_by_lead_day(pairs: &[(&[f64], &[f64])], horizon: usize) -> Vec<f64> {
    let days = horizon.div_ceil(24);
    let mut total = vec![0.0; days];
    let mut count = vec![0usize; days];
    for (actual, predicted) in pairs {
        assert_eq!(actual.len(), predicted.len(), "series must align");
        for (k, (&a, &p)) in actual.iter().zip(*predicted).enumerate() {
            if k >= horizon || a == 0.0 {
                continue;
            }
            let d = k / 24;
            total[d] += ((a - p) / a).abs();
            count[d] += 1;
        }
    }
    total
        .iter()
        .zip(&count)
        .map(|(&t, &n)| if n == 0 { 0.0 } else { t / n as f64 * 100.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_has_zero_errors() {
        let a = [100.0, 200.0, 300.0];
        let e = ForecastErrors::of(&a, &a);
        assert_eq!(e.mape_pct, 0.0);
        assert_eq!(e.rmse, 0.0);
        assert_eq!(e.mae, 0.0);
        assert_eq!(e.bias, 0.0);
    }

    #[test]
    fn mape_is_scale_free() {
        let a = [100.0, 200.0];
        let p = [110.0, 220.0];
        assert!((mape_pct(&a, &p) - 10.0).abs() < 1e-12);
        let a10: Vec<f64> = a.iter().map(|v| v * 10.0).collect();
        let p10: Vec<f64> = p.iter().map(|v| v * 10.0).collect();
        assert!((mape_pct(&a10, &p10) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 100.0];
        let p = [50.0, 150.0];
        assert!((mape_pct(&a, &p) - 50.0).abs() < 1e-12);
        assert_eq!(mape_pct(&[0.0], &[5.0]), 0.0);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let a = [100.0; 4];
        let p = [100.0, 100.0, 100.0, 140.0];
        assert!(rmse(&a, &p) > mae(&a, &p));
        assert!((mae(&a, &p) - 10.0).abs() < 1e-12);
        assert!((rmse(&a, &p) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn bias_sign_convention() {
        let a = [100.0, 100.0];
        assert!(mean_bias(&a, &[110.0, 110.0]) > 0.0, "over-prediction");
        assert!(mean_bias(&a, &[90.0, 90.0]) < 0.0, "under-prediction");
    }

    #[test]
    fn empty_series_yield_zeros() {
        let e = ForecastErrors::of(&[], &[]);
        assert_eq!(e.rmse, 0.0);
        assert_eq!(e.mae, 0.0);
        assert_eq!(e.bias, 0.0);
    }

    #[test]
    fn lead_day_aggregation_buckets_correctly() {
        // 48-hour forecast: day 1 perfect, day 2 off by 10 %.
        let actual: Vec<f64> = vec![100.0; 48];
        let mut predicted = vec![100.0; 24];
        predicted.extend(vec![110.0; 24]);
        let by_day = mape_by_lead_day(&[(&actual[..], &predicted[..])], 48);
        assert_eq!(by_day.len(), 2);
        assert!((by_day[0] - 0.0).abs() < 1e-12);
        assert!((by_day[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lead_day_pools_across_pairs() {
        let a = [100.0; 24];
        let p1 = [120.0; 24];
        let p2 = [100.0; 24];
        let by_day = mape_by_lead_day(&[(&a[..], &p1[..]), (&a[..], &p2[..])], 24);
        assert!(
            (by_day[0] - 10.0).abs() < 1e-12,
            "pooled mean of 20% and 0%"
        );
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        mape_pct(&[1.0], &[1.0, 2.0]);
    }
}
