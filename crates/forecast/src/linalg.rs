//! Minimal dense linear algebra for the ridge regression in [`crate::linear`].
//!
//! The feature dimension is tiny (≈ 12), so a straightforward Gaussian
//! elimination with partial pivoting is both simple and fast; no external
//! linear-algebra dependency is justified.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the element at `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }
}

/// Solves the square system `A x = b` in place via Gaussian elimination
/// with partial pivoting.
///
/// Returns `None` when the system is (numerically) singular — the caller
/// decides how to degrade. `A` and `b` are consumed as working storage.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "solve requires a square matrix");
    assert_eq!(n, b.len(), "rhs length must match");
    const SINGULAR_EPS: f64 = 1e-12;

    for col in 0..n {
        // Partial pivot: the largest |entry| on or below the diagonal.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| a.get(r1, col).abs().total_cmp(&a.get(r2, col).abs()))
            .unwrap_or(col);
        if a.get(pivot_row, col).abs() < SINGULAR_EPS {
            return None;
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = a.get(col, c);
                a.set(col, c, a.get(pivot_row, c));
                a.set(pivot_row, c, tmp);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a.get(col, col);
        for row in col + 1..n {
            let factor = a.get(row, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a.get(row, c) - factor * a.get(col, c);
                a.set(row, c, v);
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for (c, &xc) in x.iter().enumerate().skip(row + 1) {
            acc -= a.get(row, c) * xc;
        }
        x[row] = acc / a.get(row, row);
    }
    Some(x)
}

/// Solves the ridge-regularized least-squares problem
/// `min ‖X w − y‖² + λ‖w‖²` via the normal equations
/// `(XᵀX + λI) w = Xᵀy`.
///
/// `x` holds one feature row per observation; `y` the targets. The
/// intercept, if wanted, must be an explicit all-ones feature column
/// (conventionally excluded from regularization; for the tiny λ used here
/// the distinction is immaterial, so this routine regularizes uniformly).
///
/// Returns `None` when the normal equations are singular even after
/// regularization (e.g. zero observations).
pub fn ridge(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert_eq!(x.len(), y.len(), "feature/target counts must match");
    let n = x.len();
    if n == 0 {
        return None;
    }
    let d = x[0].len();
    let mut xtx = Matrix::zeros(d, d);
    let mut xty = vec![0.0; d];
    for (row, &target) in x.iter().zip(y) {
        assert_eq!(row.len(), d, "ragged feature rows");
        for i in 0..d {
            xty[i] += row[i] * target;
            for j in i..d {
                xtx.add(i, j, row[i] * row[j]);
            }
        }
    }
    // Mirror the upper triangle and add the ridge.
    for i in 0..d {
        for j in 0..i {
            let v = xtx.get(j, i);
            xtx.set(i, j, v);
        }
        xtx.add(i, i, lambda);
    }
    solve(xtx, xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system_exactly() {
        // 2x + y = 5; x − y = 1  →  x = 2, y = 1.
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, -1.0);
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Without pivoting this system fails on the zero at (0,0).
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 0.0);
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_returns_none() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn ridge_recovers_linear_relation() {
        // y = 3 a − 2 b + 1 with an intercept column.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.11).cos();
            rows.push(vec![a, b, 1.0]);
            y.push(3.0 * a - 2.0 * b + 1.0);
        }
        let w = ridge(&rows, &y, 1e-9).unwrap();
        assert!((w[0] - 3.0).abs() < 1e-6, "w0 {}", w[0]);
        assert!((w[1] + 2.0).abs() < 1e-6, "w1 {}", w[1]);
        assert!((w[2] - 1.0).abs() < 1e-6, "w2 {}", w[2]);
    }

    #[test]
    fn ridge_shrinks_under_collinearity() {
        // Two identical features: OLS is singular, ridge splits the weight.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let v = i as f64 / 10.0;
                vec![v, v]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 4.0 * r[0]).collect();
        let w = ridge(&rows, &y, 1e-6).unwrap();
        assert!((w[0] - w[1]).abs() < 1e-6, "symmetric split");
        assert!((w[0] + w[1] - 4.0).abs() < 1e-3, "sum ≈ 4");
    }

    #[test]
    fn ridge_with_no_observations_is_none() {
        assert!(ridge(&[], &[], 1.0).is_none());
    }

    #[test]
    fn matrix_accessors() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        m.add(1, 2, 1.5);
        assert_eq!(m.get(1, 2), 6.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_solve_panics() {
        solve(Matrix::zeros(2, 3), vec![0.0, 0.0]);
    }
}
