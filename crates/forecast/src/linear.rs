//! Ridge-regularized autoregression with calendar features.
//!
//! The closest linear stand-in for CarbonCast's learned model: a one-step
//! predictor on lagged carbon-intensity values and hour-of-day harmonics,
//! rolled out recursively for multi-day horizons. Short lags capture the
//! local trend, the 24-/168-hour lags capture the periodic structure §4.3
//! establishes, and the harmonics let the model correct phase where the
//! seasonal lags alone are biased.

use decarb_traces::{Hour, TimeSeries};

use crate::linalg::ridge;
use crate::model::{tail, Forecaster};

/// The autoregressive lags, in hours.
///
/// 1–3 h for local trend; 24/25 h for the diurnal cycle (and its phase
/// drift); 168 h for the weekly cycle.
pub const LAGS: [usize; 6] = [1, 2, 3, 24, 25, 168];

/// Largest lag in [`LAGS`] (they are sorted ascending; pinned by test).
const MAX_LAG: usize = LAGS[LAGS.len() - 1];

/// Number of features: the lags, sin/cos of the daily harmonic, sin/cos of
/// the half-daily harmonic, a weekend flag, and an intercept.
const N_FEATURES: usize = LAGS.len() + 5;

/// A fitted linear autoregressive forecaster.
///
/// Fit once on a training slice with [`LinearAr::fit`], then call
/// [`Forecaster::predict`] at any later origin; prediction uses only the
/// frozen weights and the supplied history, so one fitted model serves a
/// whole rolling backtest.
#[derive(Debug, Clone)]
pub struct LinearAr {
    weights: Vec<f64>,
    /// Mean of the training targets; the fallback prediction when the
    /// history is too short for the longest lag.
    train_mean: f64,
}

/// Builds the feature row for predicting the value at `hour`, where
/// `value_at(k)` returns the (true or already-predicted) value `k` hours
/// before `hour`.
fn features(hour: Hour, mut value_at: impl FnMut(usize) -> f64) -> Vec<f64> {
    let mut row = Vec::with_capacity(N_FEATURES);
    for &lag in &LAGS {
        row.push(value_at(lag));
    }
    let phase = std::f64::consts::TAU * hour.hour_of_day() as f64 / 24.0;
    row.push(phase.sin());
    row.push(phase.cos());
    row.push((2.0 * phase).sin());
    row.push((2.0 * phase).cos());
    row.push(if hour.is_weekend() { 1.0 } else { 0.0 });
    row
}

impl LinearAr {
    /// The ridge penalty; small enough to be inert on well-conditioned
    /// fits, large enough to keep collinear seasonal lags stable.
    pub const LAMBDA: f64 = 1e-3;

    /// Fits the model on `train` by least squares over every hour with a
    /// full lag window.
    ///
    /// Returns `None` when the training slice is shorter than the longest
    /// lag plus one target (≤ 168 samples) or the normal equations are
    /// singular.
    ///
    /// # Examples
    ///
    /// ```
    /// use decarb_forecast::{Forecaster, LinearAr};
    /// use decarb_traces::builtin_dataset;
    /// use decarb_traces::time::year_start;
    ///
    /// let data = builtin_dataset();
    /// let series = data.series("US-CA").unwrap();
    /// let train = series.slice(year_start(2021), 8760).unwrap();
    /// let model = LinearAr::fit(&train).unwrap();
    /// let next_day = model.predict(&train, 24);
    /// assert_eq!(next_day.len(), 24);
    /// ```
    pub fn fit(train: &TimeSeries) -> Option<Self> {
        let max_lag = MAX_LAG;
        let values = train.values();
        if values.len() <= max_lag {
            return None;
        }
        let mut rows = Vec::with_capacity(values.len() - max_lag);
        let mut targets = Vec::with_capacity(values.len() - max_lag);
        for t in max_lag..values.len() {
            let hour = train.start().plus(t);
            let mut row = features(hour, |k| values[t - k]);
            row.push(1.0); // Intercept.
            debug_assert_eq!(row.len(), N_FEATURES + 1);
            rows.push(row);
            targets.push(values[t]);
        }
        let weights = ridge(&rows, &targets, Self::LAMBDA)?;
        let train_mean = targets.iter().sum::<f64>() / targets.len() as f64;
        Some(Self {
            weights,
            train_mean,
        })
    }

    /// Returns the fitted weights (lags, harmonics, weekend flag,
    /// intercept), mostly for inspection and tests.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// One-step prediction given a closure over past values.
    fn step(&self, hour: Hour, value_at: impl FnMut(usize) -> f64) -> f64 {
        let mut row = features(hour, value_at);
        row.push(1.0);
        row.iter()
            .zip(&self.weights)
            .map(|(f, w)| f * w)
            .sum::<f64>()
            .max(0.0) // Carbon-intensity cannot be negative.
    }
}

impl Forecaster for LinearAr {
    fn name(&self) -> &'static str {
        "linear-ar"
    }

    fn predict(&self, history: &TimeSeries, horizon: usize) -> Vec<f64> {
        assert!(!history.is_empty(), "history must be non-empty");
        let max_lag = MAX_LAG;
        let (_, window) = tail(history, max_lag);
        if window.len() < max_lag {
            // Not enough context for the longest lag: degrade to the
            // training mean, as documented on the trait.
            return vec![self.train_mean; horizon];
        }
        let origin = history.end();
        // Rolling buffer of the last `max_lag` values, true history first,
        // then our own predictions as the rollout proceeds.
        let mut buffer: Vec<f64> = window.to_vec();
        let mut out = Vec::with_capacity(horizon);
        for k in 0..horizon {
            let hour = origin.plus(k);
            let len = buffer.len();
            let v = self.step(hour, |lag| buffer[len - lag]);
            buffer.push(v);
            // Keep the buffer bounded: only the last `max_lag` entries are
            // ever read.
            if buffer.len() > 2 * max_lag {
                buffer.drain(..buffer.len() - max_lag);
            }
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::time::year_start;

    fn diurnal(days: usize, noise_seed: Option<u64>) -> TimeSeries {
        let start = year_start(2022);
        let mut state = noise_seed.unwrap_or(0);
        let mut noise = move || {
            if noise_seed.is_none() {
                return 0.0;
            }
            // Tiny xorshift; determinism matters more than quality here.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let values = (0..days * 24)
            .map(|i| {
                let hour = start.plus(i);
                300.0
                    + 100.0 * (std::f64::consts::TAU * hour.hour_of_day() as f64 / 24.0).sin()
                    + 10.0 * noise()
            })
            .collect();
        TimeSeries::new(start, values)
    }

    #[test]
    fn lags_sorted_so_max_lag_is_last() {
        assert!(LAGS.windows(2).all(|w| w[0] < w[1]), "LAGS must be sorted");
        assert_eq!(MAX_LAG, LAGS.iter().copied().max().unwrap());
    }

    #[test]
    fn fit_requires_enough_history() {
        assert!(LinearAr::fit(&diurnal(14, None)).is_some());
        // Exactly the longest lag leaves no target hour to train on.
        let short = TimeSeries::new(Hour(0), vec![1.0; 168]);
        assert!(LinearAr::fit(&short).is_none());
    }

    #[test]
    fn nearly_exact_on_pure_cycle() {
        let train = diurnal(60, None);
        let model = LinearAr::fit(&train).unwrap();
        let history = diurnal(30, None);
        let fc = model.predict(&history, 48);
        let origin = history.end();
        for (k, v) in fc.iter().enumerate() {
            let hour = origin.plus(k);
            let expected =
                300.0 + 100.0 * (std::f64::consts::TAU * hour.hour_of_day() as f64 / 24.0).sin();
            assert!((v - expected).abs() < 1.0, "lead {k}: {v} vs {expected}");
        }
    }

    #[test]
    fn beats_persistence_on_noisy_cycle() {
        use crate::metrics::mape_pct;
        use crate::naive::Persistence;
        let train = diurnal(90, Some(12345));
        let model = LinearAr::fit(&train).unwrap();
        let full = diurnal(120, Some(777));
        let history = full.slice(full.start(), 90 * 24).unwrap();
        let actual = &full.values()[90 * 24..90 * 24 + 48];
        let ar = model.predict(&history, 48);
        let pers = Persistence.predict(&history, 48);
        let ar_err = mape_pct(actual, &ar);
        let pers_err = mape_pct(actual, &pers);
        assert!(
            ar_err < pers_err,
            "AR {ar_err:.2}% should beat persistence {pers_err:.2}%"
        );
    }

    #[test]
    fn short_history_falls_back_to_train_mean() {
        let train = diurnal(30, None);
        let model = LinearAr::fit(&train).unwrap();
        let tiny = TimeSeries::new(Hour(0), vec![50.0; 24]);
        let fc = model.predict(&tiny, 5);
        assert!(fc.iter().all(|v| (*v - model.train_mean).abs() < 1e-9));
    }

    #[test]
    fn predictions_never_negative() {
        // A decaying trace can push a linear extrapolation below zero; the
        // model clamps.
        let values: Vec<f64> = (0..400).map(|t| (400 - t) as f64 * 0.5).collect();
        let train = TimeSeries::new(year_start(2022), values);
        if let Some(model) = LinearAr::fit(&train) {
            let fc = model.predict(&train, 300);
            assert!(fc.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn weight_vector_has_expected_dimension() {
        let model = LinearAr::fit(&diurnal(30, None)).unwrap();
        assert_eq!(model.weights().len(), LAGS.len() + 5 + 1);
    }

    #[test]
    fn long_rollout_stays_bounded() {
        let train = diurnal(60, Some(9));
        let model = LinearAr::fit(&train).unwrap();
        let fc = model.predict(&train, 24 * 30);
        assert_eq!(fc.len(), 24 * 30);
        assert!(fc.iter().all(|v| v.is_finite() && *v >= 0.0 && *v < 2000.0));
    }
}
