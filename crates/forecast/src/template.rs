//! Diurnal-template climatology forecaster.
//!
//! §4.3 of the paper shows that most datacenter regions' carbon-intensity
//! repeats with 24-hour (and 168-hour) periods. A climatology that averages
//! the trailing weeks per (hour-of-day, weekday/weekend) bucket therefore
//! captures most of the predictable structure, while smoothing out the
//! sample noise that trips the plain seasonal naive.

use decarb_traces::TimeSeries;

use crate::model::{tail, Forecaster};

/// Hour-of-day / day-type climatology over a trailing window.
///
/// For each of the 48 buckets (24 hours × {weekday, weekend}) the model
/// averages all matching samples in the trailing `window_days` days and
/// predicts the bucket mean. Buckets with no samples fall back to the
/// corresponding hour-of-day mean across both day types, then to the
/// overall mean.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalTemplate {
    window_days: usize,
}

impl Default for DiurnalTemplate {
    fn default() -> Self {
        // Four trailing weeks balances responsiveness to seasonal drift
        // against per-bucket sample counts (≈ 20 weekday / 8 weekend
        // samples per hour bucket).
        Self { window_days: 28 }
    }
}

impl DiurnalTemplate {
    /// Creates a template over the trailing `window_days` days.
    ///
    /// # Panics
    ///
    /// Panics if `window_days` is zero.
    pub fn new(window_days: usize) -> Self {
        assert!(window_days > 0, "window must cover at least one day");
        Self { window_days }
    }

    /// Returns the trailing-window length in days.
    pub fn window_days(&self) -> usize {
        self.window_days
    }
}

impl Forecaster for DiurnalTemplate {
    fn name(&self) -> &'static str {
        "diurnal-template"
    }

    fn predict(&self, history: &TimeSeries, horizon: usize) -> Vec<f64> {
        assert!(!history.is_empty(), "history must be non-empty");
        let (start, window) = tail(history, self.window_days * 24);

        // Accumulate (sum, count) per (hour-of-day, is-weekend) bucket and
        // per hour-of-day regardless of day type.
        let mut bucket = [[0.0f64; 2]; 24];
        let mut bucket_n = [[0usize; 2]; 24];
        let mut hod = [0.0f64; 24];
        let mut hod_n = [0usize; 24];
        let mut total = 0.0;
        for (i, &v) in window.iter().enumerate() {
            let hour = start.plus(i);
            let h = hour.hour_of_day();
            let w = usize::from(hour.is_weekend());
            bucket[h][w] += v;
            bucket_n[h][w] += 1;
            hod[h] += v;
            hod_n[h] += 1;
            total += v;
        }
        let overall = total / window.len() as f64;

        let origin = history.end();
        (0..horizon)
            .map(|k| {
                let hour = origin.plus(k);
                let h = hour.hour_of_day();
                let w = usize::from(hour.is_weekend());
                if bucket_n[h][w] > 0 {
                    bucket[h][w] / bucket_n[h][w] as f64
                } else if hod_n[h] > 0 {
                    hod[h] / hod_n[h] as f64
                } else {
                    overall
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::time::year_start;
    use decarb_traces::Hour;

    fn diurnal_with_weekend_dip(days: usize) -> TimeSeries {
        // Anchor at a real calendar so weekday/weekend flags are
        // meaningful.
        let start = year_start(2022);
        let values = (0..days * 24)
            .map(|i| {
                let hour = start.plus(i);
                let base = 300.0
                    + 100.0 * (std::f64::consts::TAU * hour.hour_of_day() as f64 / 24.0).sin();
                if hour.is_weekend() {
                    base - 50.0
                } else {
                    base
                }
            })
            .collect();
        TimeSeries::new(start, values)
    }

    #[test]
    fn template_recovers_pure_diurnal_cycle() {
        let history = diurnal_with_weekend_dip(28);
        let model = DiurnalTemplate::default();
        let fc = model.predict(&history, 24);
        let origin = history.end();
        for (k, v) in fc.iter().enumerate() {
            let hour = origin.plus(k);
            let expected = 300.0
                + 100.0 * (std::f64::consts::TAU * hour.hour_of_day() as f64 / 24.0).sin()
                + if hour.is_weekend() { -50.0 } else { 0.0 };
            assert!((v - expected).abs() < 1e-9, "lead {k}: {v} vs {expected}");
        }
    }

    #[test]
    fn weekend_buckets_differ_from_weekday() {
        let history = diurnal_with_weekend_dip(28);
        let model = DiurnalTemplate::default();
        // Predict a full week and split the forecast by day type.
        let fc = model.predict_series(&history, 168);
        let weekday_noon: Vec<f64> = fc
            .iter()
            .filter(|(h, _)| h.hour_of_day() == 12 && !h.is_weekend())
            .map(|(_, v)| v)
            .collect();
        let weekend_noon: Vec<f64> = fc
            .iter()
            .filter(|(h, _)| h.hour_of_day() == 12 && h.is_weekend())
            .map(|(_, v)| v)
            .collect();
        assert!(!weekday_noon.is_empty() && !weekend_noon.is_empty());
        assert!(weekend_noon[0] < weekday_noon[0] - 10.0);
    }

    #[test]
    fn short_history_falls_back_to_hour_means() {
        // Two days of history: some (hour, weekend) buckets may be empty
        // but every hour-of-day bucket has samples.
        let history = diurnal_with_weekend_dip(2);
        let model = DiurnalTemplate::default();
        let fc = model.predict(&history, 48);
        assert_eq!(fc.len(), 48);
        assert!(fc.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn tiny_history_uses_overall_mean() {
        let history = TimeSeries::new(Hour(0), vec![100.0, 200.0]);
        let fc = DiurnalTemplate::new(7).predict(&history, 30);
        // Hours 0 and 1 have samples; all other hours fall back to the
        // overall mean of 150.
        assert!((fc[2] - 150.0).abs() < 1e-9);
        assert!(fc.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn window_accessor_and_validation() {
        assert_eq!(DiurnalTemplate::new(7).window_days(), 7);
        assert_eq!(DiurnalTemplate::default().window_days(), 28);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_window_panics() {
        DiurnalTemplate::new(0);
    }
}
