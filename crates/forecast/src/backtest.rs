//! Rolling-origin backtesting and forecast-trace stitching.
//!
//! Two consumers, two entry points:
//!
//! * [`backtest`] answers "how accurate is this model on this region?" —
//!   the CarbonCast-style MAPE table (overall and per lead day);
//! * [`rolling_forecast_trace`] answers "what trace does a scheduler that
//!   refreshes its forecast every `refresh` hours actually believe?" — its
//!   output slots directly into `decarb_core::forecast`'s
//!   schedule-on-believed / account-on-truth machinery, upgrading §6.2's
//!   uniform random error to realistic structured error.

use decarb_traces::{Hour, TimeSeries};

use crate::metrics::{mape_by_lead_day, ForecastErrors};
use crate::model::Forecaster;

/// Backtest parameters.
#[derive(Debug, Clone, Copy)]
pub struct BacktestConfig {
    /// Forecast horizon per origin, in hours (CarbonCast forecasts up to
    /// 96 h).
    pub horizon: usize,
    /// Hours between consecutive forecast origins.
    pub stride: usize,
    /// History supplied to the model at each origin, in hours.
    pub history: usize,
}

impl Default for BacktestConfig {
    fn default() -> Self {
        Self {
            horizon: 96,
            stride: 24,
            history: 28 * 24,
        }
    }
}

/// The outcome of a rolling-origin backtest.
#[derive(Debug, Clone)]
pub struct BacktestReport {
    /// Model name.
    pub model: &'static str,
    /// Pooled error metrics over every forecast hour.
    pub errors: ForecastErrors,
    /// Pooled MAPE (duplicated from `errors` for ergonomic access).
    pub mape_pct: f64,
    /// MAPE per lead day (index 0 = hours 0–23 ahead, …).
    pub mape_by_lead_day: Vec<f64>,
    /// Number of forecast origins evaluated.
    pub origins: usize,
}

/// Runs a rolling-origin backtest of `model` on `series`.
///
/// Forecast origins start at `eval_start` and advance by `config.stride`
/// while the full horizon still fits inside `[eval_start, eval_start +
/// eval_hours)`. At each origin the model sees the trailing
/// `config.history` hours (clamped to what the series holds) and predicts
/// `config.horizon` hours, which are scored against the actual trace.
///
/// # Panics
///
/// Panics if the series does not cover the requested evaluation window or
/// holds no history before `eval_start`.
pub fn backtest(
    model: &dyn Forecaster,
    series: &TimeSeries,
    eval_start: Hour,
    eval_hours: usize,
    config: &BacktestConfig,
) -> BacktestReport {
    assert!(config.horizon > 0, "horizon must be positive");
    assert!(
        eval_start.0 > series.start().0,
        "need history before the evaluation window"
    );
    let mut actuals: Vec<Vec<f64>> = Vec::new();
    let mut predictions: Vec<Vec<f64>> = Vec::new();
    let mut offset = 0usize;
    while offset + config.horizon <= eval_hours {
        let origin = eval_start.plus(offset);
        let available = (origin.0 - series.start().0) as usize;
        let history_len = config.history.min(available);
        // The loop bound keeps every window inside the series; if a
        // caller-supplied eval range still escapes it, stop evaluating
        // rather than panic.
        let Ok(history) = series.slice(Hour(origin.0 - history_len as u32), history_len) else {
            break;
        };
        let predicted = model.predict(&history, config.horizon);
        let Ok(actual) = series.window(origin, config.horizon) else {
            break;
        };
        actuals.push(actual.to_vec());
        predictions.push(predicted);
        offset += config.stride.max(1);
    }
    let flat_actual: Vec<f64> = actuals.iter().flatten().copied().collect();
    let flat_pred: Vec<f64> = predictions.iter().flatten().copied().collect();
    let pairs: Vec<(&[f64], &[f64])> = actuals
        .iter()
        .zip(&predictions)
        .map(|(a, p)| (a.as_slice(), p.as_slice()))
        .collect();
    let errors = ForecastErrors::of(&flat_actual, &flat_pred);
    BacktestReport {
        model: model.name(),
        mape_pct: errors.mape_pct,
        errors,
        mape_by_lead_day: mape_by_lead_day(&pairs, config.horizon),
        origins: actuals.len(),
    }
}

/// Stitches rolling forecasts into the "believed" trace of a scheduler
/// that refreshes its forecast every `refresh` hours.
///
/// The returned series covers `[eval_start, eval_start + eval_hours)`;
/// the value at hour `t` is the model's prediction for `t` issued at the
/// most recent refresh boundary at or before `t`. A scheduler planning
/// against this series experiences exactly the lead-time-dependent error
/// a real forecast pipeline would give it: fresh (accurate) values right
/// after a refresh, stale (drifted) values just before the next one.
///
/// # Panics
///
/// Panics if the series does not cover the window, holds no history
/// before `eval_start`, or `refresh` is zero.
pub fn rolling_forecast_trace(
    model: &dyn Forecaster,
    series: &TimeSeries,
    eval_start: Hour,
    eval_hours: usize,
    refresh: usize,
    history: usize,
) -> TimeSeries {
    assert!(refresh > 0, "refresh interval must be positive");
    assert!(
        eval_start.0 > series.start().0,
        "need history before the evaluation window"
    );
    let mut values = Vec::with_capacity(eval_hours);
    let mut offset = 0usize;
    while offset < eval_hours {
        let origin = eval_start.plus(offset);
        let chunk = refresh.min(eval_hours - offset);
        let available = (origin.0 - series.start().0) as usize;
        let history_len = history.min(available);
        let Ok(hist) = series.slice(Hour(origin.0 - history_len as u32), history_len) else {
            break;
        };
        values.extend(model.predict(&hist, chunk));
        offset += chunk;
    }
    TimeSeries::new(eval_start, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{Persistence, SeasonalNaive};
    use crate::template::DiurnalTemplate;
    use decarb_traces::time::year_start;

    fn noisy_diurnal(days: usize, amp: f64, seed: u64) -> TimeSeries {
        let start = year_start(2022);
        let mut state = seed | 1;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let values = (0..days * 24)
            .map(|i| {
                let hour = start.plus(i);
                300.0
                    + amp * (std::f64::consts::TAU * hour.hour_of_day() as f64 / 24.0).sin()
                    + 5.0 * noise()
            })
            .collect();
        TimeSeries::new(start, values)
    }

    #[test]
    fn backtest_counts_origins() {
        let series = noisy_diurnal(60, 100.0, 3);
        let eval_start = series.start().plus(30 * 24);
        let cfg = BacktestConfig {
            horizon: 24,
            stride: 24,
            history: 7 * 24,
        };
        let report = backtest(&Persistence, &series, eval_start, 10 * 24, &cfg);
        assert_eq!(report.origins, 10);
        assert_eq!(report.mape_by_lead_day.len(), 1);
        assert_eq!(report.model, "persistence");
    }

    #[test]
    fn seasonal_beats_persistence_on_diurnal_trace() {
        let series = noisy_diurnal(90, 100.0, 7);
        let eval_start = series.start().plus(45 * 24);
        let cfg = BacktestConfig::default();
        let seasonal = backtest(&SeasonalNaive::daily(), &series, eval_start, 30 * 24, &cfg);
        let persistence = backtest(&Persistence, &series, eval_start, 30 * 24, &cfg);
        assert!(
            seasonal.mape_pct < persistence.mape_pct,
            "seasonal {:.2}% vs persistence {:.2}%",
            seasonal.mape_pct,
            persistence.mape_pct
        );
    }

    #[test]
    fn template_smooths_noise_better_than_seasonal_naive() {
        let series = noisy_diurnal(120, 30.0, 99);
        let eval_start = series.start().plus(60 * 24);
        let cfg = BacktestConfig::default();
        let template = backtest(
            &DiurnalTemplate::default(),
            &series,
            eval_start,
            40 * 24,
            &cfg,
        );
        let naive = backtest(&SeasonalNaive::daily(), &series, eval_start, 40 * 24, &cfg);
        assert!(
            template.mape_pct <= naive.mape_pct,
            "template {:.2}% vs naive {:.2}%",
            template.mape_pct,
            naive.mape_pct
        );
    }

    #[test]
    fn persistence_error_grows_with_lead_day() {
        let series = noisy_diurnal(90, 100.0, 21);
        let eval_start = series.start().plus(45 * 24);
        let cfg = BacktestConfig::default();
        let report = backtest(&Persistence, &series, eval_start, 30 * 24, &cfg);
        assert_eq!(report.mape_by_lead_day.len(), 4);
        // Flat persistence across a strong cycle: every lead day is bad,
        // but day 1 is never *worse* than the pooled tail by much. The
        // robust claim: pooled MAPE is large.
        assert!(report.mape_pct > 10.0);
    }

    #[test]
    fn rolling_trace_covers_window_exactly() {
        let series = noisy_diurnal(60, 100.0, 5);
        let eval_start = series.start().plus(30 * 24);
        let believed = rolling_forecast_trace(
            &SeasonalNaive::daily(),
            &series,
            eval_start,
            20 * 24,
            24,
            28 * 24,
        );
        assert_eq!(believed.start(), eval_start);
        assert_eq!(believed.len(), 20 * 24);
        assert!(believed.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rolling_trace_with_partial_final_chunk() {
        let series = noisy_diurnal(40, 50.0, 11);
        let eval_start = series.start().plus(30 * 24);
        let believed = rolling_forecast_trace(&Persistence, &series, eval_start, 30, 24, 7 * 24);
        assert_eq!(believed.len(), 30);
    }

    #[test]
    fn fresh_forecasts_track_truth_closely_right_after_refresh() {
        let series = noisy_diurnal(60, 100.0, 13);
        let eval_start = series.start().plus(30 * 24);
        let believed = rolling_forecast_trace(
            &SeasonalNaive::daily(),
            &series,
            eval_start,
            10 * 24,
            24,
            28 * 24,
        );
        // At each refresh boundary, the 1-hour-ahead prediction is the
        // value 24 h earlier — tightly correlated with the truth on a
        // diurnal trace.
        let mut total_err = 0.0;
        let mut n = 0;
        for day in 0..10 {
            let h = eval_start.plus(day * 24);
            total_err += (believed.get(h) - series.get(h)).abs();
            n += 1;
        }
        assert!(total_err / n as f64 / 300.0 < 0.1, "mean fresh error < 10%");
    }

    #[test]
    #[should_panic(expected = "refresh interval must be positive")]
    fn zero_refresh_panics() {
        let series = noisy_diurnal(10, 10.0, 1);
        rolling_forecast_trace(&Persistence, &series, series.start().plus(24), 10, 0, 24);
    }

    #[test]
    #[should_panic(expected = "history before the evaluation window")]
    fn eval_at_series_start_panics() {
        let series = noisy_diurnal(10, 10.0, 1);
        let cfg = BacktestConfig::default();
        backtest(&Persistence, &series, series.start(), 48, &cfg);
    }
}
