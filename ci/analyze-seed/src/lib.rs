//! Seeded violation fixture for the CI analyze gate.
//!
//! This tree is not a Cargo crate and is never compiled. The
//! `static-analysis` CI job runs
//! `decarb-cli analyze --workspace ci/analyze-seed` and asserts the
//! command FAILS, proving the gate actually trips on real violations
//! instead of rubber-stamping every checkout. Expected findings:
//! one `no-panic` (the unwrap below) and two `hot-path` (the
//! un-preallocated `Vec::new` and the `.clone()` in the marked region).

pub fn seeded(x: Option<u32>) -> u32 {
    x.unwrap()
}

// decarb-analyze: hot-path
pub fn hot(xs: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(xs);
    out.clone()
}
