#!/usr/bin/env bash
# Fails when README.md or any docs/*.md contains a relative markdown
# link to a file that does not exist in the checkout. External links
# (http/https/mailto) and pure #fragments are skipped; a #fragment on
# a relative link is stripped before the existence check.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Extract the (target) of every [text](target) occurrence.
    while IFS= read -r target; do
        case "$target" in
            http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "$doc: dead relative link ($target)" >&2
            status=2
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

if [ "$status" -eq 0 ]; then
    echo "doc links ok"
fi
exit "$status"
